"""Simulated BurstBuffer tests: where the time goes, never the bytes."""

from __future__ import annotations

import pytest

from repro.config import DiskSpec, TierSpec
from repro.faults import FaultPlan, FaultRule
from repro.fs import LocalFS
from repro.hardware import DiskModel
from repro.sim import Simulator
from repro.tier import BurstBuffer
from repro.units import MB, MiB


def make_fs(tier_spec=None, plan=None, seed=0):
    sim = Simulator(seed=seed)
    if plan is not None:
        sim.install_faults(plan)
    disk = DiskModel(sim, DiskSpec(bandwidth=100e6, seek_time=0.01))
    fs = LocalFS(sim, disk)
    tier = None
    if tier_spec is not None:
        tier = fs.attach_tier(BurstBuffer(sim, disk, tier_spec))
    return sim, fs, tier


def run(sim, gen):
    proc = sim.spawn(gen)
    sim.run(until=proc)
    return proc.value


SPEC = TierSpec(mem_bytes=MiB(64), ssd_bytes=MiB(256), block_bytes=MiB(1))
#: write-through variant: writes do not warm the tier, so the first read
#: is genuinely cold
SPEC_WT = TierSpec(
    mem_bytes=MiB(64), ssd_bytes=MiB(256), block_bytes=MiB(1),
    writeback=False,
)


def timed_reads(tier_spec):
    """(cold_elapsed, warm_elapsed) for two identical 16MB reads."""
    sim, fs, _tier = make_fs(tier_spec)

    def proc():
        yield fs.write("/f", data=b"x", size=MB(16))
        t0 = sim.now
        yield fs.read("/f")
        cold = sim.now - t0
        t0 = sim.now
        yield fs.read("/f")
        return cold, sim.now - t0

    return run(sim, proc())


def test_warm_read_beats_cold_read():
    cold, warm = timed_reads(SPEC_WT)
    assert warm < cold / 5  # mem tier vs disk seek + stream


def test_buffered_write_warms_the_tier():
    """With write-back on, the written blocks are already resident, so
    even the first read is warm."""
    cold, warm = timed_reads(SPEC)
    assert cold == pytest.approx(warm)
    assert cold < 0.01  # neither read touched the disk


def test_tier_never_changes_bytes():
    sim, fs, _ = make_fs(SPEC)

    def proc():
        yield fs.write("/f", data=b"the payload", size=MB(4))
        a = yield fs.read("/f")
        b = yield fs.read("/f")
        return a, b

    a, b = run(sim, proc())
    assert a == b == b"the payload"


def test_writeback_defers_disk_cost():
    """A buffered write's foreground cost is the mem transfer only."""
    spec = TierSpec(
        mem_bytes=MiB(64), ssd_bytes=MiB(256), block_bytes=MiB(1),
        writeback=True,
    )
    sim, fs, tier = make_fs(spec)

    def proc():
        t0 = sim.now
        yield fs.write("/f", data=b"x", size=MB(32))
        fg = sim.now - t0
        dirty = tier.dirty_bytes
        yield from tier.flush()
        return fg, dirty

    fg, dirty = run(sim, proc())
    # foreground: 32MB over the 8GB/s mem channel, far under the ~0.33s
    # the disk would charge; the drain then clears the dirty blocks
    assert fg < 0.05
    assert dirty > 0
    assert tier.dirty_bytes == 0
    assert tier.stats()["tier.writeback.bytes"] == MB(32)


def test_vfs_modify_invalidates_blocks():
    sim, fs, tier = make_fs(SPEC)

    def proc():
        yield fs.write("/f", data=b"v1", size=MB(4))
        yield fs.read("/f")  # admit blocks
        before = tier.stats()["mem_blocks"]
        yield fs.write("/f", data=b"v2", size=MB(4))  # modify event
        data = yield fs.read("/f")
        return before, data

    before, data = run(sim, proc())
    assert before >= 1
    assert data == b"v2"
    assert tier.stats().get("tier.evict.invalidation", 0) >= 1


def test_unlink_invalidates_blocks():
    sim, fs, tier = make_fs(SPEC)

    def proc():
        yield fs.write("/f", data=b"v1", size=MB(2))
        yield fs.read("/f")
        yield fs.unlink("/f")
        return tier.stats()

    st = run(sim, proc())
    assert st.get("tier.evict.invalidation", 0) >= 1
    assert st["mem_blocks"] == 0


def test_prefetch_overlaps_and_serves_next_read():
    sim, fs, tier = make_fs(SPEC_WT)

    def proc():
        yield fs.write("/f", data=b"x", size=MB(8))
        ev = fs.prefetch("/f", offset=0, nbytes=MB(8))
        assert ev is not None
        yield ev
        t0 = sim.now
        yield fs.read("/f")
        return sim.now - t0

    warm = run(sim, proc())
    st = tier.stats()
    assert st["tier.prefetch.issued"] == 1
    assert st["tier.prefetch.bytes"] == MB(8)
    assert st["tier.prefetch.hit"] >= 1
    assert st["tier.prefetch.hit.bytes"] == MB(8)
    assert warm < 0.01  # no disk involved


def test_prefetch_fills_in_bounded_chunks():
    """The fill is split into block-sized runs, not one coalesced read,
    so demand traffic can interleave between chunks."""
    sim, fs, tier = make_fs(SPEC_WT)

    def proc():
        yield fs.write("/f", data=b"x", size=MB(8))
        ev = fs.prefetch("/f", offset=0, nbytes=MB(8))
        yield ev
        return None

    run(sim, proc())
    # 8 one-MiB blocks at 4 blocks per disk request = at least 2 requests
    assert tier.disk.requests >= 2
    assert tier.disk.bytes_read == MB(8)


def test_prefetch_without_tier_is_noop():
    sim, fs, _ = make_fs(None)

    def proc():
        yield fs.write("/f", data=b"x", size=MB(2))
        return fs.prefetch("/f", offset=0, nbytes=MB(2))

    assert run(sim, proc()) is None


def test_degraded_tier_read_falls_back_to_disk():
    plan = FaultPlan(
        rules=(FaultRule("tier.read", action="fail", count=1),), seed=2
    )
    sim, fs, tier = make_fs(SPEC, plan=plan)

    def proc():
        yield fs.write("/f", data=b"still right", size=MB(4))
        yield fs.read("/f")  # admit
        data = yield fs.read("/f")  # hit degraded to a disk re-read
        return data

    assert run(sim, proc()) == b"still right"
    assert tier.stats()["tier.read.degraded"] == 1


def test_stuck_eviction_leaves_ssd_over_capacity():
    plan = FaultPlan(
        rules=(FaultRule("tier.evict", action="drop", count=1),), seed=2
    )
    spec = TierSpec(
        mem_bytes=MiB(1), ssd_bytes=MiB(2), block_bytes=MiB(1),
        writeback=False,  # clean blocks: demotes reach the evict site
    )
    sim, fs, tier = make_fs(spec, plan=plan)

    def proc():
        for i in range(5):
            yield fs.write(f"/f{i}", data=b"x", size=MiB(1))
            yield fs.read(f"/f{i}")
        yield from tier.flush()
        return None

    run(sim, proc())
    assert tier.stats()["tier.evict.stuck"] == 1


def test_mem_demotes_into_ssd_under_pressure():
    spec = TierSpec(
        mem_bytes=MiB(2), ssd_bytes=MiB(16), block_bytes=MiB(1),
        writeback=False,
    )
    sim, fs, tier = make_fs(spec)

    def proc():
        yield fs.write("/f", data=b"x", size=MB(6))
        yield fs.read("/f")
        return None

    run(sim, proc())
    st = tier.stats()
    assert st["tier.demote"] >= 1
    assert st["mem_used"] <= spec.mem_bytes
