"""Unit tests for the real-engine TieredStore (bytes, not timing)."""

from __future__ import annotations

import os

import pytest

from repro.faults import FaultInjector, FaultPlan, FaultRule, tier_chaos_plan
from repro.obs import Observability
from repro.tier import TieredStore, live_tier_dirs


def make_store(mem=1024, ssd=4096, **kw):
    # synchronous write-back by default: deterministic tests
    kw.setdefault("writeback", False)
    return TieredStore(mem, ssd, **kw)


def test_put_get_roundtrip_and_counters():
    with make_store() as store:
        store.put("a/run-0", b"alpha" * 10)
        assert store.get("a/run-0") == b"alpha" * 10
        assert store.contains("a/run-0")
        assert store.get("a/missing") is None
        st = store.stats()
        assert st["tier.put"] == 1
        assert st["tier.hit.mem"] == 1
        assert st["tier.miss"] == 1


def test_overwrite_replaces_payload():
    with make_store() as store:
        store.put("k", b"old")
        store.put("k", b"newer bytes")
        assert store.get("k") == b"newer bytes"
        assert store.stats()["entries"] == 1


def test_demote_to_ssd_and_promote_back():
    with make_store(mem=1024, ssd=8192) as store:
        store.put("k0", b"x" * 600)
        store.put("k1", b"y" * 600)  # overflows mem: k0 demotes to ssd
        st = store.stats()
        assert st["tier.demote"] >= 1
        assert st["mem_used"] <= 1024
        assert store.get("k0") == b"x" * 600  # served from the ssd file
        st = store.stats()
        assert st["tier.hit.ssd"] >= 1


def test_ssd_capacity_eviction_drops_lru():
    with make_store(mem=600, ssd=1200) as store:
        for i in range(4):
            store.put(f"k{i}", bytes([i]) * 500)
        st = store.stats()
        assert st["tier.evict.capacity"] >= 1
        assert st["ssd_used"] <= 1200
        # the newest entry always survives
        assert store.get("k3") == bytes([3]) * 500


def test_oversized_payload_still_served():
    with make_store(mem=64, ssd=4096) as store:
        blob = b"z" * 1000  # larger than the whole mem level
        store.put("big", blob)
        assert store.get("big") == blob


def test_invalidate_and_prefix():
    with make_store() as store:
        store.put("job1/run-0", b"a")
        store.put("job1/run-1", b"b")
        store.put("job2/run-0", b"c")
        assert store.invalidate("job1/run-0")
        assert not store.invalidate("job1/run-0")  # already gone
        assert store.invalidate_prefix("job1/") == 1
        assert store.get("job1/run-1") is None
        assert store.get("job2/run-0") == b"c"


def test_background_writeback_drains_and_persists():
    store = TieredStore(1024, 8192, writeback=True)
    try:
        store.put("k", b"payload " * 8)
        assert store.flush(timeout=10.0)
        assert store.dirty_entries == 0
        assert store.stats()["tier.writeback.bytes"] == 64
        # the entry now has an SSD file backing it
        files = os.listdir(store.ssd_dir)
        assert len(files) == 1
    finally:
        store.close()


def test_dropped_writeback_loses_entry_without_lying():
    plan = FaultPlan(
        rules=(FaultRule("tier.writeback", action="drop", count=3),), seed=1
    )
    inj = FaultInjector(plan)
    with make_store(faults=inj) as store:
        store.put("k", b"doomed")  # 1 attempt + 2 retries, all dropped
        st = store.stats()
        assert st["tier.writeback.retry"] == 2
        assert st["tier.writeback.lost"] == 1
        assert not store.contains("k")
        assert store.get("k") is None  # lost, never wrong


def test_degraded_read_becomes_miss():
    plan = FaultPlan(
        rules=(FaultRule("tier.read", action="fail", count=1),), seed=1
    )
    inj = FaultInjector(plan)
    with make_store(faults=inj) as store:
        store.put("k", b"fragile")
        assert store.get("k") is None  # degraded: treat as miss
        assert store.stats()["tier.read.degraded"] == 1
        assert not store.contains("k")  # and invalidated, not stale


def test_corrupt_read_returns_tainted_bytes_once():
    plan = FaultPlan(
        rules=(FaultRule("tier.read", action="corrupt", count=1),), seed=1
    )
    inj = FaultInjector(plan)
    with make_store(faults=inj) as store:
        blob = b"checksummed upstream"
        store.put("k", blob)
        first = store.get("k")
        assert first != blob and len(first) == len(blob)  # one byte flipped
        assert store.stats()["tier.read.corrupted"] == 1
        assert store.get("k") == blob  # the stored copy was never touched


def test_wedged_eviction_counts_stuck():
    plan = FaultPlan(
        rules=(FaultRule("tier.evict", action="drop", count=1),), seed=1
    )
    inj = FaultInjector(plan)
    with make_store(mem=600, ssd=1000, faults=inj) as store:
        for i in range(4):
            store.put(f"k{i}", bytes([i]) * 500)
        assert store.stats()["tier.evict.stuck"] == 1


def test_counters_reach_observability():
    obs = Observability(enabled=False)
    with make_store(obs=obs) as store:
        store.put("k", b"counted")
        store.get("k")
    ctr = obs.metrics.counters
    assert ctr["tier.put"] == 1
    assert ctr["tier.hit.mem"] == 1


def test_close_removes_dir_and_leak_registry():
    store = make_store()
    d = store.ssd_dir
    assert d in live_tier_dirs()
    store.close()
    store.close()  # idempotent
    assert not os.path.isdir(d)
    assert d not in live_tier_dirs()
    with pytest.raises(RuntimeError):
        store.put("k", b"after close")


def test_chaos_plan_never_corrupts_silently():
    """Under the full tier chaos plan every get() is None or honest bytes
    (corrupt reads flip a byte but never shrink or grow the payload)."""
    inj = FaultInjector(tier_chaos_plan(seed=3))
    blobs = {f"k{i}": os.urandom(64) + bytes([i]) for i in range(12)}
    with make_store(mem=256, ssd=512, faults=inj) as store:
        for k, v in blobs.items():
            store.put(k, v)
        for k, v in blobs.items():
            got = store.get(k)
            assert got is None or len(got) == len(v)
