"""Tests for the explicit cache hierarchy (registry + cascade invalidation)."""

from __future__ import annotations

import pytest

from repro.exec.chunks import FileChunk, read_chunk_cached
from repro.sched import ResultCache
from repro.tier import CacheHierarchy, TieredStore, standard_hierarchy


def test_levels_are_ordered_and_unique():
    h = CacheHierarchy()
    h.register("top", lambda: {"entries": 1})
    h.register("bottom", lambda: {"entries": 2})
    assert h.levels == ["top", "bottom"]
    with pytest.raises(ValueError):
        h.register("top", lambda: {})


def test_report_reads_top_down():
    h = CacheHierarchy()
    h.register("a", lambda: {"hits": 1})
    h.register("b", lambda: {"hits": 2})
    assert h.report() == [("a", {"hits": 1}), ("b", {"hits": 2})]


def test_cascade_invalidation_hits_every_level():
    dropped: list[str] = []

    def make_level(name):
        def invalidate(path):
            dropped.append(f"{name}:{path}")
            return 1
        return invalidate

    h = CacheHierarchy()
    h.register("upper", lambda: {}, make_level("upper"))
    h.register("stats-only", lambda: {})  # no invalidation hook: skipped
    h.register("lower", lambda: {}, make_level("lower"))
    out = h.invalidate_path("/data/f")
    assert out == {"upper": 1, "lower": 1}
    assert dropped == ["upper:/data/f", "lower:/data/f"]  # top-down


def test_standard_hierarchy_wires_real_levels(tmp_path):
    cache = ResultCache()
    with TieredStore(1024, 4096, writeback=False) as store:
        h = standard_hierarchy(result_cache=cache, tiers={"burst": store})
        assert h.levels == ["result-cache", "chunk-handles", "burst"]
        # report exposes each level's own stats shape
        report = dict(h.report())
        assert "capacity" in report["result-cache"]
        assert "mapped_bytes" in report["chunk-handles"]
        assert "mem_used" in report["burst"]


def test_standard_hierarchy_cascade_drops_derived_state(tmp_path):
    p = tmp_path / "input"
    p.write_bytes(b"cascade me down")
    read_chunk_cached(FileChunk(str(p), 0, 7))  # warm the handle cache
    cache = ResultCache()
    key = ("app", str(p), "partitioned", None, (), 1, 0.0)
    cache.put(key, object())
    with TieredStore(1024, 4096, writeback=False) as store:
        store.put(f"{p}/run-0", b"spill")
        h = standard_hierarchy(result_cache=cache, tiers={"burst": store})
        out = h.invalidate_path(str(p))
    assert out["result-cache"] == 1
    assert out["chunk-handles"] == 1
    assert out["burst"] == 1
    assert cache.get(key) is None
