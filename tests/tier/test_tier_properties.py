"""Property: the burst tier never changes an answer, only its cost.

The tentpole correctness claim as a hypothesis property: for any random
corpus, any small tier geometry, and any random fault plan over the
``tier.*`` sites (dropped write-backs, failed or corrupted warm reads,
wedged evictions), an out-of-core run that spills through the tier
produces byte-for-byte the same sorted output as a tier-less, fault-free
run over the same input.  Loss degrades to recompute, corruption is
caught by the spill crc, and capacity starvation falls back to durable
disk — none of it may leak into the result.
"""

from __future__ import annotations

import operator
import os
import tempfile

from hypothesis import given, settings, strategies as st

from repro.exec.chunks import chunk_file, drop_cached_handle, read_chunk_cached
from repro.exec.outofcore import live_spill_dirs, run_out_of_core
from repro.faults import FaultInjector, FaultPlan, FaultRule
from repro.obs import Observability
from repro.tier import TieredStore, live_tier_dirs

_SITES = ("tier.read", "tier.writeback", "tier.evict")
_ACTIONS = ("drop", "fail", "corrupt")

_rule = st.builds(
    FaultRule,
    st.sampled_from(_SITES),
    action=st.sampled_from(_ACTIONS),
    count=st.integers(min_value=1, max_value=2),
    after=st.integers(min_value=0, max_value=4),
)

_plan = st.builds(
    FaultPlan,
    rules=st.lists(_rule, min_size=1, max_size=3).map(tuple),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)

_corpus = st.lists(
    st.sampled_from("ab cd efg hij klmno pq r stu vwx yz".split()),
    min_size=60,
    max_size=400,
)


def _wc(fragment):
    counts: dict = {}
    for c in fragment:
        for w in read_chunk_cached(c).split():
            counts[w] = counts.get(w, 0) + 1
    return {k: [v] for k, v in counts.items()}


def _run(path, budget, tier=None, faults=None):
    out, _, _ = run_out_of_core(
        chunk_file(path, 256), _wc, operator.add, None, True, {}, budget,
        Observability(enabled=False), faults=faults, max_retries=8,
        tier=tier, tier_key="prop",
    )
    return out


@settings(max_examples=25, deadline=None)
@given(
    words=_corpus,
    plan=_plan,
    mem=st.integers(min_value=256, max_value=8192),
    ssd_mult=st.integers(min_value=1, max_value=8),
    budget=st.integers(min_value=512, max_value=4096),
)
def test_tiered_faulty_run_equals_plain_run(words, plan, mem, ssd_mult, budget):
    with tempfile.TemporaryDirectory(prefix="tierprop-") as d:
        path = os.path.join(d, "corpus")
        with open(path, "wb") as f:
            f.write(" ".join(words).encode())
        expected = _run(path, budget)
        inj = FaultInjector(plan)
        with TieredStore(mem, mem * ssd_mult, writeback=False,
                         faults=inj) as store:
            got = _run(path, budget, tier=store, faults=inj)
        drop_cached_handle(path)  # the corpus dir vanishes with this example
    assert got == expected
    assert live_spill_dirs() == []
    assert live_tier_dirs() == []
