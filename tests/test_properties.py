"""Cross-cutting property-based tests on the simulation substrates.

These pin the conservation laws and invariants the whole evaluation rests
on: the CPU never creates or destroys work, the fabric never loses bytes,
memory accounting always returns to zero, and simulations are replayable.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import CPUSpec, MemoryPolicy, NetworkConfig
from repro.hardware import MemoryModel, ProcessorSharingCPU
from repro.net import Fabric
from repro.sim import Simulator
from repro.errors import OutOfMemoryError


# ------------------------------------------------------------------ CPU


@given(
    cores=st.integers(min_value=1, max_value=8),
    tasks=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=5.0),     # arrival
            st.floats(min_value=1e6, max_value=5e9),      # ops
        ),
        min_size=1,
        max_size=12,
    ),
)
@settings(max_examples=80, deadline=None)
def test_property_cpu_conserves_work(cores, tasks):
    """Delivered core-seconds == total submitted ops / per-core rate."""
    spec = CPUSpec("prop", cores=cores, clock_ghz=2.0)
    sim = Simulator()
    cpu = ProcessorSharingCPU(sim, spec)

    def submit(arrival, ops):
        if arrival:
            yield sim.timeout(arrival)
        yield cpu.submit(ops, "t")

    for arrival, ops in tasks:
        sim.spawn(submit(arrival, ops))
    sim.run()
    total_ops = sum(ops for _, ops in tasks)
    assert cpu.busy_core_seconds * spec.ops_per_sec_per_core == pytest.approx(
        total_ops, rel=1e-6
    )
    assert cpu.n_active == 0
    assert cpu.completed_tasks == len(tasks)


@given(
    cores=st.integers(min_value=1, max_value=4),
    ops=st.lists(st.floats(min_value=1e6, max_value=2e9), min_size=2, max_size=8),
)
@settings(max_examples=60, deadline=None)
def test_property_cpu_makespan_bounds(cores, ops):
    """Makespan lies between work/aggregate-rate and work/single-core-rate
    (plus the longest task alone)."""
    spec = CPUSpec("prop", cores=cores, clock_ghz=1.0)
    sim = Simulator()
    cpu = ProcessorSharingCPU(sim, spec)
    for i, o in enumerate(ops):
        cpu.submit(o, f"t{i}")
    sim.run()
    total = sum(ops)
    rate = spec.ops_per_sec_per_core
    lower = max(total / (cores * rate), max(ops) / rate)
    upper = total / rate
    assert lower - 1e-9 <= sim.now <= upper + 1e-9


# ------------------------------------------------------------------ fabric


@given(
    flows=st.lists(
        st.tuples(st.integers(min_value=0, max_value=3),
                  st.integers(min_value=0, max_value=3),
                  st.integers(min_value=0, max_value=50_000_000)),
        min_size=1,
        max_size=10,
    )
)
@settings(max_examples=50, deadline=None)
def test_property_fabric_conserves_bytes(flows):
    sim = Simulator()
    fab = Fabric(sim, NetworkConfig())
    names = [f"n{i}" for i in range(4)]
    for n in names:
        fab.attach(n)
    sent = 0

    def xfer(src, dst, nbytes):
        yield fab.transfer(src, dst, nbytes)

    for s, d, nb in flows:
        if s == d:
            continue
        sent += nb
        sim.spawn(xfer(names[s], names[d], nb))
    sim.run()
    assert fab.bytes_delivered == sent
    assert len(fab.flows) == sum(1 for s, d, _ in flows if s != d)
    # per-flow latency >= serialization floor
    for f in fab.flows:
        assert f.duration >= f.nbytes / NetworkConfig().link_bandwidth - 1e-9


# ------------------------------------------------------------------ memory


@given(
    actions=st.lists(
        st.tuples(st.booleans(), st.integers(min_value=1, max_value=10**9)),
        min_size=1,
        max_size=40,
    )
)
@settings(max_examples=80, deadline=None)
def test_property_memory_accounting_never_leaks(actions):
    sim = Simulator()
    mem = MemoryModel(sim, 2 * 10**9, policy=MemoryPolicy())
    live = []
    for is_alloc, nbytes in actions:
        if is_alloc or not live:
            try:
                live.append(mem.alloc(nbytes))
            except OutOfMemoryError:
                assert mem.used + nbytes > mem.limit
        else:
            live.pop().free()
        assert 0 <= mem.used <= mem.limit
        assert mem.thrash_factor() >= 1.0
    for a in live:
        a.free()
    assert mem.used == 0
    assert mem.thrash_factor() == 1.0


# ------------------------------------------------------------------ determinism


@given(seed=st.integers(min_value=0, max_value=2**31))
@settings(max_examples=20, deadline=None)
def test_property_simulation_replayable(seed):
    """Same seed, same program -> identical event count and clock."""

    def run():
        sim = Simulator(seed=seed)
        fab = Fabric(sim, NetworkConfig())
        fab.attach("a")
        fab.attach("b")

        def traffic():
            for _ in range(5):
                jitter = float(sim.rng.stream("j").uniform(0.0, 0.01))
                yield sim.timeout(jitter)
                yield fab.transfer("a", "b", 1_000_000)

        sim.spawn(traffic())
        sim.run()
        return sim.processed_events, sim.now

    assert run() == run()
