"""Golden-output tests for ``tools/trace_view.py`` over a recorded trace.

The fixture trace runs on a fake clock, so every duration in the
rendered tables is exact and the assertions can pin whole lines, not
just substrings.
"""

from __future__ import annotations

import importlib.util
import os

import pytest

from repro.obs.export import write_chrome, write_jsonl

from tests.obs.test_export import build_trace

_TOOLS = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "tools",
)


def _load_tool(name: str):
    spec = importlib.util.spec_from_file_location(
        name, os.path.join(_TOOLS, f"{name}.py")
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


@pytest.fixture(scope="module")
def trace_view():
    return _load_tool("trace_view")


@pytest.fixture()
def trace(tmp_path):
    """One recorded fake-clock trace as (obs, jsonl_path)."""
    obs = build_trace()
    obs.count("fault.injected", 2)
    path = write_jsonl(obs, str(tmp_path / "trace.jsonl"))
    return obs, path


def test_breakdown_view_golden(trace_view, trace, capsys):
    obs, path = trace
    assert trace_view.main([path]) == 0
    out = capsys.readouterr().out
    lines = out.splitlines()
    assert lines[0] == f"4 spans from {path} (run {obs.run_id})"
    assert "root: job — total 10s" in out
    # exact table rows: the fake clock makes durations integral
    assert any(l.startswith("map") and "6s" in l and "60.0%" in l
               for l in lines)
    assert any(l.startswith("read") and "2s" in l and "20.0%" in l
               for l in lines)
    assert any(l.startswith("(phases cover)") and "90.0%" in l
               for l in lines)
    # the fault counter triggers the reliability section
    assert "reliability counters" in out
    assert any(l.startswith("fault.injected") and l.rstrip().endswith("2")
               for l in lines)


def test_critpath_view_golden(trace_view, trace, capsys):
    _, path = trace
    assert trace_view.main(["critpath", path]) == 0
    out = capsys.readouterr().out
    assert "critical path of job — wall 10s" in out
    assert "cover 100.0%" in out
    assert "by span name" in out
    lines = out.splitlines()
    # map dominates the path: 6 of 10 seconds
    assert any(l.strip().startswith("map") and "60.0%" in l for l in lines)


def test_critpath_containment_view(trace_view, trace, capsys):
    _, path = trace
    assert trace_view.main(["critpath", path, "--containment"]) == 0
    out = capsys.readouterr().out
    assert "critical path of job" in out
    assert "cover 100.0%" in out


def test_tree_view_golden(trace_view, trace, capsys):
    _, path = trace
    assert trace_view.main([path, "--tree", "--unit", "ms"]) == 0
    out = capsys.readouterr().out
    assert "job" in out and "[sd0]" in out
    assert "10000ms" in out  # the 10s root in ms
    # children indented under the root
    assert any(l.startswith("  read") for l in out.splitlines())


def test_group_by_cat_view(trace_view, trace, capsys):
    _, path = trace
    assert trace_view.main([path, "--group", "cat"]) == 0
    out = capsys.readouterr().out
    assert "category" in out and "phoenix" in out


def test_chrome_format_agrees(trace_view, trace, tmp_path, capsys):
    obs, jsonl_path = trace
    chrome_path = write_chrome(obs, str(tmp_path / "trace.json"))
    assert trace_view.main([jsonl_path]) == 0
    jsonl_out = capsys.readouterr().out
    assert trace_view.main([chrome_path]) == 0
    chrome_out = capsys.readouterr().out
    # identical tables modulo the file name in the header
    assert jsonl_out.splitlines()[1:] == chrome_out.splitlines()[1:]


def test_recovery_view_golden(trace_view, tmp_path, capsys):
    from tests.obs.test_export import build_trace as _build

    obs = _build()
    obs.count("dist.restart.partial", 1)
    obs.count("spec.launched", 2)
    obs.count("spec.won", 1)
    obs.count("node.quarantined", 1)
    obs.count("node.rejoined", 1)
    for k in range(8):
        obs.sample("node.suspicion.sd0", 0.25 * k, 0.5 * k)
    path = write_jsonl(obs, str(tmp_path / "rec.jsonl"))
    assert trace_view.main([path]) == 0
    out = capsys.readouterr().out
    lines = out.splitlines()
    assert "recovery" in lines
    assert any(l.startswith("dist.restart.partial") and l.rstrip().endswith("1")
               for l in lines)
    assert "speculation win rate: 50% (1/2)" in out
    assert any(l.startswith("phi sd0") and "peak 3.5" in l for l in lines)
    # a calm trace renders no recovery section
    calm = write_jsonl(_build(), str(tmp_path / "calm.jsonl"))
    assert trace_view.main([calm]) == 0
    assert "recovery" not in capsys.readouterr().out.splitlines()


def test_empty_trace_fails(trace_view, tmp_path, capsys):
    path = tmp_path / "empty.jsonl"
    path.write_text('{"type": "meta"}\n')
    assert trace_view.main([str(path)]) == 1
    assert "no spans" in capsys.readouterr().err
