"""Metrics registry: histograms, percentiles, snapshots."""

from __future__ import annotations

import pytest

from repro.obs import Histogram, MetricsRegistry, Observability


def test_histogram_empty():
    h = Histogram("lat")
    assert h.percentile(50) == 0.0
    assert h.count == 0
    assert h.summary() == {"count": 0}


def test_histogram_single_value():
    h = Histogram("lat")
    h.observe(42.0)
    assert h.p50 == h.p95 == h.p99 == 42.0


def test_histogram_percentiles_nearest_rank():
    h = Histogram("lat")
    for v in range(1, 101):  # 1..100
        h.observe(float(v))
    assert h.p50 == 50.0
    assert h.p95 == 95.0
    assert h.p99 == 99.0
    assert h.percentile(100) == 100.0
    assert h.percentile(1) == 1.0


def test_histogram_unsorted_inserts():
    h = Histogram("lat")
    for v in (5.0, 1.0, 9.0, 3.0, 7.0):
        h.observe(v)
    assert h.p50 == 5.0
    assert h.summary()["min"] == 1.0
    assert h.summary()["max"] == 9.0
    h.observe(0.5)  # re-dirty after a percentile query
    assert h.summary()["min"] == 0.5


def test_registry_counters_gauges_histograms():
    m = MetricsRegistry()
    m.count("ops")
    m.count("ops", 4)
    m.gauge("depth", 3.0)
    m.gauge("depth", 1.0)
    m.observe("lat", 10.0)
    m.observe("lat", 20.0)
    assert m.counters["ops"] == 5
    assert m.gauges["depth"] == 1.0
    assert m.histogram("lat").mean() == pytest.approx(15.0)
    snap = m.snapshot()
    assert snap["counters"]["ops"] == 5
    assert snap["histograms"]["lat"]["count"] == 2
    m.clear()
    assert not m.counters and not m.gauges and not m.histograms


def test_observability_observe_gated_by_enabled():
    obs = Observability(enabled=False)
    obs.observe("lat", 1.0)
    assert "lat" not in obs.metrics.histograms
    obs.enabled = True
    obs.observe("lat", 1.0)
    assert obs.metrics.histogram("lat").count == 1


def test_observability_count_always_on():
    obs = Observability(enabled=False)
    obs.count("bytes", 10)
    obs.gauge("q", 2.0)
    assert obs.metrics.counters["bytes"] == 10
    assert obs.metrics.gauges["q"] == 2.0
