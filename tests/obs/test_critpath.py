"""Critical-path extraction: partition property, slack, containment."""

from __future__ import annotations

import pytest

from repro.cluster.testbed import Testbed
from repro.core.job import DataJob
from repro.core.loadbalance import AlwaysOffloadPolicy
from repro.obs.critpath import (
    critical_path,
    format_critical_path,
    job_critical_path,
)
from repro.obs.export import span_dicts
from repro.sched import ClusterScheduler
from repro.units import MB
from repro.workloads import text_input


def sp(
    id_: int,
    name: str,
    t0: float,
    t1: float,
    parent: int | None = None,
    track: str = "main",
    cat: str = "",
) -> dict:
    return {
        "id": id_, "parent_id": parent, "name": name, "cat": cat,
        "track": track, "t0": float(t0), "dur": float(t1 - t0),
        "wall_dur": 0.0, "attrs": {},
    }


def _assert_partitions(cp: dict) -> None:
    """The walk's defining invariant: exclusive segments partition the
    root's window exactly — time-ordered, disjoint, gap-free."""
    assert cp["covered"] == pytest.approx(1.0)
    assert sum(s["self"] for s in cp["path"]) == pytest.approx(cp["wall"])
    cursor = cp["root"]["t0"]
    for seg in cp["path"]:
        assert seg["t0"] == pytest.approx(cursor)
        assert seg["t1"] > seg["t0"]
        cursor = seg["t1"]
    assert cursor == pytest.approx(cp["root"]["t0"] + cp["root"]["dur"])


def test_single_span():
    cp = critical_path([sp(1, "job", 0, 10)])
    assert cp["wall"] == pytest.approx(10.0)
    assert [s["name"] for s in cp["path"]] == ["job"]
    _assert_partitions(cp)


def test_nested_tree_partitions_wall():
    spans = [
        sp(1, "root", 0, 10),
        sp(2, "A", 1, 4, parent=1),
        sp(3, "B", 5, 9, parent=1),
        sp(4, "C", 6, 8, parent=3),
    ]
    cp = critical_path(spans)
    _assert_partitions(cp)
    assert [(s["name"], s["t0"], s["t1"]) for s in cp["path"]] == [
        ("root", 0.0, 1.0), ("A", 1.0, 4.0), ("root", 4.0, 5.0),
        ("B", 5.0, 6.0), ("C", 6.0, 8.0), ("B", 8.0, 9.0),
        ("root", 9.0, 10.0),
    ]
    by = {r["name"]: r for r in cp["by_name"]}
    assert by["root"]["self"] == pytest.approx(3.0)
    assert by["A"]["self"] == pytest.approx(3.0)
    assert by["B"]["self"] == pytest.approx(2.0)
    assert by["C"]["self"] == pytest.approx(2.0)
    assert by["root"]["pct"] == pytest.approx(30.0)


def test_slack_against_runner_up_sibling():
    spans = [
        sp(1, "root", 0, 10),
        sp(2, "A", 1, 4, parent=1),
        sp(3, "B", 5, 9, parent=1),
    ]
    cp = critical_path(spans)
    _assert_partitions(cp)
    segs = {(s["name"], s["t1"]): s for s in cp["path"]}
    # B could shrink 5s before the runner-up sibling A (end 4) becomes
    # critical; A is unopposed within its stretch, so its slack is its
    # own exclusive extent
    assert segs[("B", 9.0)]["slack"] == pytest.approx(5.0)
    assert segs[("A", 4.0)]["slack"] == pytest.approx(3.0)


def test_overlapping_siblings_clamped():
    spans = [
        sp(1, "root", 0, 10),
        sp(2, "X", 0, 6, parent=1),
        sp(3, "Y", 4, 10, parent=1),
    ]
    cp = critical_path(spans)
    _assert_partitions(cp)
    assert [(s["name"], s["t0"], s["t1"]) for s in cp["path"]] == [
        ("X", 0.0, 4.0), ("Y", 4.0, 10.0),
    ]
    # Y's margin: X ends at 6, Y at 10
    assert cp["path"][1]["slack"] == pytest.approx(4.0)


def test_root_name_filter_and_empty():
    spans = [sp(1, "a", 0, 5), sp(2, "b", 0, 8)]
    assert critical_path(spans)["root"]["name"] == "b"  # longest wins
    assert critical_path(spans, root_name="a")["root"]["name"] == "a"
    missing = critical_path(spans, root_name="nope")
    assert missing["root"] is None and missing["path"] == []
    assert critical_path([])["covered"] == 0.0


def test_containment_links_across_tracks():
    # no parent ids at all: sched track + node track, linked by interval
    spans = [
        sp(1, "sched.run", 0, 10, track="sched:j0"),
        sp(2, "fam.invoke", 2, 9, track="sd0"),
        sp(3, "fam.module.run", 3, 8, track="sd0"),
    ]
    for s in spans:
        s["parent_id"] = None
    cp = job_critical_path(spans, root_name="job")
    assert cp["root"]["name"] == "job"
    _assert_partitions(cp)
    by = {r["name"]: r for r in cp["by_name"]}
    assert by["fam.module.run"]["self"] == pytest.approx(5.0)
    assert by["fam.invoke"]["self"] == pytest.approx(2.0)
    assert by["sched.run"]["self"] == pytest.approx(3.0)


def test_containment_window_bounds():
    spans = [
        sp(1, "inside", 1, 3),
        sp(2, "outside", 10, 12),
    ]
    cp = job_critical_path(spans, window=(0.0, 4.0), root_name="w")
    assert cp["wall"] == pytest.approx(4.0)
    assert {s["name"] for s in cp["path"]} == {"inside", "w"}


def test_recorded_cluster_trace_coverage():
    """The acceptance bar: a real recorded serving trace's critical path
    covers >= 90% of the job's wall time."""
    tb = Testbed(n_sd=1, trace=True)
    inp = text_input("/data/cp.txt", MB(2), seed=5)
    _, sd_path = tb.stage_replicated("cp.txt", inp)
    sched = ClusterScheduler(
        tb.cluster, policy=AlwaysOffloadPolicy(), attempt_timeout=3600.0,
        cache=None,
    )
    ev = sched.submit(DataJob(
        app="wordcount", input_path=sd_path, input_size=inp.size,
    ))
    tb.sim.run(until=ev)
    cp = job_critical_path(span_dicts(tb.sim.obs), root_name="job")
    assert cp["covered"] >= 0.90
    assert all(s["slack"] >= 0.0 for s in cp["path"])
    assert sum(s["self"] for s in cp["path"]) == pytest.approx(cp["wall"])


def test_format_critical_path():
    spans = [sp(1, "root", 0, 10), sp(2, "A", 1, 4, parent=1)]
    text = format_critical_path(critical_path(spans), time_unit="ms")
    assert "critical path of root" in text
    assert "cover 100.0%" in text
    assert "slack" in text and "by span name" in text
    assert "ms" in text
    empty = critical_path([])
    assert format_critical_path(empty).startswith("(no critical path")
