"""SLO tracker semantics against hand-computed fixtures."""

from __future__ import annotations

import pytest

from repro.cluster.testbed import Testbed
from repro.core.job import DataJob
from repro.core.loadbalance import AlwaysOffloadPolicy
from repro.obs.slo import (
    HealthReport,
    SLOPolicy,
    SLOTracker,
    build_health_report,
)
from repro.sched import ClusterScheduler
from repro.units import MB
from repro.workloads import text_input


def test_policy_validation():
    with pytest.raises(ValueError):
        SLOPolicy(target_s=0.0)
    with pytest.raises(ValueError):
        SLOPolicy(percentile=0.0)
    with pytest.raises(ValueError):
        SLOPolicy(error_budget=0.0)
    with pytest.raises(ValueError):
        SLOPolicy(error_budget=1.5)
    with pytest.raises(ValueError):
        SLOPolicy(window_s=-1.0)


def test_burn_rate_hand_computed():
    """20 samples, 2 over target, budget 10% -> burn exactly 1.0."""
    policy = SLOPolicy(
        tenant="t", target_s=1.0, percentile=95.0,
        error_budget=0.1, window_s=60.0,
    )
    tracker = SLOTracker({"t": policy})
    for i in range(1, 21):
        latency = 2.0 if i in (5, 15) else 0.5
        tracker.observe("t", t=float(i), latency=latency)
    st = tracker.status("t", now=30.0)
    assert st is not None
    assert st.window_total == 20 and st.window_bad == 2
    assert st.window_bad_fraction == pytest.approx(0.1)
    assert st.burn_rate == pytest.approx(1.0)
    # nearest-rank p95 of 20 samples is the 19th smallest: a 2.0s outlier
    assert st.percentile_latency == pytest.approx(2.0)
    assert not st.met  # p95 over target even though burn is sustainable
    # lifetime: 2/20 bad against a 0.1 budget -> budget exactly spent
    assert st.budget_remaining == pytest.approx(0.0)


def test_met_when_all_good():
    tracker = SLOTracker(SLOPolicy(tenant="t", target_s=1.0, error_budget=0.1))
    for i in range(10):
        tracker.observe("t", t=float(i), latency=0.5)
    st = tracker.status("t", now=10.0)
    assert st.met
    assert st.burn_rate == 0.0
    assert st.percentile_latency == pytest.approx(0.5)
    assert st.budget_remaining == pytest.approx(1.0)


def test_window_expiry():
    policy = SLOPolicy(tenant="t", target_s=1.0, window_s=5.0)
    tracker = SLOTracker({"t": policy})
    for i in range(10):  # t = 0..9
        tracker.observe("t", t=float(i), latency=0.1)
    st = tracker.status("t", now=10.0)
    assert st.total == 10  # lifetime keeps everything
    assert st.window_total == 4  # only t in (5, 10], i.e. 6..9


def test_failed_always_burns_budget():
    tracker = SLOTracker(SLOPolicy(tenant="t", target_s=10.0, error_budget=0.5))
    tracker.observe("t", t=1.0, latency=0.0, failed=True)
    st = tracker.status("t", now=2.0)
    assert st.bad == 1 and st.window_bad == 1


def test_percentile_nearest_rank():
    tracker = SLOTracker(SLOPolicy(tenant="t", target_s=100.0, percentile=50.0))
    for i in range(1, 11):
        tracker.observe("t", t=1.0, latency=float(i))
    st = tracker.status("t", now=2.0)
    assert st.percentile_latency == pytest.approx(5.0)  # ceil(0.5*10) = 5th
    p95 = SLOTracker(SLOPolicy(tenant="t", target_s=100.0, percentile=95.0))
    for i in range(1, 11):
        p95.observe("t", t=1.0, latency=float(i))
    assert p95.status("t", now=2.0).percentile_latency == pytest.approx(10.0)


def test_star_policy_is_default():
    star = SLOPolicy(tenant="*", target_s=2.0)
    gold = SLOPolicy(tenant="gold", target_s=0.5)
    tracker = SLOTracker([star, gold])
    assert tracker.policy_for("anyone") is star
    assert tracker.policy_for("gold") is gold


def test_no_policy_no_verdict():
    tracker = SLOTracker()
    tracker.observe("t", t=1.0, latency=0.5)
    assert tracker.status("t", now=2.0) is None
    assert tracker.latency_stats("t")["n"] == 1


def test_empty_window_is_met():
    tracker = SLOTracker(SLOPolicy(tenant="t"))
    st = tracker.status("t", now=100.0)
    assert st.met and st.window_total == 0 and st.burn_rate == 0.0


def test_health_report_aggregation():
    good = SLOPolicy(tenant="good", target_s=10.0, error_budget=0.1)
    bad = SLOPolicy(tenant="bad", target_s=0.1, error_budget=0.01)
    tracker = SLOTracker([good, bad])
    tracker.observe("good", t=1.0, latency=0.5)
    tracker.observe("bad", t=1.0, latency=5.0)  # misses its target
    report = build_health_report(
        tracker, now=2.0, queue_depth=3, unhealthy_nodes=["sd1"],
    )
    assert isinstance(report, HealthReport)
    assert not report.healthy  # bad tenant violating + quarantined node
    assert report.queue_depth == 3
    assert report.unhealthy_nodes == ["sd1"]
    # bad tenant: window fraction 1.0 over a 0.01 budget
    assert report.worst_burn_rate == pytest.approx(100.0)
    d = report.to_dict()
    assert set(d["slo"]) == {"good", "bad"}
    assert d["slo"]["good"]["met"] and not d["slo"]["bad"]["met"]
    assert d["worst_burn_rate"] == pytest.approx(100.0)
    assert set(d["latency"]) == {"good", "bad"}


def test_health_report_healthy():
    tracker = SLOTracker(SLOPolicy(tenant="*", target_s=10.0))
    tracker.observe("t", t=1.0, latency=0.5)
    report = build_health_report(
        tracker, now=2.0, queue_depth=0, unhealthy_nodes=[],
    )
    assert report.healthy and report.worst_burn_rate == 0.0


def _run_one_job(slo) -> ClusterScheduler:
    tb = Testbed(n_sd=1)
    inp = text_input("/data/slo.txt", MB(2), seed=7)
    _, sd_path = tb.stage_replicated("slo.txt", inp)
    sched = ClusterScheduler(
        tb.cluster, policy=AlwaysOffloadPolicy(), attempt_timeout=3600.0,
        cache=None, slo=slo,
    )
    ev = sched.submit(DataJob(
        app="wordcount", input_path=sd_path, input_size=inp.size,
    ))
    tb.sim.run(until=ev)
    return sched


def test_scheduler_health_report_end_to_end():
    sched = _run_one_job(SLOPolicy(tenant="*", target_s=3600.0))
    report = sched.health_report()
    assert report.healthy
    assert report.queue_depth == 0
    assert report.slo["default"].total == 1
    assert report.slo["default"].met


def test_scheduler_health_report_violation():
    # an impossible target: every completion burns budget
    sched = _run_one_job(SLOPolicy(tenant="*", target_s=1e-9, error_budget=0.01))
    report = sched.health_report()
    assert not report.healthy
    assert report.worst_burn_rate > 1.0
