"""Flight recorder: bounded ring, black-box dumps, crash-path wiring."""

from __future__ import annotations

import glob
import operator
import os

import pytest

from repro.apps.wordcount import wc_map
from repro.errors import WorkerCrashError
from repro.exec import LocalMapReduce
from repro.faults import FaultPlan, FaultRule
from repro.obs import Observability
from repro.obs.flight import (
    FlightRecorder,
    default_capacity,
    dump_live,
    install_default,
    read_dump,
)


def test_ring_is_bounded_with_counted_drops():
    rec = FlightRecorder(capacity=4)
    for i in range(10):
        rec.note_count("c", float(i), time_=float(i))
    assert len(rec) == 4
    assert rec.dropped == 6
    # the ring keeps the newest entries
    assert [e.detail for e in rec] == [6.0, 7.0, 8.0, 9.0]


def test_capacity_validation():
    with pytest.raises(ValueError):
        FlightRecorder(capacity=0)


def test_records_and_counts_feed_with_tracing_off():
    obs = Observability(enabled=False, flight=True)
    obs.record("ev", 1.0, "detail")
    obs.count("nfs.bytes", 512)
    kinds = {e.kind for e in obs.flight}
    assert kinds == {"record", "count"}
    # tracing stayed off: the record log itself saw nothing
    assert len(list(obs.records)) == 0


def test_spans_feed_when_enabled():
    obs = Observability(enabled=True, flight=True)
    with obs.span("x", cat="c", track="t"):
        pass
    spans = [e for e in obs.flight if e.kind == "span"]
    assert [e.name for e in spans] == ["x"]
    dur, cat, track = spans[0].detail
    assert cat == "c" and track == "t"


def test_dump_read_round_trip(tmp_path):
    obs = Observability(enabled=False, flight=True)
    obs.count("a", 1)
    obs.record("ev", 2.0, "boom detail")
    path = obs.dump_blackbox(
        str(tmp_path / "box.jsonl"), reason="unit test", extra={"k": 1},
    )
    meta, entries = read_dump(path)
    assert meta["run_id"] == obs.run_id
    assert meta["reason"] == "unit test"
    assert meta["k"] == 1
    assert meta["entries"] == len(entries) == 2
    assert meta["dropped"] == 0
    assert meta["counters"]["a"] == 1
    assert {e["type"] for e in entries} == {"count", "record"}


def test_dump_blackbox_without_recorder_is_none(tmp_path):
    obs = Observability(enabled=False)
    assert obs.dump_blackbox(str(tmp_path / "box.jsonl")) is None


def test_dump_live_skips_empty_rings(tmp_path):
    full = FlightRecorder(capacity=8, run_id="full1234")
    full.note_count("c", 1.0, time_=0.0)
    FlightRecorder(capacity=8, run_id="empty567")  # nothing recorded
    paths = dump_live(str(tmp_path), reason="gate failed")
    names = {os.path.basename(p) for p in paths}
    assert any("full1234" in n for n in names)
    assert not any("empty567" in n for n in names)
    meta, entries = read_dump(next(p for p in paths if "full1234" in p))
    assert meta["reason"] == "gate failed" and len(entries) == 1


def test_install_default_governs_new_registries():
    before = default_capacity()
    try:
        install_default(32)
        obs = Observability(enabled=False)
        assert obs.flight is not None and obs.flight.capacity == 32
        install_default(None)
        assert Observability(enabled=False).flight is None
        # explicit flight beats the process default
        assert Observability(enabled=False, flight=16).flight.capacity == 16
    finally:
        install_default(before)


def test_clear_resets_ring_and_drop_counter():
    rec = FlightRecorder(capacity=2)
    for i in range(5):
        rec.note_count("c", 1.0, time_=float(i))
    rec.clear()
    assert len(rec) == 0 and rec.dropped == 0


def test_worker_crash_writes_readable_blackbox(tmp_path):
    """A task that exhausts its retries dumps the ring and names the file
    in the raised error — the post-mortem path end to end."""
    src = tmp_path / "f.txt"
    src.write_bytes(b"alpha beta gamma delta " * 40)
    plan = FaultPlan(
        rules=(FaultRule("pool.worker", action="fail", count=10,
                         where={"index": 0}),),
        seed=3,
    )
    obs = Observability(enabled=False, flight=True)
    with LocalMapReduce(
        map_fn=wc_map, combine_fn=operator.add,
        n_workers=2, start_method="fork", transport="pickle",
        faults=plan, obs=obs, blackbox_dir=str(tmp_path),
    ) as eng:
        with pytest.raises(WorkerCrashError) as exc_info:
            eng.run(str(src), chunk_bytes=256)
    assert "[black box: " in str(exc_info.value)
    boxes = glob.glob(str(tmp_path / "blackbox-pool-*.jsonl"))
    assert len(boxes) == 1
    meta, entries = read_dump(boxes[0])
    assert meta["run_id"] == obs.run_id
    assert "exhausted retries" in meta["reason"]
    assert meta["task_index"] == 0
    # the ring caught the retry counters leading up to the failure
    assert any(e["type"] == "count" and e["name"] == "retry.pool"
               for e in entries)
    assert meta["counters"]["retry.pool"] >= 1
