"""Integration: spans recorded by the instrumented layers line up with
the smartFAM protocol and the Phoenix phase structure."""

from __future__ import annotations

import pytest

from repro.cluster.testbed import Testbed
from repro.units import MB
from repro.workloads import text_input


@pytest.fixture(scope="module")
def traced_run():
    bed = Testbed(seed=5, trace=True)
    size = MB(2)
    inp = text_input("/data/input", size, payload_bytes=5_000, seed=6)
    _sd, _host, sd_path = bed.stage_on_sd("input", inp)
    channel = bed.cluster.channel()

    def proc():
        result = yield channel.invoke(
            "wordcount",
            {"input_path": sd_path, "input_size": size, "mode": "parallel"},
        )
        return result

    result = bed.run(proc())
    return bed, result


def _one(spans, name):
    matches = [s for s in spans if s.name == name]
    assert len(matches) == 1, f"{name}: {matches}"
    return matches[0]


def test_protocol_span_ordering(traced_run):
    bed, _ = traced_run
    spans = bed.sim.obs.spans
    invoke = _one(spans, "fam.invoke")
    write_params = _one(spans, "fam.invoke.write_params")
    # the daemon's own result write fires inotify again, producing a
    # second no-op dispatch; the real one carries the seq attribute
    dispatch = _one(
        [s for s in spans if "seq" in s.attrs], "fam.dispatch"
    )
    module_run = _one(spans, "fam.module.run")
    result_write = _one(spans, "fam.result.write")
    wait = _one(spans, "fam.return.wait")

    # Fig 5 causal order on the simulated clock
    assert write_params.t0 <= dispatch.t0
    assert dispatch.t0 <= module_run.t0
    assert module_run.t1 <= result_write.t1
    assert result_write.t1 <= wait.t1
    assert invoke.t0 <= write_params.t0
    assert wait.t1 <= invoke.t1

    # host-side nesting
    assert write_params.parent_id == invoke.id
    assert wait.parent_id == invoke.id
    assert wait.attrs["polls"] >= 1


def test_phoenix_phase_spans_nest_under_job(traced_run):
    bed, result = traced_run
    spans = bed.sim.obs.spans
    jobs = spans.by_name("phoenix.job")
    assert jobs, "no phoenix.job spans recorded"
    job = jobs[-1]
    names = {c.name for c in job.children()}
    assert {"phoenix.read", "phoenix.map"} <= names
    # the job span doubles as the JobStats timing source; the result came
    # back through the log-file pickle, so phases() exercises the
    # detached-span fallback to the materialized fields
    phases = result.stats.phases()
    assert phases.get("phoenix.map", 0.0) > 0.0
    assert result.stats.map_time == pytest.approx(phases["phoenix.map"])


def test_nfs_spans_account_bytes(traced_run):
    bed, _ = traced_run
    obs = bed.sim.obs
    reads = obs.spans.by_name("nfs.read")
    assert reads
    assert all(s.attrs.get("bytes", 0) > 0 for s in reads if s.done)
    assert obs.metrics.counters["nfs.bytes_read"] > 0
    assert obs.metrics.counters["net.bytes"] > 0


def test_breakdown_covers_invoke_within_5pct(traced_run):
    bed, _ = traced_run
    from repro.obs.export import phase_breakdown, span_dicts

    bd = phase_breakdown(span_dicts(bed.sim.obs), root_name="fam.invoke")
    # write_params + return.wait tile the whole invoke bar the lock
    assert bd["covered"] == pytest.approx(1.0, abs=0.05)


def test_untraced_run_records_no_spans_but_counts():
    bed = Testbed(seed=5, trace=False)
    size = MB(1)
    inp = text_input("/data/input", size, payload_bytes=5_000, seed=6)
    _sd, _host, sd_path = bed.stage_on_sd("input", inp)
    channel = bed.cluster.channel()

    def proc():
        return (yield channel.invoke(
            "wordcount",
            {"input_path": sd_path, "input_size": size, "mode": "parallel"},
        ))

    bed.run(proc())
    obs = bed.sim.obs
    # only the forced phoenix phase spans exist
    assert all(s.cat == "phoenix" for s in obs.spans)
    assert not obs.spans.by_name("fam.invoke")
    # counters still accumulated
    assert obs.metrics.counters["nfs.bytes_read"] > 0
