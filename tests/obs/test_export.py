"""Exporter round trips: Chrome trace, JSONL, and phase breakdown."""

from __future__ import annotations

import json

import pytest

from repro.errors import ProvenanceError
from repro.obs import Observability
from repro.obs.export import (
    chrome_trace,
    environment_provenance,
    format_breakdown,
    load_metrics,
    load_run_id,
    load_spans,
    phase_breakdown,
    span_dicts,
    write_chrome,
    write_jsonl,
)

from tests.obs.test_spans import make_obs


def build_trace() -> Observability:
    obs = make_obs()
    with obs.span("job", cat="phoenix", track="sd0", app="wc") as job:
        obs._advance(1.0)
        with obs.span("read", cat="phoenix", track="sd0"):
            obs._advance(2.0)
        with obs.span("map", cat="phoenix", track="sd0"):
            obs._advance(6.0)
        with obs.span("write", cat="phoenix", track="sd0"):
            obs._advance(1.0)
        job.set(done=True)
    obs.count("nfs.bytes_read", 4096)
    obs.record("event", 1.0, "detail")
    return obs


def test_chrome_trace_shape():
    obs = build_trace()
    doc = chrome_trace(obs)
    assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
    complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
    assert len(complete) == 4
    assert any(
        m["name"] == "thread_name" and m["args"]["name"] == "sd0" for m in meta
    )
    job = next(e for e in complete if e["name"] == "job")
    assert job["ts"] == pytest.approx(0.0)
    assert job["dur"] == pytest.approx(10.0 * 1e6)  # microseconds
    assert job["args"]["app"] == "wc"
    assert doc["otherData"]["metrics"]["counters"]["nfs.bytes_read"] == 4096
    assert doc["otherData"]["environment"]["python"]


def test_chrome_round_trip(tmp_path):
    obs = build_trace()
    path = write_chrome(obs, str(tmp_path / "trace.json"))
    json.load(open(path))  # valid JSON for Perfetto
    spans = load_spans(path)
    assert {s["name"] for s in spans} == {"job", "read", "map", "write"}
    job = next(s for s in spans if s["name"] == "job")
    kids = [s for s in spans if s["parent_id"] == job["id"]]
    assert {s["name"] for s in kids} == {"read", "map", "write"}
    assert job["track"] == "sd0"
    assert job["dur"] == pytest.approx(10.0)


def test_jsonl_round_trip(tmp_path):
    obs = build_trace()
    path = write_jsonl(obs, str(tmp_path / "trace.jsonl"))
    lines = [json.loads(line) for line in open(path)]
    assert lines[0]["type"] == "meta"
    assert any(line.get("type") == "record" for line in lines)
    spans = load_spans(path)
    assert {s["name"] for s in spans} == {"job", "read", "map", "write"}
    assert load_spans(path) == load_spans(path)  # stable


def test_both_formats_agree(tmp_path):
    obs = build_trace()
    a = load_spans(write_chrome(obs, str(tmp_path / "a.json")))
    b = load_spans(write_jsonl(obs, str(tmp_path / "b.jsonl")))
    key = lambda s: s["id"]  # noqa: E731
    for sa, sb in zip(sorted(a, key=key), sorted(b, key=key)):
        assert sa["name"] == sb["name"]
        assert sa["track"] == sb["track"]
        assert sa["dur"] == pytest.approx(sb["dur"])
        assert sa["parent_id"] == sb["parent_id"]


def test_phase_breakdown_covers_job():
    obs = build_trace()
    bd = phase_breakdown(span_dicts(obs))
    assert bd["root"]["name"] == "job"
    assert bd["total"] == pytest.approx(10.0)
    # read+map+write = 9 of 10 seconds; the attribute-set tail is outside
    assert bd["covered"] == pytest.approx(0.9)
    names = [row["name"] for row in bd["phases"]]
    assert names == ["map", "read", "write"]  # sorted by total desc
    table = format_breakdown(bd)
    assert "map" in table and "%" in table


def test_phase_breakdown_empty():
    bd = phase_breakdown([])
    assert bd["phases"] == [] and bd["total"] == 0.0
    assert format_breakdown(bd) == "(no spans)"


def test_environment_provenance_fields():
    env = environment_provenance()
    assert {"python", "implementation", "platform", "cpu_count", "argv"} <= set(env)


def test_run_id_round_trip(tmp_path):
    obs = build_trace()
    for path in (
        write_chrome(obs, str(tmp_path / "a.json")),
        write_jsonl(obs, str(tmp_path / "b.jsonl")),
    ):
        assert load_run_id(path) == obs.run_id
        # matching run id loads cleanly
        assert load_spans(path, run_id=obs.run_id)
        assert load_metrics(path, run_id=obs.run_id)


def test_mismatched_run_id_raises(tmp_path):
    obs = build_trace()
    path = write_jsonl(obs, str(tmp_path / "t.jsonl"))
    with pytest.raises(ProvenanceError) as exc_info:
        load_spans(path, run_id="someoneelse")
    err = exc_info.value
    assert err.path == path
    assert err.expected == "someoneelse"
    assert err.found == obs.run_id
    with pytest.raises(ProvenanceError):
        load_metrics(path, run_id="someoneelse")


def test_unstamped_file_warns(tmp_path):
    obs = build_trace()
    path = write_jsonl(obs, str(tmp_path / "old.jsonl"))
    # simulate a pre-provenance export: strip the stamp from the meta line
    lines = open(path).read().splitlines()
    meta = json.loads(lines[0])
    del meta["run_id"]
    with open(path, "w") as f:
        f.write("\n".join([json.dumps(meta)] + lines[1:]) + "\n")
    assert load_run_id(path) is None
    with pytest.warns(UserWarning, match="no run id"):
        spans = load_spans(path, run_id="whatever")
    assert spans  # still loads
    # no expectation, no check, no warning
    assert load_spans(path)


def test_unjsonable_attrs_become_repr(tmp_path):
    obs = make_obs()
    with obs.span("odd", track="t", payload=object()):
        pass
    path = write_chrome(obs, str(tmp_path / "odd.json"))
    spans = load_spans(path)
    assert isinstance(spans[0]["attrs"]["payload"], str)
