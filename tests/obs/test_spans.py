"""Span tree semantics: nesting, tracks, disabled path, pickling."""

from __future__ import annotations

import pickle

import pytest

from repro.obs import NULL_SPAN, Observability
from repro.obs.spans import NullSpan, SpanStore


class FakeClockObs(Observability):
    """Observability on a manually advanced clock."""

    __slots__ = ("t",)

    def __init__(self, enabled: bool = True):
        super().__init__(enabled=enabled)
        self.t = 0.0
        self.bind_clock(lambda: self.t)

    def _advance(self, dt: float) -> None:
        self.t += dt


def make_obs(enabled: bool = True) -> FakeClockObs:
    return FakeClockObs(enabled=enabled)


def test_nesting_same_track():
    obs = make_obs()
    with obs.span("outer", track="a") as outer:
        obs._advance(1.0)
        with obs.span("inner", track="a") as inner:
            obs._advance(2.0)
    assert inner.parent_id == outer.id
    assert outer.parent_id is None
    assert inner.dur == pytest.approx(2.0)
    assert outer.dur == pytest.approx(3.0)
    assert [c.name for c in outer.children()] == ["inner"]


def test_no_cross_track_nesting():
    obs = make_obs()
    with obs.span("host-side", track="host"):
        with obs.span("sd-side", track="sd0") as sd_sp:
            pass
    assert sd_sp.parent_id is None


def test_attrs_and_set():
    obs = make_obs()
    with obs.span("op", track="t", module="wc") as sp:
        sp.set(seq=3, polls=7)
    assert sp.attrs == {"module": "wc", "seq": 3, "polls": 7}


def test_exception_marks_error_attr():
    obs = make_obs()
    with pytest.raises(ValueError):
        with obs.span("risky", track="t") as sp:
            raise ValueError("boom")
    assert sp.attrs["error"] == "ValueError"
    assert sp.done


def test_disabled_returns_null_span():
    obs = make_obs(enabled=False)
    sp = obs.span("anything", track="t", attr=1)
    assert sp is NULL_SPAN
    assert isinstance(sp, NullSpan)
    assert sp.children() == []
    with sp as entered:
        entered.set(ignored=True)
    assert len(obs.spans) == 0


def test_force_records_even_when_disabled():
    obs = make_obs(enabled=False)
    with obs.span("phase", track="t", force=True) as sp:
        pass
    assert sp is not NULL_SPAN
    assert len(obs.spans) == 1


def test_close_is_idempotent():
    obs = make_obs()
    sp = obs.span("once", track="t")
    obs._advance(1.0)
    sp.close()
    end = sp.t1
    obs._advance(5.0)
    sp.close()
    assert sp.t1 == end


def test_add_span_stitches_premeasured_segment():
    obs = make_obs()
    with obs.span("job", track="main") as job:
        seg = obs.add_span(
            "worker.map", 10.0, 12.5, track="worker-1",
            parent=job, wall_dur=2.0, attrs={"pid": 1},
        )
    assert seg.parent_id == job.id
    assert seg.dur == pytest.approx(2.5)
    assert seg.wall_dur == pytest.approx(2.0)
    assert seg in job.children()


def test_add_span_disabled_is_null():
    obs = make_obs(enabled=False)
    assert obs.add_span("w", 0.0, 1.0) is NULL_SPAN


def test_span_pickle_detaches_store():
    obs = make_obs()
    with obs.span("outer", track="t") as outer:
        obs._advance(2.0)
        with obs.span("inner", track="t"):
            pass
    clone = pickle.loads(pickle.dumps(outer))
    assert clone.name == "outer"
    assert clone.dur == pytest.approx(2.0)
    assert clone.children() == []  # detached from the store
    # the original is untouched
    assert [c.name for c in outer.children()] == ["inner"]


def test_store_roots_and_by_name():
    obs = make_obs()
    with obs.span("a", track="x"):
        with obs.span("b", track="x"):
            pass
    with obs.span("a", track="y"):
        pass
    assert len(obs.spans.by_name("a")) == 2
    assert [s.name for s in obs.spans.roots()] == ["a", "a"]


def test_out_of_order_close_keeps_store_sane():
    store = SpanStore(now=lambda: 0.0)
    outer = store.open("outer", "", "t", {})
    inner = store.open("inner", "", "t", {})
    outer.close()  # enclosing span closed first
    inner.close()
    assert outer.done and inner.done
    assert store._open.get("t") == []
