"""``tools/bench_diff.py``: flattening, direction heuristics, gating."""

from __future__ import annotations

import importlib.util
import json
import os

import pytest

_TOOLS = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "tools",
)


def _load_bench_diff():
    spec = importlib.util.spec_from_file_location(
        "bench_diff", os.path.join(_TOOLS, "bench_diff.py")
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


@pytest.fixture(scope="module")
def bd():
    return _load_bench_diff()


def test_flatten_paths_and_bools(bd):
    doc = {"a": 1, "b": {"c": 2.5, "ok": True}, "d": [3, {"e": 4}], "s": "x"}
    flat = bd.flatten(doc)
    assert flat == {"a": 1.0, "b.c": 2.5, "b.ok": 1.0, "d.0": 3.0, "d.1.e": 4.0}


def test_diff_flags_and_direction(bd):
    old = {"speedup": 2.0, "latency": {"p95_s": 1.0}, "run_id": "aaa"}
    new = {"speedup": 1.0, "latency": {"p95_s": 1.05}, "run_id": "bbb"}
    diff = bd.diff_payloads(old, new, threshold_pct=10.0)
    rows = {r[0]: r for r in diff["changed"]}
    # run_id is volatile and ignored entirely
    assert "run_id" not in rows
    # speedup halved: flagged, and smaller throughput is a regression
    assert rows["speedup"][5] and rows["speedup"][6]
    # p95 up 5%: under threshold, not flagged
    assert not rows["latency.p95_s"][5]


def test_latency_up_is_regression(bd):
    diff = bd.diff_payloads({"p95_s": 1.0}, {"p95_s": 2.0})
    (row,) = diff["changed"]
    assert row[5] and row[6]  # flagged and a regression
    # the same move down is an improvement
    diff = bd.diff_payloads({"p95_s": 2.0}, {"p95_s": 1.0})
    (row,) = diff["changed"]
    assert row[5] and not row[6]


def test_added_removed_paths(bd):
    diff = bd.diff_payloads({"gone": 1}, {"fresh": 2})
    assert diff["added"] == ["fresh"] and diff["removed"] == ["gone"]


def test_format_diff_report(bd):
    diff = bd.diff_payloads({"speedup": 2.0, "n": 5}, {"speedup": 1.0, "n": 5})
    text = bd.format_diff(diff)
    assert "1 changed, 1 unchanged" in text
    assert "speedup" in text and "-50.0%" in text
    assert "! = regression" in text


def test_main_gate_exit_codes(bd, tmp_path):
    a, b = tmp_path / "a.json", tmp_path / "b.json"
    a.write_text(json.dumps({"speedup": 2.0}))
    b.write_text(json.dumps({"speedup": 1.0}))
    # non-gating by default, even on a regression
    assert bd.main([str(a), str(b)]) == 0
    assert bd.main([str(a), str(b), "--gate"]) == 1
    # improvement passes the gate
    assert bd.main([str(b), str(a), "--gate"]) == 0
