"""Unit + property tests for the Fig 7 integrity check."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import IntegrityError
from repro.partition.integrity import (
    DEFAULT_DELIMITERS,
    integrity_check,
    safe_boundaries,
)


def test_boundary_already_safe():
    data = b"hello world"
    # position 6 is right after the space: safe as-is
    assert integrity_check(data, 6) == 0


def test_boundary_mid_word_advances_past_it():
    data = b"hello world again"
    # draft at 8 is inside "world"; next delimiter is index 11 -> boundary 12
    assert integrity_check(data, 8) == 4
    disp = integrity_check(data, 8)
    left, right = data[: 8 + disp], data[8 + disp :]
    assert left == b"hello world "
    assert right == b"again"


def test_boundary_at_or_past_end():
    data = b"abc def"
    assert integrity_check(data, len(data)) == 0
    assert integrity_check(data, len(data) + 10) == 0


def test_no_delimiter_until_end():
    data = b"aaaa bbbbbbbb"
    # draft inside the trailing run with no delimiter after it
    disp = integrity_check(data, 7)
    assert 7 + disp == len(data)


def test_custom_delimiters():
    data = b"row1\nrow2\nrow3"
    disp = integrity_check(data, 6, delimiters=b"\n")
    assert (6 + disp) == 10  # just after the second newline
    assert data[: 6 + disp] == b"row1\nrow2\n"


def test_validation():
    with pytest.raises(IntegrityError):
        integrity_check(b"abc", -1)
    with pytest.raises(IntegrityError):
        integrity_check(b"abc", 1, delimiters=b"")
    with pytest.raises(IntegrityError):
        safe_boundaries(b"abc", 0)


def test_safe_boundaries_cover_data():
    data = b"the quick brown fox jumps over the lazy dog " * 10
    bounds = safe_boundaries(data, 64)
    assert bounds[0] == 0
    assert bounds[-1] == len(data)
    assert bounds == sorted(bounds)


def test_safe_boundaries_empty_data():
    assert safe_boundaries(b"", 10) == [0, 0]


# ------------------------------------------------------------------ properties


@given(
    words=st.lists(
        st.binary(min_size=1, max_size=12).filter(
            lambda w: not any(bytes([c]) in DEFAULT_DELIMITERS for c in w)
        ),
        min_size=1,
        max_size=200,
    ),
    frag=st.integers(min_value=1, max_value=64),
)
@settings(max_examples=200, deadline=None)
def test_property_no_word_ever_split(words, frag):
    """Fragments reconstruct the input and never cut a word in half."""
    data = b" ".join(words)
    bounds = safe_boundaries(data, frag)
    fragments = [data[bounds[i] : bounds[i + 1]] for i in range(len(bounds) - 1)]
    # reconstruction
    assert b"".join(fragments) == data
    # no split words: every fragment's words are words of the input
    vocab = set(data.split())
    for fragment in fragments:
        for word in fragment.split():
            assert word in vocab
    # word multiset is preserved exactly
    from collections import Counter

    assert sum((Counter(f.split()) for f in fragments), Counter()) == Counter(
        data.split()
    )


@given(
    data=st.binary(min_size=0, max_size=2000),
    draft=st.integers(min_value=0, max_value=2500),
)
@settings(max_examples=200, deadline=None)
def test_property_integrity_check_lands_on_safe_point(data, draft):
    disp = integrity_check(data, draft)
    boundary = draft + disp
    assert disp >= 0
    assert boundary <= len(data) or draft >= len(data)
    if 0 < boundary < len(data):
        # boundary sits right after a delimiter
        assert bytes(data[boundary - 1 : boundary]) in {
            DEFAULT_DELIMITERS[i : i + 1] for i in range(len(DEFAULT_DELIMITERS))
        }


@given(
    data=st.binary(min_size=1, max_size=3000),
    frag=st.integers(min_value=1, max_value=500),
)
@settings(max_examples=200, deadline=None)
def test_property_boundaries_monotone_and_complete(data, frag):
    bounds = safe_boundaries(data, frag)
    assert bounds[0] == 0
    assert bounds[-1] == len(data)
    assert all(b2 > b1 for b1, b2 in zip(bounds, bounds[1:]))
