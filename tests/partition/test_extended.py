"""Integration tests for the extended (partition-enabled) runtime, Fig 6."""

from __future__ import annotations

import pytest

from repro.config import table1_cluster
from repro.errors import PartitionError
from repro.net import Fabric
from repro.node import Node
from repro.phoenix import PhoenixRuntime
from repro.partition import ExtendedPhoenixRuntime
from repro.apps import make_stringmatch_spec, make_wordcount_spec
from repro.sim import Simulator
from repro.units import MB
from repro.workloads import encrypted_input, text_input


@pytest.fixture()
def sd_env():
    cfg = table1_cluster()
    sim = Simulator(seed=4)
    fab = Fabric(sim, cfg.network)
    sd = Node(sim, cfg.node("sd0"), fab)
    sd.fs.vfs.mkdir("/data")
    return sim, sd, cfg


def stage(sd, inp):
    sd.fs.vfs.write(inp.path, data=inp.payload_bytes or b"", size=inp.size)


def run(sim, gen):
    p = sim.spawn(gen)
    return sim.run(until=p)


def test_partitioned_output_equals_unpartitioned(sd_env):
    sim, sd, cfg = sd_env
    inp = text_input("/data/f", MB(1000), payload_bytes=40_000, seed=13)
    stage(sd, inp)
    rt = PhoenixRuntime(sd, cfg.phoenix)
    ext = ExtendedPhoenixRuntime(sd, cfg.phoenix)

    def proc():
        whole = yield rt.run(make_wordcount_spec(), inp, mode="parallel")
        parts = yield ext.run(make_wordcount_spec(), inp, fragment_bytes=MB(300))
        return whole.output, parts.output, parts.n_fragments

    whole_out, part_out, n_frags = run(sim, proc())
    assert n_frags == 4
    assert dict(whole_out) == dict(part_out)
    # order (by decreasing frequency) must match as well
    assert [k for k, _ in whole_out] == [k for k, _ in part_out]


def test_partitioned_supports_beyond_memory_limit(sd_env):
    """The headline capability: sizes the original runtime cannot run."""
    sim, sd, cfg = sd_env
    inp = text_input("/data/f", MB(2000), payload_bytes=30_000, seed=5)
    stage(sd, inp)
    ext = ExtendedPhoenixRuntime(sd, cfg.phoenix)

    def proc():
        res = yield ext.run(make_wordcount_spec(), inp, fragment_bytes=None)
        return res

    res = run(sim, proc())
    assert res.n_fragments >= 5
    assert sum(v for _, v in res.output) == len(inp.payload_bytes.split())


def test_stringmatch_partitioned_matches_planted(sd_env):
    sim, sd, cfg = sd_env
    inp, keys, planted = encrypted_input(
        "/data/f", MB(1200), payload_bytes=30_000, hit_rate=0.15, seed=21
    )
    stage(sd, inp)
    ext = ExtendedPhoenixRuntime(sd, cfg.phoenix)

    def proc():
        res = yield ext.run(make_stringmatch_spec(), inp, fragment_bytes=MB(400))
        return res

    res = run(sim, proc())
    assert sum(v for _, v in res.output) == planted


def test_missing_merge_fn_rejected(sd_env):
    sim, sd, cfg = sd_env
    from repro.phoenix.api import MapReduceSpec
    from repro.apps.wordcount import WC_PROFILE, wc_map

    spec = MapReduceSpec(name="nomerge", map_fn=wc_map, profile=WC_PROFILE)
    inp = text_input("/data/f", MB(100), payload_bytes=2_000, seed=1)
    stage(sd, inp)
    ext = ExtendedPhoenixRuntime(sd, cfg.phoenix)

    def proc():
        yield ext.run(spec, inp)

    with pytest.raises(PartitionError, match="merge_fn"):
        run(sim, proc())


def test_single_fragment_skips_merge_cost(sd_env):
    sim, sd, cfg = sd_env
    inp = text_input("/data/f", MB(100), payload_bytes=5_000, seed=2)
    stage(sd, inp)
    ext = ExtendedPhoenixRuntime(sd, cfg.phoenix)

    def proc():
        res = yield ext.run(make_wordcount_spec(), inp, fragment_bytes=MB(600))
        return res

    res = run(sim, proc())
    assert res.n_fragments == 1
    assert res.merge_time == 0.0


def test_fragment_stats_recorded_per_fragment(sd_env):
    sim, sd, cfg = sd_env
    inp = text_input("/data/f", MB(900), payload_bytes=20_000, seed=3)
    stage(sd, inp)
    ext = ExtendedPhoenixRuntime(sd, cfg.phoenix)

    def proc():
        res = yield ext.run(make_wordcount_spec(), inp, fragment_bytes=MB(300))
        return res

    res = run(sim, proc())
    assert len(res.fragment_stats) == 3
    assert all(s.elapsed > 0 for s in res.fragment_stats)
    assert res.elapsed >= sum(s.elapsed for s in res.fragment_stats)


def test_fragments_keep_node_memory_low(sd_env):
    """Partitioning's point: peak pressure stays in the clean region."""
    sim, sd, cfg = sd_env
    inp = text_input("/data/f", MB(1500), payload_bytes=20_000, seed=6)
    stage(sd, inp)
    ext = ExtendedPhoenixRuntime(sd, cfg.phoenix)

    def proc():
        res = yield ext.run(make_wordcount_spec(), inp, fragment_bytes=None)
        return res

    res = run(sim, proc())
    policy = sd.config.memory_policy
    for s in res.fragment_stats:
        assert s.peak_pressure <= policy.thrash_fraction + 1e-9


def test_partitioned_beats_traditional_at_large_size(sd_env):
    sim, sd, cfg = sd_env
    inp = text_input("/data/f", MB(1250), payload_bytes=20_000, seed=7)
    stage(sd, inp)
    rt = PhoenixRuntime(sd, cfg.phoenix)
    ext = ExtendedPhoenixRuntime(sd, cfg.phoenix)

    def proc():
        trad = yield rt.run(make_wordcount_spec(), inp, mode="parallel")
        part = yield ext.run(make_wordcount_spec(), inp, fragment_bytes=None)
        return trad.stats.elapsed, part.elapsed

    trad_t, part_t = run(sim, proc())
    # Section V-B: "the elapsed time of Partition-enabled approach is only
    # 1/6 of the traditional one" at huge data sizes
    assert trad_t / part_t > 4.5
