"""Unit + property tests for fragment planning."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import PhoenixConfig
from repro.errors import PartitionError
from repro.phoenix.api import CostProfile, InputSpec
from repro.partition.partitioner import auto_fragment_bytes, plan_fragments
from repro.units import GiB, MB

PROFILE = CostProfile("wc-like", map_ops_per_byte=1.0, footprint_factor=3.0)
CFG = PhoenixConfig()


def make_input(size, payload=b"alpha beta gamma delta " * 50):
    return InputSpec(path="/data/f", size=size, payload=payload)


def test_small_input_single_fragment():
    plan = plan_fragments(make_input(MB(100)), MB(600), GiB(2), PROFILE, CFG)
    assert plan.n_fragments == 1
    assert plan.fragments[0].size == MB(100)


def test_declared_sizes_partition_exactly():
    plan = plan_fragments(make_input(MB(1250)), MB(600), GiB(2), PROFILE, CFG)
    sizes = [f.size for f in plan.fragments]
    assert sum(sizes) == MB(1250)
    assert sizes == [MB(600), MB(600), MB(50)]


def test_exact_multiple_has_no_empty_tail():
    plan = plan_fragments(make_input(MB(1200)), MB(600), GiB(2), PROFILE, CFG)
    assert [f.size for f in plan.fragments] == [MB(600), MB(600)]


def test_offsets_are_cumulative():
    plan = plan_fragments(make_input(MB(1250)), MB(600), GiB(2), PROFILE, CFG)
    offsets = [f.offset for f in plan.fragments]
    assert offsets == [0, MB(600), MB(1200)]


def test_payload_reconstructs():
    payload = b"one two three four five six seven eight nine ten " * 20
    plan = plan_fragments(
        make_input(MB(1000), payload), MB(300), GiB(2), PROFILE, CFG
    )
    joined = b"".join(f.payload for f in plan.fragments)
    assert joined == payload


def test_auto_sizing_targets_memory_fraction():
    frag = auto_fragment_bytes(GiB(2), PROFILE, CFG)
    expected = int(CFG.auto_fragment_fraction * GiB(2) / PROFILE.footprint_factor)
    assert frag == expected
    plan = plan_fragments(make_input(MB(1000)), None, GiB(2), PROFILE, CFG)
    assert plan.auto_sized
    # per-fragment working set fits in half the memory
    assert PROFILE.footprint(plan.fragment_bytes) <= 0.5 * GiB(2) + PROFILE.footprint_factor


def test_no_payload_plan_still_partitions():
    inp = InputSpec(path="/data/f", size=MB(1000), payload=None)
    plan = plan_fragments(inp, MB(400), GiB(2), PROFILE, CFG)
    assert [f.size for f in plan.fragments] == [MB(400), MB(400), MB(200)]
    assert all(f.payload is None for f in plan.fragments)


def test_non_byte_payload_rejected():
    inp = InputSpec(path="/data/f", size=MB(1000), payload=(1, 2))
    with pytest.raises(PartitionError, match="not.*partition"):
        plan_fragments(inp, MB(400), GiB(2), PROFILE, CFG)


def test_bad_fragment_size_rejected():
    with pytest.raises(PartitionError):
        plan_fragments(make_input(MB(10)), 0, GiB(2), PROFILE, CFG)


def test_params_propagate_to_fragments():
    inp = InputSpec(
        path="/data/f", size=MB(800), payload=b"x y z " * 100, params={"keys": [b"k"]}
    )
    plan = plan_fragments(inp, MB(300), GiB(2), PROFILE, CFG)
    assert all(f.params == {"keys": [b"k"]} for f in plan.fragments)


@given(
    size_mb=st.integers(min_value=1, max_value=4000),
    frag_mb=st.integers(min_value=1, max_value=1000),
    payload=st.binary(min_size=0, max_size=1500),
)
@settings(max_examples=150, deadline=None)
def test_property_plan_covers_declared_size(size_mb, frag_mb, payload):
    inp = InputSpec(path="/f", size=MB(size_mb), payload=payload or None)
    plan = plan_fragments(inp, MB(frag_mb), GiB(2), PROFILE, CFG)
    assert sum(f.size for f in plan.fragments) == MB(size_mb)
    assert all(f.size > 0 for f in plan.fragments)
    if payload:
        assert b"".join(f.payload or b"" for f in plan.fragments) == payload
    # offsets tile [0, size)
    pos = 0
    for f in plan.fragments:
        assert f.offset == pos
        pos += f.size
