"""Transport seam tests: selection, framing, degradation, recovery.

The engine-level contract under test is simple: whatever transport the
results ride — shm ring, pickle pipe, or inline fallback — the job's
output is byte-identical.  The unit-level contract is the slot frame:
``<length:u32><crc32:u32>`` ahead of a payload pickled straight into
shared memory, verified by the parent before unpickling.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.errors import TransportCorruptionError, TransportError
from repro.exec import LocalMapReduce, PickleTransport, ShmRingTransport, make_transport
from repro.exec import transport as transport_mod
from repro.faults import FaultPlan, FaultRule
from repro.obs import Observability


def _shm_works() -> bool:
    try:
        t = ShmRingTransport(n_slots=1, slot_bytes=256)
    except OSError:
        return False
    _close_ring(t)
    return True


def _close_ring(t: ShmRingTransport) -> None:
    """Close a ring whose worker side ran in this process too."""
    name = t.shm_name
    t.close()
    attached = transport_mod._ATTACHED.pop(name, None)
    if attached is not None:
        attached.close()


needs_shm = pytest.mark.skipif(
    not _shm_works(), reason="POSIX shared memory unavailable here"
)


# -- unit: the slot frame ----------------------------------------------------


@needs_shm
def test_slot_frame_roundtrip():
    t = ShmRingTransport(n_slots=2, slot_bytes=4096)
    try:
        payload = {b"word%03d" % i: i for i in range(50)}
        slot = t.acquire()
        wfn, wargs = t.wrap(lambda x: x, payload, slot)
        raw = wfn(wargs)
        assert raw[0] == "slot" and raw[1] == slot
        assert t.decode(raw) == payload
        t.release(slot)
    finally:
        _close_ring(t)


@needs_shm
def test_slot_acquire_release_cycle():
    t = ShmRingTransport(n_slots=2, slot_bytes=256)
    try:
        a, b = t.acquire(), t.acquire()
        assert {a, b} == {0, 1}
        assert t.acquire() is None  # ring full: the submission window closes
        t.release(a)
        assert t.acquire() == a
    finally:
        t.release(a)
        t.release(b)
        _close_ring(t)


@needs_shm
def test_oversize_result_falls_back_inline():
    obs = Observability(enabled=False)
    t = ShmRingTransport(n_slots=1, slot_bytes=64, obs=obs)
    try:
        big = b"x" * 1024  # pickles larger than the 64-byte slot
        slot = t.acquire()
        wfn, wargs = t.wrap(lambda x: x, big, slot)
        raw = wfn(wargs)
        assert raw[0] == "inline"
        assert t.decode(raw) == big
        assert obs.metrics.snapshot()["counters"]["transport.fallback"] == 1
        t.release(slot)
    finally:
        _close_ring(t)


@needs_shm
def test_corrupt_frame_raises_retryable_error():
    t = ShmRingTransport(n_slots=1, slot_bytes=4096)
    try:
        slot = t.acquire()
        wfn, wargs = t.wrap(lambda x: x, {"k": 1}, slot)
        kind, s, nbytes = wfn(wargs)
        t._shm.buf[transport_mod._FRAME.size + nbytes // 2] ^= 0xFF
        with pytest.raises(TransportCorruptionError):
            t.decode((kind, s, nbytes))
        # a length/descriptor mismatch is corruption too
        with pytest.raises(TransportCorruptionError):
            t.decode((kind, s, nbytes + 1))
        t.release(slot)
    finally:
        _close_ring(t)


@needs_shm
def test_transport_bytes_counter():
    obs = Observability(enabled=False)
    t = ShmRingTransport(n_slots=1, slot_bytes=4096, obs=obs)
    try:
        slot = t.acquire()
        wfn, wargs = t.wrap(lambda x: x, list(range(100)), slot)
        kind, _, nbytes = raw = wfn(wargs)
        t.decode(raw)
        assert obs.metrics.snapshot()["counters"]["transport.bytes"] == nbytes
        t.release(slot)
    finally:
        _close_ring(t)


# -- selection and degradation -----------------------------------------------


def test_make_transport_pickle():
    assert isinstance(make_transport("pickle", 2), PickleTransport)


def test_make_transport_rejects_unknown_kind():
    with pytest.raises(TransportError):
        make_transport("carrier-pigeon", 2)


@needs_shm
def test_make_transport_auto_prefers_shm():
    t = make_transport("auto", 2)
    try:
        assert isinstance(t, ShmRingTransport)
        assert t.n_slots == 2 * transport_mod.SLOTS_PER_WORKER
    finally:
        t.close()


def test_auto_degrades_to_pickle_when_shm_fails(monkeypatch):
    def refuse(*a, **kw):
        raise OSError("no /dev/shm here")

    monkeypatch.setattr(transport_mod.shared_memory, "SharedMemory", refuse)
    obs = Observability(enabled=False)
    t = make_transport("auto", 2, obs=obs)
    assert isinstance(t, PickleTransport)
    assert obs.metrics.snapshot()["counters"]["transport.fallback"] == 1


def test_engine_rejects_unknown_transport(tmp_path):
    p = tmp_path / "f"
    p.write_bytes(b"a b c")
    eng = LocalMapReduce(map_fn=_wc_map, n_workers=2, transport="smoke-signals")
    with pytest.raises(TransportError), eng:
        eng.run(str(p), chunk_bytes=2)


# -- engine-level: identical answers on every path ---------------------------


def _wc_map(data, emit, params):
    for token in data.split():
        emit(token, 1)


def _add(a, b):
    return a + b


def _run(path: str, transport: str, **kw) -> tuple[bytes, str]:
    with LocalMapReduce(
        map_fn=_wc_map, combine_fn=_add, sort_output=True,
        n_workers=2, start_method="fork", transport=transport, **kw,
    ) as eng:
        res = eng.run(path, chunk_bytes=64)
    return pickle.dumps(res.output), res.transport


def test_transport_selection_reported(tmp_path):
    p = tmp_path / "f"
    p.write_bytes(b"the quick brown fox " * 40)
    out_pickle, name_pickle = _run(str(p), "pickle")
    assert name_pickle == "pickle"
    out_auto, name_auto = _run(str(p), "auto")
    assert name_auto in ("shm", "pickle")
    assert out_auto == out_pickle
    # a serial in-process run never crosses a process boundary
    with LocalMapReduce(
        map_fn=_wc_map, combine_fn=_add, sort_output=True, n_workers=2,
    ) as eng:
        res = eng.run(str(p), chunk_bytes=64, parallel=False)
    assert res.transport == "inline"
    assert pickle.dumps(res.output) == out_pickle


@given(
    words=st.lists(
        st.text(alphabet="abcde", min_size=1, max_size=6),
        min_size=1, max_size=120,
    )
)
@settings(
    max_examples=8, deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_property_outputs_byte_identical_across_transports(tmp_path, words):
    data = " ".join(words).encode()
    p = tmp_path / "corpus"
    p.write_bytes(data)
    out_pickle, _ = _run(str(p), "pickle")
    out_shm, resolved = _run(str(p), "shm")
    assert out_shm == out_pickle
    # ground truth: the serial in-process path
    with LocalMapReduce(
        map_fn=_wc_map, combine_fn=_add, sort_output=True, n_workers=2,
    ) as eng:
        serial = eng.run(str(p), chunk_bytes=64, parallel=False)
    assert pickle.dumps(serial.output) == out_pickle


# -- recovery under injected slot faults -------------------------------------


@needs_shm
def test_corrupt_slot_injection_retries_to_correct_output(tmp_path):
    p = tmp_path / "f"
    p.write_bytes(b"alpha beta gamma delta " * 60)
    plan = FaultPlan(
        rules=(FaultRule("transport.slot", action="corrupt", count=1,
                         where={"index": 0}),),
        seed=11,
    )
    clean, _ = _run(str(p), "shm")
    obs = Observability(enabled=False)
    with LocalMapReduce(
        map_fn=_wc_map, combine_fn=_add, sort_output=True,
        n_workers=2, start_method="fork", transport="shm",
        faults=plan, obs=obs,
    ) as eng:
        res = eng.run(str(p), chunk_bytes=64)
        if res.transport != "shm":  # pragma: no cover - no shm on this box
            pytest.skip("shm degraded to pickle; slot site dormant")
        assert pickle.dumps(res.output) == clean
        counters = obs.metrics.snapshot()["counters"]
        assert counters["transport.corrupt"] >= 1
        assert eng.pool.redispatches >= 1


@needs_shm
def test_kill_midslot_injection_recovers(tmp_path):
    p = tmp_path / "f"
    p.write_bytes(b"alpha beta gamma delta " * 60)
    plan = FaultPlan(
        rules=(FaultRule("transport.slot", action="kill", count=1,
                         where={"index": 0}),),
        seed=11,
    )
    clean, _ = _run(str(p), "shm")
    with LocalMapReduce(
        map_fn=_wc_map, combine_fn=_add, sort_output=True,
        n_workers=2, start_method="fork", transport="shm", faults=plan,
    ) as eng:
        res = eng.run(str(p), chunk_bytes=64)
        if res.transport != "shm":  # pragma: no cover - no shm on this box
            pytest.skip("shm degraded to pickle; slot site dormant")
        assert pickle.dumps(res.output) == clean
        assert eng.pool.respawns >= 1
