"""Tests for the persistent worker pool and start-method resolution."""

from __future__ import annotations

import multiprocessing as mp
import operator
import os

import pytest

from repro.errors import WorkloadError
from repro.exec import WorkerPool, resolve_start_method
from repro.exec.chunks import FileChunk
from repro.exec.pool import read_chunk_cached, run_batch


# -- start-method resolution -------------------------------------------------


def test_resolve_default_is_valid_here():
    method = resolve_start_method()
    assert method in mp.get_all_start_methods()


def test_resolve_honors_explicit_preference():
    assert resolve_start_method("fork") == "fork"


def test_resolve_rejects_unavailable_method():
    with pytest.raises(WorkloadError, match="not available"):
        resolve_start_method("no-such-method")


def test_default_prefers_forkserver_under_pytest():
    # pytest's __main__ is re-importable, so the threaded-parent-safe
    # default applies on platforms that have it
    if "forkserver" in mp.get_all_start_methods() and os.name != "nt":
        assert resolve_start_method() == "forkserver"


# -- pool lifecycle ----------------------------------------------------------


def test_pool_is_lazy_and_persistent():
    pool = WorkerPool(2, start_method="fork")
    assert not pool.alive
    first = pool.ensure()
    assert pool.alive
    assert pool.ensure() is first  # same pool object across submissions
    pool.close()
    assert not pool.alive
    pool.close()  # idempotent
    # resurrects after close
    assert pool.ensure() is not first
    pool.close()


def test_pool_context_manager():
    with WorkerPool(1, start_method="fork") as pool:
        pool.ensure()
        assert pool.alive
    assert not pool.alive


def test_pool_rejects_bad_worker_count():
    with pytest.raises(WorkloadError):
        WorkerPool(0)


def _count_map(data, emit, params):
    # module-level: map callbacks cross the IPC pickle boundary
    for tok in data.split():
        emit(tok, 1)


def test_pool_runs_batches(tmp_path):
    p = tmp_path / "data"
    p.write_bytes(b"a b c d e f g h")
    chunks = [FileChunk(str(p), 0, 8), FileChunk(str(p), 8, 7)]
    tasks = [(i, [c], _count_map, None, {}, False) for i, c in enumerate(chunks)]
    with WorkerPool(2, start_method="fork") as pool:
        got = sorted(pool.imap_unordered(run_batch, tasks))
    assert [i for i, _, _ in got] == [0, 1]
    assert got[0][1] == {b"a": [1], b"b": [1], b"c": [1], b"d": [1]}


# -- cached mmap reads -------------------------------------------------------


def test_read_chunk_cached_roundtrip(tmp_path):
    p = tmp_path / "f"
    data = b"0123456789" * 100
    p.write_bytes(data)
    assert read_chunk_cached(FileChunk(str(p), 0, 10)) == data[:10]
    assert read_chunk_cached(FileChunk(str(p), 990, 10)) == data[990:]
    assert read_chunk_cached(FileChunk(str(p), 0, len(data))) == data


def test_read_chunk_cached_empty_file(tmp_path):
    p = tmp_path / "empty"
    p.write_bytes(b"")
    assert read_chunk_cached(FileChunk(str(p), 0, 0)) == b""


def test_read_chunk_cached_revalidates_replaced_file(tmp_path):
    p = tmp_path / "swap"
    p.write_bytes(b"old contents here")
    assert read_chunk_cached(FileChunk(str(p), 0, 3)) == b"old"
    # replace the file (new inode) — a stale mapping must not serve it
    q = tmp_path / "swap.new"
    q.write_bytes(b"new contents here")
    os.replace(str(q), str(p))
    assert read_chunk_cached(FileChunk(str(p), 0, 3)) == b"new"


# -- vectorized emission -----------------------------------------------------


def _run_one_batch(tmp_path, data: bytes, map_fn, combine_fn):
    p = tmp_path / "vec"
    p.write_bytes(data)
    task = (0, [FileChunk(str(p), 0, len(data))], map_fn, combine_fn, {}, False)
    _, acc, _ = run_batch(task)
    return acc


def _loop_map(data, emit, params):
    for tok in data.split():
        emit(tok, 2)


def _many_map(data, emit, params):
    emit.many(data.split(), 2)


def _loop_count(data, emit, params):
    for tok in data.split():
        emit(tok, 1)


def _many_count(data, emit, params):
    emit.many(data.split(), 1)


def _mul(a, b):
    return a * b


@pytest.mark.parametrize("combine", [None, operator.add, _mul])
def test_emit_many_matches_per_key_loop(tmp_path, combine):
    data = b"b a b c a b"
    loop = _run_one_batch(tmp_path, data, _loop_map, combine)
    many = _run_one_batch(tmp_path, data, _many_map, combine)
    assert many == loop
    # first-seen insertion order is part of the contract
    assert list(many) == list(loop) == [b"b", b"a", b"c"]


def test_emit_many_counting_fast_path(tmp_path):
    # operator.add with value 1 folds through Counter's C helper — the
    # result must still be indistinguishable from the scalar loop
    data = b"x y x z x y"
    loop = _run_one_batch(tmp_path, data, _loop_count, operator.add)
    many = _run_one_batch(tmp_path, data, _many_count, operator.add)
    assert many == loop == {b"x": 3, b"y": 2, b"z": 1}
    assert list(many) == list(loop)
