"""Unit + property tests for real-file chunking."""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import IntegrityError
from repro.exec import chunk_file, read_chunk, read_chunk_cached, read_chunk_view
from repro.exec.chunks import _HANDLES, _MAX_CACHED_FILES, FileChunk
from repro.workloads import zipf_corpus


@pytest.fixture()
def text_file(tmp_path):
    data = zipf_corpus(120_000, seed=3)
    p = tmp_path / "corpus.txt"
    p.write_bytes(data)
    return str(p), data


def test_chunks_reconstruct_file(text_file):
    path, data = text_file
    chunks = chunk_file(path, 17_000)
    assert b"".join(read_chunk(c) for c in chunks) == data


def test_chunks_contiguous_and_cover(text_file):
    path, data = text_file
    chunks = chunk_file(path, 10_000)
    pos = 0
    for c in chunks:
        assert c.offset == pos
        assert c.length > 0
        pos = c.end
    assert pos == len(data)


def test_no_chunk_splits_a_word(text_file):
    path, data = text_file
    vocab = set(data.split())
    for c in chunk_file(path, 8_192):
        for word in read_chunk(c).split():
            assert word in vocab


def test_chunk_larger_than_file(text_file):
    path, data = text_file
    chunks = chunk_file(path, len(data) * 2)
    assert len(chunks) == 1
    assert chunks[0].length == len(data)


def test_empty_file(tmp_path):
    p = tmp_path / "empty"
    p.write_bytes(b"")
    chunks = chunk_file(str(p), 100)
    assert len(chunks) == 1 and chunks[0].length == 0


def test_delimiter_free_file_single_chunk(tmp_path):
    p = tmp_path / "blob"
    p.write_bytes(b"x" * 50_000)
    chunks = chunk_file(str(p), 10_000)
    assert len(chunks) == 1  # cannot cut without splitting the record


def test_bad_chunk_size(text_file):
    path, _ = text_file
    with pytest.raises(IntegrityError):
        chunk_file(path, 0)


def test_delimiter_exactly_at_draft_boundary(tmp_path):
    # every draft point lands right after a delimiter: the fast probe
    # must accept it without scanning a window, and chunks stay exactly
    # chunk_bytes long
    data = b"abcd efgh ijkl"
    p = tmp_path / "exact"
    p.write_bytes(data)
    chunks = chunk_file(str(p), 5)
    assert [(c.offset, c.length) for c in chunks] == [(0, 5), (5, 5), (10, 4)]
    assert b"".join(read_chunk(c) for c in chunks) == data


def test_file_smaller_than_one_window(tmp_path):
    # whole file fits inside a single 64 KiB probe window: boundary scans
    # hit EOF rather than a full window
    data = b" ".join(b"w%03d" % i for i in range(60))  # ~300 bytes
    p = tmp_path / "tiny"
    p.write_bytes(data)
    chunks = chunk_file(str(p), 50)
    assert len(chunks) > 1
    assert b"".join(read_chunk(c) for c in chunks) == data
    for c in chunks[:-1]:
        assert read_chunk(c).endswith(b" ")


def test_boundary_scan_spans_multiple_windows(tmp_path):
    # first delimiter sits several windows past the draft point: the scan
    # must extend window by window instead of giving up or splitting the
    # record
    data = b"x" * 140_000 + b" " + b"y" * 10
    p = tmp_path / "long"
    p.write_bytes(data)
    chunks = chunk_file(str(p), 1_000)
    assert [(c.offset, c.length) for c in chunks] == [(0, 140_001), (140_001, 10)]
    assert b"".join(read_chunk(c) for c in chunks) == data


def test_custom_delimiters(tmp_path):
    data = b"row1|row2|row3|row4|row5"
    p = tmp_path / "rows"
    p.write_bytes(data)
    chunks = chunk_file(str(p), 7, delimiters=b"|")
    for c in chunks[:-1]:
        assert read_chunk(c).endswith(b"|")
    assert b"".join(read_chunk(c) for c in chunks) == data


# -- the mmap handle cache ---------------------------------------------------


def test_handle_cache_is_bounded_and_lru(tmp_path):
    paths = []
    for i in range(_MAX_CACHED_FILES + 3):
        p = tmp_path / f"f{i}"
        p.write_bytes(b"data for file %d " % i)
        paths.append(str(p))
    for p in paths:
        read_chunk_cached(FileChunk(p, 0, 4))
    assert len(_HANDLES) <= _MAX_CACHED_FILES
    # the most recent files survive, the oldest were evicted
    assert paths[-1] in _HANDLES
    assert paths[0] not in _HANDLES


def test_handle_cache_hit_moves_to_mru(tmp_path):
    a = tmp_path / "a"
    a.write_bytes(b"aaaa bbbb")
    read_chunk_cached(FileChunk(str(a), 0, 4))
    # fill the cache with other files, re-touching ``a`` midway: the hit
    # must refresh its position so it outlives files read before it
    fill = []
    for i in range(_MAX_CACHED_FILES - 1):
        p = tmp_path / f"fill{i}"
        p.write_bytes(b"x y z")
        fill.append(str(p))
        read_chunk_cached(FileChunk(str(p), 0, 2))
    read_chunk_cached(FileChunk(str(a), 0, 4))  # hit: a becomes MRU
    overflow = tmp_path / "overflow"
    overflow.write_bytes(b"q r s")
    read_chunk_cached(FileChunk(str(overflow), 0, 2))
    assert str(a) in _HANDLES  # survived the eviction...
    assert fill[0] not in _HANDLES  # ...which took the true LRU instead


def test_shrunk_file_raises_instead_of_truncating(tmp_path):
    p = tmp_path / "shrink"
    p.write_bytes(b"0123456789" * 20)
    chunk = FileChunk(str(p), 100, 50)
    assert read_chunk_cached(chunk) == (b"0123456789" * 20)[100:150]
    with open(p, "r+b") as f:
        f.truncate(80)  # the planned chunk now extends past EOF
    with pytest.raises(IntegrityError):
        read_chunk_cached(chunk)
    with pytest.raises(IntegrityError):
        read_chunk_view(chunk)


def test_read_chunk_view_zero_copy_roundtrip(tmp_path):
    p = tmp_path / "view"
    data = b"alpha beta gamma delta"
    p.write_bytes(data)
    view = read_chunk_view(FileChunk(str(p), 6, 10))
    try:
        assert isinstance(view, memoryview)
        assert bytes(view) == data[6:16]
    finally:
        view.release()
    assert bytes(read_chunk_view(FileChunk(str(p), 0, 0))) == b""


def test_cache_survives_rewrite_with_same_path(tmp_path):
    p = tmp_path / "rewrite"
    p.write_bytes(b"first version here")
    assert read_chunk_cached(FileChunk(str(p), 0, 5)) == b"first"
    os.utime(p)  # mtime-only change still invalidates
    p.write_bytes(b"secnd version here")
    assert read_chunk_cached(FileChunk(str(p), 0, 5)) == b"secnd"


def test_rename_over_with_preserved_mtime_invalidates(tmp_path):
    """Regression: an atomic replace whose source preserves the target's
    mtime and size must not serve the old mapping.

    Staging tools (``os.replace`` after ``shutil.copystat``) produce
    exactly this shape: equal size, equal mtime.  If the kernel also
    recycles the inode number, an (ino, size, mtime) triple validates a
    stale entry — only the replacement's fresh ``st_ctime_ns`` tells the
    generations apart, so it must be part of the revalidation key.
    """
    p = tmp_path / "target"
    p.write_bytes(b"old bytes v1")
    assert read_chunk_cached(FileChunk(str(p), 0, 12)) == b"old bytes v1"
    st = os.stat(p)
    src = tmp_path / "incoming"
    src.write_bytes(b"new bytes v2")  # same length as the old content
    os.utime(src, ns=(st.st_atime_ns, st.st_mtime_ns))  # preserve mtime
    os.replace(src, p)
    assert read_chunk_cached(FileChunk(str(p), 0, 12)) == b"new bytes v2"


def test_revalidation_key_includes_ctime(tmp_path):
    """White-box: the cached entry carries ``st_ctime_ns``, the only stat
    field a mtime-preserving, size-preserving, inode-recycling replace
    cannot forge."""
    p = tmp_path / "keyed"
    p.write_bytes(b"some words here")
    read_chunk_cached(FileChunk(str(p), 0, 4))
    entry = _HANDLES[str(p)]
    st = os.stat(p)
    assert entry[:4] == (st.st_ino, st.st_size, st.st_mtime_ns, st.st_ctime_ns)
    # a metadata-only ctime bump (chmod) retires the mapping too: cheaper
    # a false invalidation than a stale read
    os.chmod(p, 0o600)
    read_chunk_cached(FileChunk(str(p), 0, 4))
    assert _HANDLES[str(p)][3] == os.stat(p).st_ctime_ns


@given(
    words=st.lists(st.integers(min_value=1, max_value=8), min_size=1, max_size=80),
    chunk=st.integers(min_value=1, max_value=300),
    seed=st.integers(min_value=0, max_value=5),
)
@settings(max_examples=60, deadline=None)
def test_property_real_chunking_preserves_words(tmp_path_factory, words, chunk, seed):
    import numpy as np

    rng = np.random.default_rng(seed)
    data = b" ".join(bytes(rng.choice(list(b"abc"), size=n)) for n in words)
    p = tmp_path_factory.mktemp("prop") / "f"
    p.write_bytes(data)
    chunks = chunk_file(str(p), chunk)
    assert b"".join(read_chunk(c) for c in chunks) == data
    from collections import Counter

    assert sum(
        (Counter(read_chunk(c).split()) for c in chunks), Counter()
    ) == Counter(data.split())
