"""Tests for the real-machine multiprocessing MapReduce engine."""

from __future__ import annotations

import operator
from collections import Counter

import pytest

from repro.apps.stringmatch import sm_map
from repro.apps.wordcount import wc_map, wc_reduce
from repro.exec import LocalMapReduce
from repro.workloads import keys_for, zipf_corpus


@pytest.fixture()
def corpus(tmp_path):
    data = zipf_corpus(80_000, seed=11)
    p = tmp_path / "c.txt"
    p.write_bytes(data)
    return str(p), data


def wordcount_engine(workers=2):
    return LocalMapReduce(
        map_fn=wc_map,
        reduce_fn=wc_reduce,
        combine_fn=operator.add,
        sort_output=True,
        n_workers=workers,
    )


def test_wordcount_matches_counter(corpus):
    path, data = corpus
    res = wordcount_engine().run(path)
    assert dict(res.output) == dict(Counter(data.split()))


def test_output_sorted_by_frequency(corpus):
    path, _ = corpus
    res = wordcount_engine().run(path)
    counts = [v for _, v in res.output]
    assert counts == sorted(counts, reverse=True)


def test_parallel_equals_serial(corpus):
    path, _ = corpus
    eng = wordcount_engine()
    par = eng.run(path, parallel=True)
    ser = eng.run(path, parallel=False)
    assert par.output == ser.output
    assert ser.n_workers == 1


def test_chunk_size_invariance(corpus):
    path, data = corpus
    eng = wordcount_engine()
    outs = {eng.run(path, chunk_bytes=cb).n_chunks: dict(eng.run(path, chunk_bytes=cb).output) for cb in (5_000, 20_000, 200_000)}
    expected = dict(Counter(data.split()))
    assert all(o == expected for o in outs.values())
    assert max(outs) > 1  # at least one config actually chunked


def test_stringmatch_real_engine(tmp_path):
    keys = keys_for(2, seed=1)
    lines = [b"aaaa", keys[0] + b" xxx", b"bbbb", b"yy " + keys[1], keys[0]]
    data = b"\n".join(lines)
    p = tmp_path / "enc.txt"
    p.write_bytes(data)
    eng = LocalMapReduce(
        map_fn=sm_map,
        combine_fn=operator.add,
        delimiters=b"\n",
        n_workers=2,
    )
    res = eng.run(str(p), chunk_bytes=8, params={"keys": keys})
    assert dict(res.output) == {keys[0]: 2, keys[1]: 1}


def test_map_only_without_combiner(tmp_path):
    data = b"a b a"
    p = tmp_path / "t"
    p.write_bytes(data)
    eng = LocalMapReduce(map_fn=wc_map, n_workers=1)
    res = eng.run(str(p), parallel=False)
    assert dict(res.output) == {b"a": [1, 1], b"b": [1]}


def test_result_metadata(corpus):
    path, _ = corpus
    res = wordcount_engine().run(path, chunk_bytes=10_000)
    assert res.n_chunks >= 7
    assert res.elapsed > 0
    assert res.n_workers == 2


def test_bad_chunk_bytes(corpus):
    path, _ = corpus
    with pytest.raises(Exception):
        wordcount_engine().run(path, chunk_bytes=0)


class _CountingKey:
    """Value-equal key counting global ``repr`` calls (shuffle contract)."""

    reprs = 0

    def __init__(self, ident: int):
        self.ident = ident

    def __hash__(self) -> int:
        return hash(self.ident)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _CountingKey) and self.ident == other.ident

    def __repr__(self) -> str:
        _CountingKey.reprs += 1
        return f"_CountingKey({self.ident:04d})"


def _counting_map(data, emit, params):
    for tok in data.split():
        emit(_CountingKey(int(tok)), 1)


def test_engine_reprs_each_distinct_key_once_per_job(tmp_path):
    # 3 distinct keys spread over many chunks: the whole job must repr
    # each key once (in the parent), not once per (key, chunk)
    data = b" ".join(b"%d" % (i % 3) for i in range(60))
    p = tmp_path / "nums.txt"
    p.write_bytes(data)
    eng = LocalMapReduce(
        map_fn=_counting_map,
        reduce_fn=lambda k, vs, params: sum(vs),
        combine_fn=operator.add,
        sort_output=True,
        n_workers=1,
    )
    _CountingKey.reprs = 0
    res = eng.run(str(p), chunk_bytes=16, parallel=False)
    assert res.n_chunks > 1
    assert _CountingKey.reprs == 3
    assert [v for _, v in res.output] == [20, 20, 20]


def test_traced_run_stitches_worker_segments(corpus):
    from repro.obs import Observability

    path, _ = corpus
    obs = Observability(enabled=True)
    eng = LocalMapReduce(
        map_fn=wc_map,
        reduce_fn=wc_reduce,
        combine_fn=operator.add,
        sort_output=True,
        n_workers=2,
        obs=obs,
    )
    res = eng.run(path, chunk_bytes=20_000)
    job = res.span
    assert job is not None and job.name == "localmr.job"
    kids = {s.name for s in job.children()}
    assert {"localmr.chunk_plan", "localmr.map_pool", "localmr.merge"} <= kids
    reads = obs.spans.by_name("localmr.read_chunk")
    maps = obs.spans.by_name("localmr.map_chunk")
    assert len(reads) == res.n_chunks
    assert len(maps) == res.n_chunks
    for seg in reads + maps:
        assert seg.parent_id == job.id
        assert seg.track.startswith("worker-")
        assert seg.attrs["pid"] > 0
        assert seg.dur >= 0.0 and seg.wall_dur >= 0.0


def test_untraced_run_has_no_span(corpus):
    path, _ = corpus
    res = wordcount_engine().run(path, chunk_bytes=40_000)
    assert res.span is None


def test_stitched_segments_preserve_worker_order(corpus):
    from collections import defaultdict

    from repro.obs import Observability

    path, _ = corpus
    obs = Observability(enabled=True)
    eng = LocalMapReduce(
        map_fn=wc_map,
        reduce_fn=wc_reduce,
        combine_fn=operator.add,
        sort_output=True,
        n_workers=2,
        obs=obs,
    )
    res = eng.run(path, chunk_bytes=8_000)
    assert res.n_chunks >= 4
    by_track = defaultdict(list)
    for s in obs.spans.by_name("localmr.read_chunk") + obs.spans.by_name(
        "localmr.map_chunk"
    ):
        by_track[s.track].append(s)
    assert by_track and all(t.startswith("worker-") for t in by_track)
    for track, segs in by_track.items():
        # a worker's wall-clock segments never interleave: sorted by start
        # time they alternate read -> map per chunk, exactly as recorded
        segs.sort(key=lambda s: s.t0)
        names = [s.name for s in segs]
        assert names == ["localmr.read_chunk", "localmr.map_chunk"] * (
            len(segs) // 2
        )
        for a, b in zip(segs, segs[1:]):
            assert a.t1 <= b.t0 + 1e-6


def test_run_batch_ships_no_segments_when_tracing_off(corpus):
    from repro.exec.chunks import chunk_file
    from repro.exec.pool import run_batch

    path, _ = corpus
    chunks = chunk_file(path, 20_000)
    # exactly what a worker receives over IPC with tracing off ...
    index, acc, segments = run_batch((0, chunks, wc_map, operator.add, {}, False))
    assert segments is None  # nothing extra rides the result pickle
    assert index == 0 and acc
    # ... and with tracing on: one read + one map segment per chunk, in
    # order, plus the worker's trailing resource heartbeat
    _, acc2, segs = run_batch((3, chunks, wc_map, operator.add, {}, True))
    assert acc2 == acc
    names = [s[0] for s in segs]
    assert names[-1] == "worker.heartbeat"
    assert names[:-1] == [
        "localmr.read_chunk",
        "localmr.map_chunk",
    ] * len(chunks)
    hb = segs[-1]
    assert hb[1] == hb[2] and hb[3] == 0.0  # a sample, not an interval
    assert hb[4]["rss_kib"] > 0 and hb[4]["cpu_s"] >= 0.0
    assert 0.0 <= hb[4]["util"] <= 1.0
    assert all(s[4]["batch"] == 3 for s in segs)


def test_engine_context_manager_closes_pool(corpus):
    path, _ = corpus
    with wordcount_engine() as eng:
        eng.run(path, chunk_bytes=20_000)
        assert eng.pool.alive
    assert not eng.pool.alive
    # closed engines resurrect their pool on the next run
    res = eng.run(path, chunk_bytes=20_000)
    assert res.output
    eng.close()
    assert not eng.pool.alive


def test_result_mode_metadata(corpus):
    path, _ = corpus
    with wordcount_engine() as eng:
        res = eng.run(path, chunk_bytes=20_000)
    assert res.mode == "memory"
    assert res.n_fragments == 1
    assert res.spilled_bytes == 0
