"""Tests for the out-of-core fragment mode (spill runs + lazy merge)."""

from __future__ import annotations

import glob
import operator
import os
from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.wordcount import wc_map, wc_reduce
from repro.errors import WorkloadError
from repro.exec import LocalMapReduce, plan_fragments
from repro.exec.chunks import FileChunk
from repro.exec.outofcore import iter_run, write_run
from repro.obs import Observability
from repro.phoenix.sort import decorate_sorted
from repro.workloads import zipf_corpus


def _chunks(lengths):
    chunks, off = [], 0
    for n in lengths:
        chunks.append(FileChunk("f", off, n))
        off += n
    return chunks


# -- fragment planning -------------------------------------------------------


def test_plan_fragments_groups_consecutively():
    frags = plan_fragments(_chunks([40, 40, 40, 40, 40]), budget=100)
    assert [[c.offset for c in f] for f in frags] == [[0, 40], [80, 120], [160]]


def test_plan_fragments_single_fragment_when_under_budget():
    frags = plan_fragments(_chunks([10, 10]), budget=1_000)
    assert len(frags) == 1 and len(frags[0]) == 2


def test_plan_fragments_oversized_chunk_is_own_fragment():
    frags = plan_fragments(_chunks([10, 500, 10]), budget=100)
    assert [[c.length for c in f] for f in frags] == [[10], [500], [10]]


def test_plan_fragments_rejects_bad_budget():
    with pytest.raises(WorkloadError):
        plan_fragments(_chunks([10]), budget=0)


# -- spill run format --------------------------------------------------------


def test_run_roundtrip_across_blocks(tmp_path):
    entries = decorate_sorted({b"k%04d" % i: [i, i + 1] for i in range(500)})
    path = str(tmp_path / "run")
    nbytes = write_run(path, entries, block_values=16)  # force many blocks
    assert nbytes == os.path.getsize(path) > 0
    assert list(iter_run(path)) == entries


def test_run_roundtrip_empty(tmp_path):
    path = str(tmp_path / "empty-run")
    write_run(path, [])
    assert list(iter_run(path)) == []


# -- engine integration ------------------------------------------------------


def _spill_dirs(root):
    return glob.glob(os.path.join(str(root), "localmr-spill-*"))


@pytest.fixture()
def corpus(tmp_path):
    data = zipf_corpus(60_000, seed=7)
    p = tmp_path / "c.txt"
    p.write_bytes(data)
    return str(p), data


def _engine(spill_dir, budget, **kw):
    return LocalMapReduce(
        map_fn=wc_map,
        reduce_fn=wc_reduce,
        combine_fn=operator.add,
        sort_output=True,
        n_workers=2,
        memory_budget=budget,
        spill_dir=str(spill_dir),
        **kw,
    )


def test_out_of_core_matches_in_memory(corpus, tmp_path):
    path, data = corpus
    with _engine(tmp_path, budget=15_000) as eng:
        ooc = eng.run(path, chunk_bytes=4_000)
        mem = eng.run(path, chunk_bytes=4_000, memory_budget=None)
    assert ooc.mode == "outofcore" and mem.mode == "memory"
    assert ooc.n_fragments >= 3
    assert ooc.spilled_bytes > 0
    assert ooc.output == mem.output
    assert dict(ooc.output) == dict(Counter(data.split()))


def test_spill_files_cleaned_up_on_success(corpus, tmp_path):
    path, _ = corpus
    with _engine(tmp_path, budget=15_000) as eng:
        res = eng.run(path, chunk_bytes=4_000)
    assert res.mode == "outofcore"
    assert _spill_dirs(tmp_path) == []


def _boom_map(data, emit, params):
    raise RuntimeError("map exploded")


def test_spill_files_cleaned_up_on_failure(corpus, tmp_path):
    path, _ = corpus
    eng = LocalMapReduce(
        map_fn=_boom_map,
        n_workers=1,
        memory_budget=15_000,
        spill_dir=str(tmp_path),
    )
    with pytest.raises(RuntimeError, match="map exploded"):
        eng.run(path, chunk_bytes=4_000, parallel=False)
    assert _spill_dirs(tmp_path) == []


def test_no_combiner_value_lists_match(corpus, tmp_path):
    path, _ = corpus
    eng = LocalMapReduce(
        map_fn=wc_map,
        n_workers=1,
        memory_budget=15_000,
        spill_dir=str(tmp_path),
    )
    ooc = eng.run(path, chunk_bytes=4_000, parallel=False)
    mem = eng.run(path, chunk_bytes=4_000, parallel=False, memory_budget=None)
    assert ooc.mode == "outofcore"
    # value-list order is part of the contract: global chunk order
    assert ooc.output == mem.output


def test_spill_counters_and_spans(corpus, tmp_path):
    path, _ = corpus
    obs = Observability(enabled=True)
    with _engine(tmp_path, budget=15_000, obs=obs) as eng:
        res = eng.run(path, chunk_bytes=4_000)
    assert obs.metrics.counters["localmr.spill_runs"] == res.n_fragments
    assert obs.metrics.counters["localmr.spill_bytes"] == res.spilled_bytes
    frag_spans = obs.spans.by_name("localmr.fragment")
    spill_spans = obs.spans.by_name("localmr.spill")
    assert len(frag_spans) == len(spill_spans) == res.n_fragments
    assert sum(s.attrs["bytes"] for s in spill_spans) == res.spilled_bytes
    assert res.span is not None and res.span.attrs["mode"] == "outofcore"


def test_run_override_forces_out_of_core(corpus):
    path, _ = corpus
    with LocalMapReduce(
        map_fn=wc_map, reduce_fn=wc_reduce, combine_fn=operator.add,
        sort_output=True, n_workers=2,
    ) as eng:
        mem = eng.run(path, chunk_bytes=4_000)
        ooc = eng.run(path, chunk_bytes=4_000, memory_budget=10_000)
    assert mem.mode == "memory" and ooc.mode == "outofcore"
    assert ooc.output == mem.output


# -- property: out-of-core is observationally identical to in-memory ---------


@given(
    words=st.lists(
        st.sampled_from([b"alpha", b"beta", b"gamma", b"delta", b"x"]),
        min_size=1,
        max_size=200,
    ),
    chunk=st.integers(min_value=4, max_value=64),
    budget=st.integers(min_value=8, max_value=256),
)
@settings(max_examples=30, deadline=None)
def test_property_out_of_core_equals_in_memory(
    tmp_path_factory, words, chunk, budget
):
    data = b" ".join(words)
    p = tmp_path_factory.mktemp("ooc") / "corpus"
    p.write_bytes(data)
    eng = LocalMapReduce(
        map_fn=wc_map,
        reduce_fn=wc_reduce,
        combine_fn=operator.add,
        sort_output=True,
        n_workers=1,
    )
    mem = eng.run(str(p), chunk_bytes=chunk, parallel=False)
    ooc = eng.run(str(p), chunk_bytes=chunk, parallel=False, memory_budget=budget)
    assert mem.output == ooc.output
    assert dict(mem.output) == dict(Counter(data.split()))
    if len(data) > budget:
        assert ooc.mode == "outofcore"
