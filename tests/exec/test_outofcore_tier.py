"""Out-of-core engine + TieredStore integration: reuse, loss, recovery."""

from __future__ import annotations

import operator
import os

import pytest

from repro.exec import LocalMapReduce
from repro.exec.chunks import chunk_file, read_chunk_cached
from repro.exec.outofcore import live_spill_dirs, run_out_of_core
from repro.faults import FaultInjector, FaultPlan, FaultRule
from repro.obs import Observability
from repro.tier import TieredStore
from repro.workloads import zipf_corpus


def wc_fragment(fragment):
    counts: dict = {}
    for c in fragment:
        for w in read_chunk_cached(c).split():
            counts[w] = counts.get(w, 0) + 1
    return {k: [v] for k, v in counts.items()}


@pytest.fixture()
def corpus(tmp_path):
    p = tmp_path / "corpus"
    p.write_bytes(zipf_corpus(20_000, vocabulary=300, seed=5))
    return str(p)


def run_job(path, tier=None, faults=None, obs=None, max_retries=2,
            tier_key="job", budget=4096):
    obs = obs or Observability(enabled=False)
    chunks = chunk_file(path, 1024)
    out, n_fragments, spilled = run_out_of_core(
        chunks, wc_fragment, operator.add, None, True, {}, budget, obs,
        faults=faults, max_retries=max_retries,
        tier=tier, tier_key=tier_key,
    )
    return out, n_fragments, obs


def test_tiered_run_matches_plain_run(corpus):
    plain, n, _ = run_job(corpus)
    assert n >= 2
    with TieredStore(64 * 1024, 256 * 1024, writeback=False) as store:
        tiered, _, _ = run_job(corpus, tier=store)
    assert tiered == plain


def test_warm_tier_skips_recompute(corpus):
    with TieredStore(64 * 1024, 256 * 1024, writeback=False) as store:
        first, n, _ = run_job(corpus, tier=store)
        second, _, obs = run_job(corpus, tier=store)
        assert second == first
        assert obs.metrics.counters["tier.spill.reuse"] == n


def test_different_job_key_misses_the_warm_tier(corpus):
    with TieredStore(64 * 1024, 256 * 1024, writeback=False) as store:
        run_job(corpus, tier=store, tier_key="job-a")
        _, _, obs = run_job(corpus, tier=store, tier_key="job-b")
        assert obs.metrics.counters.get("tier.spill.reuse", 0) == 0


def test_lost_writeback_recomputes_before_merge(corpus):
    plain, _, _ = run_job(corpus)
    plan = FaultPlan(
        rules=(FaultRule("tier.writeback", action="drop", count=3),), seed=2
    )
    inj = FaultInjector(plan)
    with TieredStore(64 * 1024, 256 * 1024, writeback=False,
                     faults=inj) as store:
        out, _, obs = run_job(corpus, tier=store, faults=inj)
    ctr = obs.metrics.counters
    assert out == plain
    assert ctr["tier.spill.lost"] >= 1
    assert ctr["localmr.recompute"] >= 1
    assert ctr.get("retry.spill_merge", 0) == 0  # sweep, not a merge retry


def test_degraded_warm_read_recomputes(corpus):
    plain, _, _ = run_job(corpus)
    plan = FaultPlan(
        rules=(FaultRule("tier.read", action="fail", count=1),), seed=2
    )
    inj = FaultInjector(plan)
    obs = Observability(enabled=False)
    with TieredStore(64 * 1024, 256 * 1024, writeback=False,
                     faults=inj, obs=obs) as store:
        out, _, obs = run_job(corpus, tier=store, faults=inj, obs=obs)
    ctr = obs.metrics.counters
    assert out == plain
    assert ctr["tier.read.degraded"] == 1
    assert ctr["localmr.recompute"] >= 1
    assert ctr["retry.spill_merge"] >= 1


def test_corrupt_warm_read_caught_by_crc_and_recomputed(corpus):
    plain, _, _ = run_job(corpus)
    plan = FaultPlan(
        rules=(FaultRule("tier.read", action="corrupt", count=1),), seed=2
    )
    inj = FaultInjector(plan)
    obs = Observability(enabled=False)
    with TieredStore(64 * 1024, 256 * 1024, writeback=False,
                     faults=inj, obs=obs) as store:
        out, _, obs = run_job(corpus, tier=store, faults=inj, obs=obs)
    ctr = obs.metrics.counters
    assert out == plain
    assert ctr["tier.read.corrupted"] == 1
    assert ctr["localmr.recompute"] >= 1


def test_capacity_starved_tier_converges_via_disk_fallback(corpus):
    """A tier too small for even one run set: every merge-side recompute
    must land on durable disk instead of thrashing the tier forever."""
    plain, _, _ = run_job(corpus)
    with TieredStore(512, 1024, writeback=False) as store:
        out, _, obs = run_job(corpus, tier=store)
    assert out == plain
    # merge retries stayed inside the default budget
    assert obs.metrics.counters.get("retry.spill_merge", 0) <= 2
    assert live_spill_dirs() == []  # the fallback dir was cleaned up


def test_retry_exhaustion_still_raises(corpus):
    """An unbounded loss stream must exhaust retries, not hang."""
    from repro.errors import SpillCorruptionError

    plan = FaultPlan(
        rules=(FaultRule("tier.read", action="fail", count=99),), seed=2
    )
    inj = FaultInjector(plan)
    with TieredStore(64 * 1024, 256 * 1024, writeback=False,
                     faults=inj) as store:
        with pytest.raises(SpillCorruptionError):
            run_job(corpus, tier=store, faults=inj, max_retries=1)
    assert live_spill_dirs() == []


# -- LocalMapReduce wiring ----------------------------------------------------


def _map(data, emit, params):
    for token in data.split():
        emit(token, 1)


def test_engine_warm_rerun_through_tier(corpus):
    obs = Observability(enabled=False)
    with TieredStore(64 * 1024, 256 * 1024, obs=obs) as store:
        with LocalMapReduce(
            _map, combine_fn=operator.add, sort_output=True, n_workers=1,
            memory_budget=4096, tier=store, readahead=1, obs=obs,
        ) as eng:
            with LocalMapReduce(
                _map, combine_fn=operator.add, sort_output=True, n_workers=1,
                memory_budget=4096,
            ) as plain_eng:
                plain = plain_eng.run(corpus, chunk_bytes=1024).output
            cold = eng.run(corpus, chunk_bytes=1024)
            warm = eng.run(corpus, chunk_bytes=1024)
    assert cold.output == plain
    assert warm.output == plain
    assert obs.metrics.counters["tier.spill.reuse"] == cold.n_fragments
    tier_dir = store.ssd_dir
    assert not os.path.isdir(tier_dir)


def test_engine_rejects_bad_knobs():
    from repro.errors import WorkloadError

    with pytest.raises(WorkloadError):
        LocalMapReduce(_map, readahead=-1)
    with pytest.raises(WorkloadError):
        LocalMapReduce(_map, spill_retries=-1)
