"""Tests for CSV export and the ASCII chart renderer."""

from __future__ import annotations

import csv

from repro.analysis import (
    Series,
    render_ascii_chart,
    write_rows_csv,
    write_series_csv,
)


def test_write_series_csv_roundtrip(tmp_path):
    s1 = Series("trad", [500, 1000], [15.0, 86.0])
    s2 = Series("part", [500, 1000], [15.5, None])
    path = write_series_csv(str(tmp_path / "fig.csv"), [s1, s2], ["500M", "1G"])
    with open(path) as f:
        rows = list(csv.reader(f))
    assert rows[0] == ["size", "trad", "part"]
    assert rows[1] == ["500M", "15", "15.5"]
    assert rows[2] == ["1G", "86", ""]  # unsupported cell -> empty


def test_write_rows_csv(tmp_path):
    path = write_rows_csv(
        str(tmp_path / "t.csv"), ["a", "b"], [[1, None], ["x", 2.5]]
    )
    with open(path) as f:
        rows = list(csv.reader(f))
    assert rows == [["a", "b"], ["1", ""], ["x", "2.5"]]


def test_write_creates_directories(tmp_path):
    path = write_rows_csv(str(tmp_path / "deep" / "dir" / "t.csv"), ["h"], [[1]])
    assert path.endswith("t.csv")
    with open(path) as f:
        assert f.readline().strip() == "h"


def test_ascii_chart_contains_all_series_glyphs():
    s1 = Series("up", [1, 2, 3], [1.0, 2.0, 3.0])
    s2 = Series("flat", [1, 2, 3], [1.0, 1.0, 1.0])
    chart = render_ascii_chart([s1, s2], width=30, height=8, y_label="y")
    assert "o=up" in chart and "*=flat" in chart
    assert "[y]" in chart
    assert chart.count("\n") >= 8


def test_ascii_chart_skips_undefined_points():
    s = Series("partial", [1, 2, 3], [1.0, None, 3.0])
    chart = render_ascii_chart([s], width=20, height=6)
    # two defined points => exactly two glyphs on the grid (legend excluded)
    grid_lines = [l for l in chart.splitlines() if "|" in l]
    assert sum(line.count("o") for line in grid_lines) == 2


def test_ascii_chart_empty_series():
    assert render_ascii_chart([Series("none", [1], [None])]) == "(no data)"


def test_ascii_chart_degenerate_single_point():
    chart = render_ascii_chart([Series("dot", [5], [7.0])], width=10, height=4)
    assert "o" in chart
