"""Tests for host-side module discovery over NFS."""

from __future__ import annotations

from repro.cluster import Testbed
from repro.smartfam.registry import mapreduce_module, standard_registry


def test_list_modules_matches_registry():
    bed = Testbed(seed=51)

    def go():
        return (yield bed.cluster.channel().list_modules())

    assert bed.run(go()) == [
        "dist_map", "dist_merge", "dist_reduce",
        "matmul", "stringmatch", "wordcount",
    ]


def test_list_modules_sees_extensions():
    from repro.apps.dbselect import make_dbselect_spec

    registry = standard_registry()
    registry.register("dbselect", mapreduce_module(lambda p: make_dbselect_spec()))
    bed = Testbed(registry=registry, seed=52)

    def go():
        return (yield bed.cluster.channel().list_modules())

    assert "dbselect" in bed.run(go())


def test_discovery_is_one_readdir():
    bed = Testbed(seed=53)
    client = bed.cluster.mount().client
    before = client.rpcs

    def go():
        return (yield bed.cluster.channel().list_modules())

    bed.run(go())
    assert client.rpcs == before + 1
