"""Concurrent jobs over one SD daemon: serialization without interleaving.

The log file of a module is a single channel — two hosts-side calls to
the same module must serialize on the per-module lock so their INVOKE /
RESULT records never interleave (a torn pair would answer one call with
the other's result).  Distinct modules have distinct log files and run
concurrently.
"""

from __future__ import annotations

import pytest

from repro.cluster import Testbed
from repro.core import DataJob
from repro.errors import OffloadTimeoutError
from repro.smartfam.logfile import INVOKE, RESULT, LogFileCodec
from repro.units import MB
from repro.workloads import text_input


@pytest.fixture()
def env():
    bed = Testbed(seed=11)
    inp = text_input("/data/c", MB(20), payload_bytes=6_000, seed=11)
    _sd, _host, sd_path = bed.stage_on_sd("c", inp)
    job = DataJob(
        app="wordcount", input_path=sd_path, input_size=MB(20), mode="parallel"
    )
    return bed, inp, job


def test_concurrent_same_module_calls_do_not_interleave(env):
    bed, inp, job = env
    channel = bed.cluster.channel()

    def go():
        a = channel.invoke("wordcount", job.invoke_params())
        b = channel.invoke("wordcount", job.invoke_params())
        return (yield a), (yield b)

    ra, rb = bed.run(go())
    expected = len(inp.payload_bytes.split())
    assert sum(v for _, v in ra.output) == expected
    assert sum(v for _, v in rb.output) == expected

    daemon = bed.cluster.sd_daemons["sd0"]
    assert daemon.invocations == 2
    records = LogFileCodec.decode(
        bed.sd.fs.vfs.read(daemon.log_path("wordcount"))
    )
    # strict INVOKE/RESULT pairing, each result answering the invoke
    # written immediately before it — no interleaved seq numbers
    assert [r.kind for r in records] == [INVOKE, RESULT, INVOKE, RESULT]
    assert records[0].seq == records[1].seq
    assert records[2].seq == records[3].seq
    assert records[0].seq != records[2].seq
    assert all(r.ok for r in records)


def test_distinct_modules_run_concurrently(env):
    bed, _inp, job = env
    channel = bed.cluster.channel()
    grep_params = dict(job.invoke_params(), app={"pattern": "the"})

    def serial():
        yield channel.invoke("wordcount", job.invoke_params())
        yield channel.invoke("stringmatch", grep_params)

    bed.run(serial())
    t_serial = bed.sim.now

    bed2 = Testbed(seed=11)
    bed2.stage_on_sd(
        "c", text_input("/data/c", MB(20), payload_bytes=6_000, seed=11)
    )
    channel2 = bed2.cluster.channel()

    def concurrent():
        a = channel2.invoke("wordcount", job.invoke_params())
        b = channel2.invoke("stringmatch", grep_params)
        yield a
        yield b

    bed2.run(concurrent())
    assert bed2.sim.now < t_serial
    # each module kept its own clean log
    daemon = bed2.cluster.sd_daemons["sd0"]
    for module in ("wordcount", "stringmatch"):
        records = LogFileCodec.decode(
            bed2.sd.fs.vfs.read(daemon.log_path(module))
        )
        assert [r.kind for r in records] == [INVOKE, RESULT]
        assert records[0].seq == records[1].seq


def test_concurrent_timeouts_leave_the_channel_clean(env):
    """Abandoned calls must release/withdraw the per-module lock."""
    bed, inp, job = env
    bed.cluster.sd_daemons["sd0"].kill()
    channel = bed.cluster.channel()

    def go():
        a = channel.invoke("wordcount", job.invoke_params(), timeout=5.0)
        b = channel.invoke("wordcount", job.invoke_params(), timeout=5.0)
        outcomes = []
        for ev in (a, b):
            try:
                yield ev
            except OffloadTimeoutError:
                outcomes.append("timeout")
        return outcomes

    assert bed.run(go()) == ["timeout", "timeout"]
    assert channel._lock("wordcount").value == 1  # no leaked permit

    bed.cluster.sd_daemons["sd0"].revive()

    def again():
        return (
            yield channel.invoke("wordcount", job.invoke_params(), timeout=120.0)
        )

    res = bed.run(again())
    assert sum(v for _, v in res.output) == len(inp.payload_bytes.split())
