"""Unit tests for the log-file codec."""

from __future__ import annotations

import pytest

from repro.errors import ProtocolError
from repro.smartfam.logfile import INVOKE, RESULT, LogFileCodec, LogRecord


def test_record_validation():
    with pytest.raises(ProtocolError):
        LogRecord("bogus", 1, "m")
    with pytest.raises(ProtocolError):
        LogRecord(INVOKE, -1, "m")


def test_roundtrip_empty():
    assert LogFileCodec.decode(None) == []
    assert LogFileCodec.decode(b"") == []


def test_append_and_decode():
    payload = LogFileCodec.append(None, LogRecord(INVOKE, 1, "wc", body={"a": 1}))
    payload = LogFileCodec.append(payload, LogRecord(RESULT, 1, "wc", body="done"))
    records = LogFileCodec.decode(payload)
    assert len(records) == 2
    assert records[0].kind == INVOKE and records[0].body == {"a": 1}
    assert records[1].kind == RESULT and records[1].body == "done"


def test_latest_of_kind():
    payload = None
    for seq in (1, 2, 3):
        payload = LogFileCodec.append(payload, LogRecord(INVOKE, seq, "m"))
    latest = LogFileCodec.latest(payload, INVOKE)
    assert latest is not None and latest.seq == 3
    assert LogFileCodec.latest(payload, RESULT) is None


def test_find_by_seq():
    payload = None
    for seq in (5, 7):
        payload = LogFileCodec.append(payload, LogRecord(RESULT, seq, "m", body=seq))
    assert LogFileCodec.find(payload, RESULT, 7).body == 7
    assert LogFileCodec.find(payload, RESULT, 6) is None


def test_corrupt_payload_raises():
    with pytest.raises(ProtocolError):
        LogFileCodec.decode(b"not a pickle")


def test_non_record_list_rejected():
    import pickle

    with pytest.raises(ProtocolError):
        LogFileCodec.decode(pickle.dumps([1, 2, 3]))
