"""Edge-case tests for the smartFAM channel and NFS interplay."""

from __future__ import annotations

import pytest

from repro.cluster import Testbed
from repro.errors import ProtocolError, StaleHandleError
from repro.smartfam.logfile import INVOKE, LogFileCodec, LogRecord
from repro.units import MB
from repro.workloads import text_input


@pytest.fixture()
def bed():
    return Testbed(seed=21)


def test_daemon_survives_corrupt_log_write(bed):
    """A garbage write into a module log must not kill the daemon."""
    sd = bed.sd
    path = "/export/sdlog/wordcount.log"

    def corrupt_then_use():
        # host-side garbage lands in the log (e.g. a partial write)
        yield bed.cluster.mount().write(
            path.replace("/export", ""), data=b"garbage not a pickle", size=4096
        )
        # give the daemon its event; it reads, fails to decode, and the
        # supervisor-free dispatch loop must remain alive
        yield bed.sim.timeout(0.5)
        return True

    # corrupting payload raises inside the daemon's decode; assert the
    # simulation completes and a subsequent legitimate call still works
    inp = text_input("/data/f", MB(50), payload_bytes=3_000, seed=21)
    _sd, _h, sd_path = bed.stage_on_sd("f", inp)

    def full():
        yield bed.sim.spawn(corrupt_then_use())
        # reset the log so the next invoke starts from a clean channel
        sd.fs.vfs.write(path, data=b"", size=0, mtime=bed.sim.now)
        result = yield bed.cluster.channel().invoke(
            "wordcount",
            {"input_path": sd_path, "input_size": MB(50), "mode": "parallel"},
        )
        return result

    # Depending on decode timing the daemon may or may not raise before
    # the reset; what matters is the channel still completes afterwards.
    try:
        result = bed.run(full())
        assert sum(v for _, v in result.output) == len(inp.payload_bytes.split())
    except ProtocolError:
        pytest.fail("corrupt log escaped the daemon's decode guard")


def test_codec_rejects_garbage():
    with pytest.raises(ProtocolError):
        LogFileCodec.decode(b"garbage not a pickle")


def test_duplicate_inotify_events_served_once(bed):
    """The daemon de-duplicates by sequence number."""
    inp = text_input("/data/f", MB(50), payload_bytes=3_000, seed=22)
    _sd, _h, sd_path = bed.stage_on_sd("f", inp)
    daemon = bed.cluster.sd_daemons["sd0"]
    log_path = daemon.log_path("wordcount")

    def touch_and_invoke():
        result = yield bed.cluster.channel().invoke(
            "wordcount",
            {"input_path": sd_path, "input_size": MB(50), "mode": "parallel"},
        )
        # re-write the same log content: fires inotify again with the same
        # latest INVOKE seq, which the daemon must ignore
        payload = bed.sd.fs.vfs.read(log_path)
        yield bed.sd.fs.write(log_path, data=payload, size=4096)
        yield bed.sim.timeout(0.2)
        return result

    bed.run(touch_and_invoke())
    assert daemon.invocations == 1


def test_nfs_stale_handle_semantics(bed):
    """Removing a file invalidates previously-taken handles."""
    sd = bed.sd
    sd.fs.vfs.mkdir("/export/data", parents=True)
    sd.fs.vfs.write("/export/data/tmp", data=b"x", size=10)
    handle = sd.fs.vfs.handle("/export/data/tmp")
    assert handle.valid()
    sd.fs.vfs.unlink("/export/data/tmp")
    with pytest.raises(StaleHandleError):
        handle.ensure()


def test_invoke_params_are_isolated(bed):
    """The daemon must not mutate the host's params dict (they cross a
    serialization boundary in reality)."""
    inp = text_input("/data/f", MB(50), payload_bytes=2_000, seed=23)
    _sd, _h, sd_path = bed.stage_on_sd("f", inp)
    params = {"input_path": sd_path, "input_size": MB(50), "mode": "parallel", "app": {}}
    snapshot = dict(params)

    def go():
        yield bed.cluster.channel().invoke("wordcount", params)

    bed.run(go())
    assert params == snapshot


def test_logfile_grows_then_is_bounded_per_invoke(bed):
    """Each call appends 2 records; the declared log size stays at the
    configured page (the channel charge is constant per op)."""
    inp = text_input("/data/f", MB(20), payload_bytes=1_500, seed=24)
    _sd, _h, sd_path = bed.stage_on_sd("f", inp)
    log = "/export/sdlog/wordcount.log"

    def go():
        for _ in range(2):
            yield bed.cluster.channel().invoke(
                "wordcount",
                {"input_path": sd_path, "input_size": MB(20), "mode": "parallel"},
            )

    bed.run(go())
    records = LogFileCodec.decode(bed.sd.fs.vfs.read(log))
    assert len(records) == 4  # 2 invokes + 2 results
    assert bed.sd.fs.size_of(log) == bed.config.smartfam.logfile_bytes
