"""Integration tests: the full smartFAM invocation path (Fig 5)."""

from __future__ import annotations

import pytest

from repro.cluster.testbed import Testbed
from repro.errors import ModuleNotRegisteredError, SmartFAMError
from repro.smartfam.registry import ModuleRegistry, standard_registry
from repro.units import MB
from repro.workloads import text_input


@pytest.fixture()
def bed():
    return Testbed(seed=1)


def test_invoke_wordcount_returns_real_result(bed):
    inp = text_input("/data/input", MB(200), payload_bytes=20_000, seed=2)
    _sd, _host, sd_path = bed.stage_on_sd("input", inp)
    channel = bed.cluster.channel()

    def proc():
        result = yield channel.invoke(
            "wordcount",
            {"input_path": sd_path, "input_size": MB(200), "mode": "partitioned"},
        )
        return result

    result = bed.run(proc())
    assert sum(v for _, v in result.output) == len(inp.payload_bytes.split())
    assert channel.calls == 1
    assert bed.cluster.sd_daemons[bed.sd.name].invocations == 1


def test_invoke_unknown_module_raises_on_host(bed):
    def proc():
        try:
            yield bed.cluster.channel().invoke("nonexistent", {"input_path": "/x"})
        except SmartFAMError as exc:
            return str(exc)

    # the daemon only watches registered modules' logs, so the host would
    # wait forever; the channel itself must reject unknown modules early
    # via the registry on the SD side -> we check the registry directly
    reg = standard_registry()
    with pytest.raises(ModuleNotRegisteredError):
        reg.get("nonexistent")


def test_module_error_propagates_to_host(bed):
    def proc():
        try:
            yield bed.cluster.channel().invoke(
                "wordcount", {"input_path": "/export/data/ghost", "mode": "parallel"}
            )
        except Exception as exc:
            return type(exc).__name__

    assert bed.run(proc()) in ("FileNotFoundInVFS", "SmartFAMError")


def test_invocations_serialize_per_module(bed):
    inp = text_input("/data/input", MB(100), payload_bytes=5_000, seed=3)
    _sd, _host, sd_path = bed.stage_on_sd("input", inp)
    channel = bed.cluster.channel()
    spans = []

    def one_call():
        t0 = bed.sim.now
        yield channel.invoke(
            "wordcount",
            {"input_path": sd_path, "input_size": MB(100), "mode": "parallel"},
        )
        spans.append((t0, bed.sim.now))

    def proc():
        calls = [bed.sim.spawn(one_call()) for _ in range(2)]
        yield bed.sim.all_of(calls)

    bed.run(proc())
    assert len(spans) == 2
    # The module ran twice; the log-file channel serialized the calls, so
    # completions are distinct instants.
    ends = sorted(end for _, end in spans)
    assert ends[1] > ends[0]
    assert bed.cluster.sd_daemons[bed.sd.name].invocations == 2


def test_different_modules_run_concurrently(bed):
    text = text_input("/data/t", MB(150), payload_bytes=5_000, seed=4)
    _sd, _host, text_path = bed.stage_on_sd("t", text)
    from repro.workloads import encrypted_input

    enc, keys, _ = encrypted_input("/data/e", MB(150), payload_bytes=5_000, seed=4)
    _sd2, _host2, enc_path = bed.stage_on_sd("e", enc)
    channel = bed.cluster.channel()
    done = {}

    def call(module, path, params):
        t0 = bed.sim.now
        yield channel.invoke(module, params)
        done[module] = (t0, bed.sim.now)

    def proc():
        a = bed.sim.spawn(
            call(
                "wordcount",
                text_path,
                {"input_path": text_path, "mode": "parallel"},
            )
        )
        b = bed.sim.spawn(
            call(
                "stringmatch",
                enc_path,
                {
                    "input_path": enc_path,
                    "mode": "parallel",
                    "app": {"keys": keys},
                },
            )
        )
        yield bed.sim.all_of([a, b])

    bed.run(proc())
    (wc0, wc1), (sm0, sm1) = done["wordcount"], done["stringmatch"]
    # overlap: one started before the other finished
    assert max(wc0, sm0) < min(wc1, sm1)


def test_offload_overhead_is_small(bed):
    """The log-file channel should cost well under a second per call."""
    from repro.phoenix import PhoenixRuntime

    inp = text_input("/data/input", MB(100), payload_bytes=5_000, seed=5)
    sd_view, _host, sd_path = bed.stage_on_sd("input", inp)
    channel = bed.cluster.channel()
    rt = PhoenixRuntime(bed.sd, bed.config.phoenix)

    def proc():
        t0 = bed.sim.now
        direct = yield rt.run(
            bed_spec(), sd_view, mode="parallel", write_output=False
        )
        direct_t = bed.sim.now - t0
        t0 = bed.sim.now
        yield channel.invoke(
            "wordcount",
            {"input_path": sd_path, "input_size": MB(100), "mode": "parallel"},
        )
        offload_t = bed.sim.now - t0
        return direct_t, offload_t

    def bed_spec():
        from repro.apps import make_wordcount_spec

        return make_wordcount_spec()

    direct_t, offload_t = bed.run(proc())
    assert offload_t - direct_t < 1.0


def test_registry_rejects_bad_names():
    reg = ModuleRegistry()
    with pytest.raises(SmartFAMError):
        reg.register("", lambda n, p, c: None)
    with pytest.raises(SmartFAMError):
        reg.register("a/b", lambda n, p, c: None)


def test_standard_registry_contents():
    reg = standard_registry()
    assert set(reg.names()) == {
        "wordcount", "stringmatch", "matmul",
        "dist_map", "dist_reduce", "dist_merge",
    }
    assert "wordcount" in reg
