"""Property: every execution strategy computes the same answer.

The reproduction's central correctness claim — partitioning, offloading
and sharding are *performance* techniques, not semantic ones — stated as
hypothesis properties over random corpora and fragment sizes:

    sequential == parallel == partitioned(any fragment size)

for Word Count on the simulated stack, and simulated == real-engine on
the multiprocessing side.
"""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps import make_wordcount_spec
from repro.config import table1_cluster
from repro.net import Fabric
from repro.node import Node
from repro.phoenix import InputSpec, PhoenixRuntime
from repro.partition import ExtendedPhoenixRuntime
from repro.sim import Simulator
from repro.units import MB


words_st = st.lists(
    st.sampled_from([b"alpha", b"beta", b"gamma", b"delta", b"epsilon", b"z"]),
    min_size=1,
    max_size=300,
)


def fresh_sd():
    cfg = table1_cluster()
    sim = Simulator(seed=1)
    fab = Fabric(sim, cfg.network)
    sd = Node(sim, cfg.node("sd0"), fab)
    sd.fs.vfs.mkdir("/data")
    return sim, sd, cfg


@given(words=words_st, size_mb=st.integers(min_value=1, max_value=1500),
       frag_mb=st.integers(min_value=1, max_value=800))
@settings(max_examples=40, deadline=None)
def test_property_all_strategies_agree(words, size_mb, frag_mb):
    payload = b" ".join(words)
    sim, sd, cfg = fresh_sd()
    inp = InputSpec(path="/data/f", size=MB(size_mb), payload=payload)
    sd.fs.vfs.write("/data/f", data=payload, size=inp.size)
    rt = PhoenixRuntime(sd, cfg.phoenix)
    ext = ExtendedPhoenixRuntime(sd, cfg.phoenix)
    spec = make_wordcount_spec()

    def go():
        seq = yield rt.run(spec, inp, mode="sequential", write_output=False)
        par = yield rt.run(
            spec, inp, mode="parallel", enforce_memory_rule=False, write_output=False
        )
        part = yield ext.run(spec, inp, fragment_bytes=MB(frag_mb), write_output=False)
        return seq.output, par.output, part.output

    p = sim.spawn(go())
    seq_out, par_out, part_out = sim.run(until=p)
    truth = dict(Counter(payload.split()))
    assert dict(seq_out) == truth
    assert dict(par_out) == truth
    assert dict(part_out) == truth
    # identical frequency-sorted ordering too
    assert [k for k, _ in seq_out] == [k for k, _ in par_out] == [
        k for k, _ in part_out
    ]


@given(words=words_st, chunk=st.integers(min_value=1, max_value=500))
@settings(max_examples=30, deadline=None)
def test_property_real_engine_matches_simulated_semantics(tmp_path_factory, words, chunk):
    import operator

    from repro.apps.wordcount import wc_map, wc_reduce
    from repro.exec import LocalMapReduce

    payload = b" ".join(words)
    p = tmp_path_factory.mktemp("eq") / "f.txt"
    p.write_bytes(payload)
    engine = LocalMapReduce(
        map_fn=wc_map, reduce_fn=wc_reduce, combine_fn=operator.add,
        sort_output=True, n_workers=2,
    )
    res = engine.run(str(p), chunk_bytes=chunk, parallel=False)
    assert dict(res.output) == dict(Counter(payload.split()))
