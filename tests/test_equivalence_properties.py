"""Property: every execution strategy computes the same answer.

The reproduction's central correctness claim — partitioning, offloading
and sharding are *performance* techniques, not semantic ones — stated as
hypothesis properties over random corpora and fragment sizes:

    sequential == parallel == partitioned(any fragment size)

for Word Count on the simulated stack, and simulated == real-engine on
the multiprocessing side.

The second half pins the PR-1 shuffle rewrite: the sort-once/merge-after
pipeline (`repro.phoenix.sort`) must be byte-identical to the frozen seed
dataflow (`repro.phoenix.seed_shuffle`) on random key/value workloads,
across every flag combination (with/without combine, reduce, sort, value-
ordered output) and across the parallel, sequential, and LocalMapReduce
paths.
"""

from __future__ import annotations

import operator
from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps import make_wordcount_spec
from repro.config import table1_cluster
from repro.net import Fabric
from repro.node import Node
from repro.phoenix import InputSpec, PhoenixRuntime
from repro.partition import ExtendedPhoenixRuntime
from repro.sim import Simulator
from repro.units import MB


words_st = st.lists(
    st.sampled_from([b"alpha", b"beta", b"gamma", b"delta", b"epsilon", b"z"]),
    min_size=1,
    max_size=300,
)


def fresh_sd():
    cfg = table1_cluster()
    sim = Simulator(seed=1)
    fab = Fabric(sim, cfg.network)
    sd = Node(sim, cfg.node("sd0"), fab)
    sd.fs.vfs.mkdir("/data")
    return sim, sd, cfg


@given(words=words_st, size_mb=st.integers(min_value=1, max_value=1500),
       frag_mb=st.integers(min_value=1, max_value=800))
@settings(max_examples=40, deadline=None)
def test_property_all_strategies_agree(words, size_mb, frag_mb):
    payload = b" ".join(words)
    sim, sd, cfg = fresh_sd()
    inp = InputSpec(path="/data/f", size=MB(size_mb), payload=payload)
    sd.fs.vfs.write("/data/f", data=payload, size=inp.size)
    rt = PhoenixRuntime(sd, cfg.phoenix)
    ext = ExtendedPhoenixRuntime(sd, cfg.phoenix)
    spec = make_wordcount_spec()

    def go():
        seq = yield rt.run(spec, inp, mode="sequential", write_output=False)
        par = yield rt.run(
            spec, inp, mode="parallel", enforce_memory_rule=False, write_output=False
        )
        part = yield ext.run(spec, inp, fragment_bytes=MB(frag_mb), write_output=False)
        return seq.output, par.output, part.output

    p = sim.spawn(go())
    seq_out, par_out, part_out = sim.run(until=p)
    truth = dict(Counter(payload.split()))
    assert dict(seq_out) == truth
    assert dict(par_out) == truth
    assert dict(part_out) == truth
    # identical frequency-sorted ordering too
    assert [k for k, _ in seq_out] == [k for k, _ in par_out] == [
        k for k, _ in part_out
    ]


@given(words=words_st, chunk=st.integers(min_value=1, max_value=500))
@settings(max_examples=30, deadline=None)
def test_property_real_engine_matches_simulated_semantics(tmp_path_factory, words, chunk):
    import operator

    from repro.apps.wordcount import wc_map, wc_reduce
    from repro.exec import LocalMapReduce

    payload = b" ".join(words)
    p = tmp_path_factory.mktemp("eq") / "f.txt"
    p.write_bytes(payload)
    engine = LocalMapReduce(
        map_fn=wc_map, reduce_fn=wc_reduce, combine_fn=operator.add,
        sort_output=True, n_workers=2,
    )
    res = engine.run(str(p), chunk_bytes=chunk, parallel=False)
    assert dict(res.output) == dict(Counter(payload.split()))


# -- shuffle rewrite vs frozen seed pipeline ---------------------------------

from repro.phoenix.api import CostProfile, MapReduceSpec  # noqa: E402
from repro.phoenix.runtime import _sequential_compute  # noqa: E402
from repro.phoenix.seed_shuffle import (  # noqa: E402
    seed_local_merge_runs,
    seed_local_worker_run,
    seed_shuffle_parallel,
)
from repro.phoenix.sort import local_merge_maps, shuffle_parallel  # noqa: E402


def _sum_reduce(key, values, params):
    return sum(values)


# mixed key types whose reprs never collide across distinct keys
shuffle_key_st = st.one_of(
    st.integers(min_value=-50, max_value=50),
    st.text(alphabet="abcdef ", max_size=5),
    st.tuples(st.integers(0, 9), st.integers(0, 9)),
)
# per-worker emission streams: repeated keys within and across workers
worker_emissions_st = st.lists(
    st.lists(st.tuples(shuffle_key_st, st.integers(0, 99)), max_size=40),
    min_size=1,
    max_size=6,
)


def _combiner_maps(emissions, combine_fn):
    """Fold raw per-worker emissions the way ``Combiner.emit`` does."""
    maps = []
    for worker in emissions:
        acc = {}
        for k, v in worker:
            if combine_fn is None:
                acc.setdefault(k, []).append(v)
            else:
                acc[k] = combine_fn(acc[k], v) if k in acc else v
        maps.append(acc)
    return maps


@given(
    emissions=worker_emissions_st,
    use_combine=st.booleans(),
    use_reduce=st.booleans(),
    needs_sort=st.booleans(),
    sort_output=st.booleans(),
    n_buckets=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=120, deadline=None)
def test_property_parallel_shuffle_identical_to_seed(
    emissions, use_combine, use_reduce, needs_sort, sort_output, n_buckets
):
    combine_fn = operator.add if use_combine else None
    reduce_fn = _sum_reduce if use_reduce else None
    maps = _combiner_maps(emissions, combine_fn)
    expected = seed_shuffle_parallel(
        maps, combine_fn, reduce_fn, needs_sort, sort_output, n_buckets, {}
    )
    got = shuffle_parallel(
        maps, combine_fn, reduce_fn, needs_sort, sort_output, n_buckets, {}
    )
    assert got == expected


@given(
    emissions=worker_emissions_st,
    use_combine=st.booleans(),
    use_reduce=st.booleans(),
    sort_output=st.booleans(),
)
@settings(max_examples=120, deadline=None)
def test_property_local_merge_identical_to_seed(
    emissions, use_combine, use_reduce, sort_output
):
    combine_fn = operator.add if use_combine else None
    reduce_fn = _sum_reduce if use_reduce else None
    maps = _combiner_maps(emissions, combine_fn)
    # the seed engine's workers sorted each chunk before shipping it
    runs = [seed_local_worker_run(m) for m in maps]
    expected = seed_local_merge_runs(runs, combine_fn, reduce_fn, sort_output, {})
    got = local_merge_maps(maps, combine_fn, reduce_fn, sort_output, {})
    assert got == expected


def _emit_all(data, emit, params):
    for k, v in data:
        emit(k, v)


@given(
    emissions=worker_emissions_st,
    use_combine=st.booleans(),
    use_reduce=st.booleans(),
    needs_sort=st.booleans(),
    sort_output=st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_property_sequential_compute_identical_to_seed(
    emissions, use_combine, use_reduce, needs_sort, sort_output
):
    combine_fn = operator.add if use_combine else None
    reduce_fn = _sum_reduce if use_reduce else None
    pairs = [kv for worker in emissions for kv in worker]
    spec = MapReduceSpec(
        name="seq-eq",
        map_fn=_emit_all,
        profile=CostProfile("seq-eq", 1.0),
        reduce_fn=reduce_fn,
        combine_fn=combine_fn,
        needs_sort=needs_sort,
        sort_output=sort_output,
    )
    got = _sequential_compute(spec, pairs, {})
    # one worker holding everything is exactly the sequential case
    expected = seed_shuffle_parallel(
        _combiner_maps([pairs], combine_fn),
        combine_fn, reduce_fn, needs_sort, sort_output, 4, {},
    )
    assert got == expected
