"""Tests for the paper's command syntax (Section IV-C)."""

from __future__ import annotations

import pytest

from repro.cluster import Testbed
from repro.core.cmdline import parse_command, run_command
from repro.errors import ConfigError
from repro.units import MB
from repro.workloads import encrypted_input, text_input


def test_no_partition_size_means_native_run():
    """Paper: 'If there is no [partition-size] parameter, the program will
    run in native way.'"""
    job = parse_command("wordcount /export/data/f")
    assert job.mode == "parallel"
    assert job.fragment_bytes is None


def test_manual_partition_size():
    job = parse_command("wordcount /export/data/f 600M")
    assert job.mode == "partitioned"
    assert job.fragment_bytes == MB(600)


def test_auto_partition_size():
    job = parse_command("wordcount /export/data/f auto")
    assert job.mode == "partitioned"
    assert job.fragment_bytes is None


def test_fractional_units():
    assert parse_command("wordcount /f 1.25G").fragment_bytes == MB(1250)


def test_key_value_options():
    job = parse_command("dbselect /export/t 300M threshold=100 agg=max")
    assert job.params == {"threshold": 100, "agg": "max"}
    assert job.fragment_bytes == MB(300)


def test_keys_option_splits_and_encodes():
    job = parse_command("stringmatch /export/e keys=AAA,BBB")
    assert job.params["keys"] == [b"AAA", b"BBB"]
    assert job.mode == "parallel"


def test_mode_and_sd_overrides():
    job = parse_command("wordcount /export/f mode=sequential sd=sd1")
    assert job.mode == "sequential"
    assert job.sd_node == "sd1"


def test_bad_commands_rejected():
    with pytest.raises(ConfigError):
        parse_command("wordcount")
    with pytest.raises(ConfigError):
        parse_command("wordcount /f 600M stray-token")


def test_run_command_wordcount_end_to_end():
    bed = Testbed(seed=31)
    inp = text_input("/data/f", MB(400), payload_bytes=8_000, seed=31)
    _sd, _h, sd_path = bed.stage_on_sd("f", inp)
    result = run_command(bed, f"wordcount {sd_path} 200M", input_size=MB(400))
    assert result.n_fragments == 2
    assert sum(v for _, v in result.output) == len(inp.payload_bytes.split())


def test_run_command_resolves_size_from_file():
    bed = Testbed(seed=32)
    inp = text_input("/data/f", MB(100), payload_bytes=4_000, seed=32)
    _sd, _h, sd_path = bed.stage_on_sd("f", inp)
    result = run_command(bed, f"wordcount {sd_path}")
    assert result.stats.input_bytes == MB(100)


def test_run_command_stringmatch_with_keys():
    bed = Testbed(seed=33)
    inp, keys, planted = encrypted_input(
        "/data/e", MB(100), payload_bytes=8_000, hit_rate=0.2, seed=33
    )
    _sd, _h, sd_path = bed.stage_on_sd("e", inp)
    key_arg = ",".join(k.decode() for k in keys)
    result = run_command(
        bed, f"stringmatch {sd_path} keys={key_arg}", input_size=MB(100)
    )
    assert sum(v for _, v in result.output) == planted
