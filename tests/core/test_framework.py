"""Integration tests for the McSD programming framework (core package)."""

from __future__ import annotations

import pytest

from repro.cluster.testbed import Testbed
from repro.core import (
    AdaptivePolicy,
    AlwaysOffloadPolicy,
    ComputeJob,
    DataJob,
    HostOnlyPolicy,
    McSDProgram,
    McSDRuntime,
)
from repro.errors import ConfigError, PlacementError
from repro.units import MB
from repro.workloads import text_input


@pytest.fixture()
def bed():
    return Testbed(seed=2)


def stage_wc(bed, size=MB(300), seed=8):
    inp = text_input("/data/input", size, payload_bytes=10_000, seed=seed)
    _sd, _host, sd_path = bed.stage_on_sd("input", inp)
    return inp, sd_path


def test_program_needs_at_least_one_part():
    with pytest.raises(ConfigError):
        McSDProgram(name="empty")


def test_data_job_validation():
    with pytest.raises(ConfigError):
        DataJob(app="wordcount", input_path="/x", input_size=1, mode="weird")
    with pytest.raises(ConfigError):
        DataJob(app="wordcount", input_path="/x", input_size=-1)


def test_invoke_params_shape():
    job = DataJob(
        app="wordcount",
        input_path="/export/data/f",
        input_size=MB(100),
        fragment_bytes=MB(50),
    )
    p = job.invoke_params()
    assert p["mode"] == "partitioned"
    assert p["fragment_bytes"] == MB(50)
    assert "fragment_bytes" not in DataJob(
        app="wordcount", input_path="/x", input_size=1, mode="parallel"
    ).invoke_params()


def test_full_program_offloads_sd_part(bed):
    inp, sd_path = stage_wc(bed)
    runtime = McSDRuntime(bed.cluster)
    program = McSDProgram(
        name="pair",
        host_part=ComputeJob.matmul(n=512, payload_n=32),
        sd_part=DataJob(
            app="wordcount",
            input_path=sd_path,
            input_size=inp.size,
            params=inp.params,
        ),
    )
    result = bed.run(runtime.submit(program))
    assert result.makespan > 0
    assert result.sd_result.offloaded
    assert result.sd_result.where == "sd0"
    assert result.host_result.where == "host"
    # the word count is real
    assert sum(v for _, v in result.sd_result.output) == len(
        inp.payload_bytes.split()
    )
    # makespan covers both parts
    assert result.makespan >= max(
        result.host_result.elapsed, result.sd_result.elapsed
    ) - 1e-9


def test_sd_only_program(bed):
    inp, sd_path = stage_wc(bed)
    runtime = McSDRuntime(bed.cluster)
    program = McSDProgram(
        name="only-data",
        sd_part=DataJob(app="wordcount", input_path=sd_path, input_size=inp.size),
    )
    result = bed.run(runtime.submit(program))
    assert result.host_result is None
    assert result.sd_result is not None
    assert runtime.programs_run == 1


def test_host_only_policy_pulls_data_over_nfs(bed):
    inp, sd_path = stage_wc(bed)
    runtime = McSDRuntime(bed.cluster, policy=HostOnlyPolicy())
    program = McSDProgram(
        name="hostish",
        sd_part=DataJob(
            app="wordcount", input_path=sd_path, input_size=inp.size, mode="parallel"
        ),
    )
    before = bed.cluster.mount().bytes_read
    result = bed.run(runtime.submit(program))
    assert not result.sd_result.offloaded
    assert result.sd_result.where == "host"
    # the input actually crossed the NFS mount
    assert bed.cluster.mount().bytes_read >= before + inp.size
    assert runtime.engine.host_runs == 1


def test_offload_vs_host_elapsed_ranks_correctly(bed):
    """Offloading to the duo SD beats pulling the data to the host only
    when the host is busy; an idle quad host wins on raw CPU.  We check
    both runs complete and the framework reports where each ran."""
    inp, sd_path = stage_wc(bed, size=MB(400))
    offload_rt = McSDRuntime(bed.cluster, policy=AlwaysOffloadPolicy())
    host_rt = McSDRuntime(bed.cluster, policy=HostOnlyPolicy())

    def job():
        return McSDProgram(
            name="j",
            sd_part=DataJob(
                app="wordcount",
                input_path=sd_path,
                input_size=inp.size,
                mode="parallel",
            ),
        )

    r1 = bed.run(offload_rt.submit(job()))
    r2 = bed.run(host_rt.submit(job()))
    assert r1.sd_result.where == "sd0"
    assert r2.sd_result.where == "host"
    assert dict(r1.sd_result.output) == dict(r2.sd_result.output)


def test_adaptive_policy_prefers_idle_sd(bed):
    inp, sd_path = stage_wc(bed)
    policy = AdaptivePolicy(tolerance=0.5)
    job = DataJob(app="wordcount", input_path=sd_path, input_size=inp.size)
    placement = policy.place(job, bed.cluster)
    assert placement.offload


def test_adaptive_policy_sheds_to_host_when_sd_busy(bed):
    inp, sd_path = stage_wc(bed)
    policy = AdaptivePolicy(tolerance=0.5)
    # saturate the SD CPU with synthetic load
    for i in range(8):
        bed.sd.cpu.submit(1e12, name=f"hog{i}")
    job = DataJob(app="wordcount", input_path=sd_path, input_size=inp.size)
    placement = policy.place(job, bed.cluster)
    assert not placement.offload
    assert placement.node == "host"


def test_adaptive_policy_validation():
    with pytest.raises(PlacementError):
        AdaptivePolicy(tolerance=-1)


def test_unknown_sd_node_rejected(bed):
    policy = AlwaysOffloadPolicy()
    job = DataJob(app="wordcount", input_path="/export/x", input_size=1, sd_node="ghost")
    with pytest.raises(PlacementError):
        policy.place(job, bed.cluster)


def test_concurrent_programs_share_cluster(bed):
    inp, sd_path = stage_wc(bed)
    runtime = McSDRuntime(bed.cluster)

    def both():
        p1 = runtime.submit(
            McSDProgram(
                name="a",
                sd_part=DataJob(
                    app="wordcount", input_path=sd_path, input_size=inp.size
                ),
            )
        )
        p2 = runtime.submit(
            McSDProgram(
                name="b",
                host_part=ComputeJob.matmul(n=256, payload_n=16),
            )
        )
        res = yield bed.sim.all_of([p1, p2])
        return list(res.values())

    results = bed.run(both())
    assert len(results) == 2
    assert runtime.programs_run == 2
