"""Tests for the shared load signal (node_load / least_loaded)."""

from __future__ import annotations

import types

import pytest

from repro.cluster import Testbed
from repro.config import table1_cluster
from repro.core import DataJob
from repro.core.loadbalance import AdaptivePolicy, least_loaded, node_load
from repro.errors import PlacementError


def fake_engine(**inflight) -> types.SimpleNamespace:
    return types.SimpleNamespace(inflight=dict(inflight))


@pytest.fixture()
def bed():
    return Testbed(config=table1_cluster(n_sd=2, seed=1), seed=1)


def test_node_load_stacks_all_three_signals(bed):
    cluster = bed.cluster
    assert node_load(cluster, None, "sd0") == 0.0  # idle CPU, nothing placed
    assert node_load(cluster, fake_engine(sd0=2), "sd0") == 2.0
    assert node_load(cluster, fake_engine(sd0=2), "sd0", {"sd0": 3}) == 5.0
    # other nodes' inflight/depths do not bleed over
    assert node_load(cluster, fake_engine(sd0=2), "sd1", {"sd0": 3}) == 0.0
    # accepts a Node object as well as a name
    assert node_load(cluster, None, cluster.sd(0)) == 0.0


def test_least_loaded_prefers_the_lower_load(bed):
    eng = fake_engine(sd0=2, sd1=0)
    assert least_loaded(bed.cluster, eng, ["sd0", "sd1"]) == "sd1"
    assert least_loaded(bed.cluster, eng, ["sd1", "sd0"]) == "sd1"


def test_least_loaded_ties_break_toward_first_candidate(bed):
    eng = fake_engine()
    # callers list the preferred (primary) node first; a tie keeps it
    assert least_loaded(bed.cluster, eng, ["sd1", "sd0"]) == "sd1"
    assert least_loaded(bed.cluster, eng, ["sd0", "sd1"]) == "sd0"
    # only a strictly better later candidate displaces the first
    assert least_loaded(bed.cluster, eng, ["sd1", "sd0"], {"sd1": 1}) == "sd0"


def test_least_loaded_requires_candidates(bed):
    with pytest.raises(PlacementError):
        least_loaded(bed.cluster, None, [])


def test_adaptive_policy_folds_bound_queue_depths(bed):
    """A deep scheduler queue for the SD node sheds the job to the host."""
    job = DataJob(
        app="wordcount", input_path="/export/data/x", input_size=100,
        sd_node="sd0",
    )
    policy = AdaptivePolicy(tolerance=0.5)
    assert policy.place(job, bed.cluster).offload
    policy.bind_depths(lambda: {"sd0": 3})
    placement = policy.place(job, bed.cluster)
    assert not placement.offload
    assert placement.node == bed.cluster.host.name
