"""Tests for multi-McSD scatter-gather (Section VI future work)."""

from __future__ import annotations

import pytest

from repro.cluster import Testbed
from repro.config import table1_cluster
from repro.core import ScatterGatherEngine, ScatterJob, Shard
from repro.errors import OffloadError
from repro.units import MB
from repro.workloads import text_input


def make_bed(n_sd=2, seed=4):
    return Testbed(config=table1_cluster(n_sd=n_sd, seed=seed), seed=seed)


def test_scatter_job_validation():
    with pytest.raises(OffloadError):
        ScatterJob(app="wordcount", shards=[])


def test_shards_cover_dataset():
    bed = make_bed(n_sd=3)
    inp = text_input("/data/big", MB(900), payload_bytes=30_000, seed=1)
    shards = bed.stage_shards("big", inp)
    assert len(shards) == 3
    assert sum(s.size for s in shards) == MB(900)
    assert {s.sd_node for s in shards} == {"sd0", "sd1", "sd2"}
    # each shard is really on its node
    for s in shards:
        assert bed.cluster.node(s.sd_node).fs.size_of(s.path) == s.size


def test_scatter_wordcount_is_exact():
    bed = make_bed(n_sd=2)
    inp = text_input("/data/big", MB(800), payload_bytes=24_000, seed=2)
    shards = bed.stage_shards("big", inp)
    eng = ScatterGatherEngine(bed.cluster)

    def go():
        return (yield eng.run(ScatterJob(app="wordcount", shards=shards)))

    res = bed.run(go())
    assert res.n_shards == 2
    assert sum(v for _, v in res.output) == len(inp.payload_bytes.split())
    # merged output is globally sorted by frequency
    counts = [v for _, v in res.output]
    assert counts == sorted(counts, reverse=True)


def test_scatter_matches_single_sd_output():
    seed = 6
    inp = text_input("/data/big", MB(600), payload_bytes=20_000, seed=seed)

    bed1 = make_bed(n_sd=1, seed=seed)
    shards1 = bed1.stage_shards("big", inp)
    eng1 = ScatterGatherEngine(bed1.cluster)

    def go1():
        return (yield eng1.run(ScatterJob(app="wordcount", shards=shards1)))

    single = bed1.run(go1())

    bed2 = make_bed(n_sd=2, seed=seed)
    shards2 = bed2.stage_shards("big", inp)
    eng2 = ScatterGatherEngine(bed2.cluster)

    def go2():
        return (yield eng2.run(ScatterJob(app="wordcount", shards=shards2)))

    double = bed2.run(go2())
    assert dict(single.output) == dict(double.output)


def test_scatter_scales_with_sd_count():
    """The future-work claim: multiple McSDs work the shards in parallel."""
    seed = 7
    times = {}
    for n_sd in (1, 2, 4):
        bed = make_bed(n_sd=n_sd, seed=seed)
        inp = text_input("/data/big", MB(1600), payload_bytes=16_000, seed=seed)
        shards = bed.stage_shards("big", inp)
        eng = ScatterGatherEngine(bed.cluster)

        def go(eng=eng, shards=shards):
            return (yield eng.run(ScatterJob(app="wordcount", shards=shards)))

        times[n_sd] = bed.run(go()).elapsed
    assert times[2] < 0.62 * times[1]
    assert times[4] < 0.62 * times[2]


def test_scatter_shard_on_unknown_node_rejected():
    bed = make_bed(n_sd=1)
    eng = ScatterGatherEngine(bed.cluster)
    job = ScatterJob(
        app="wordcount", shards=[Shard(sd_node="sd9", path="/export/x", size=1)]
    )

    def go():
        yield eng.run(job)

    with pytest.raises(OffloadError):
        bed.run(go())


def test_scatter_single_shard_passthrough():
    bed = make_bed(n_sd=1)
    inp = text_input("/data/one", MB(300), payload_bytes=8_000, seed=3)
    shards = bed.stage_shards("one", inp)
    assert len(shards) == 1
    eng = ScatterGatherEngine(bed.cluster)

    def go():
        return (yield eng.run(ScatterJob(app="wordcount", shards=shards)))

    res = bed.run(go())
    assert sum(v for _, v in res.output) == len(inp.payload_bytes.split())
