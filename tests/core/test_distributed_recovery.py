"""Fine-grained recovery: partial restart, artifact repair, speculation."""

from __future__ import annotations

import pickle

from repro.cluster.testbed import Testbed
from repro.config import table1_cluster
from repro.core import DistributedEngine, DistributedJob
from repro.core.distributed import SpeculationPolicy
from repro.faults import FaultPlan, FaultRule, recovery_chaos_plan
from repro.units import MB
from repro.workloads import text_input

_TIMEOUT = 3600.0


def _bed(n_sd: int = 4, size: int = MB(20)):
    bed = Testbed(config=table1_cluster(n_sd=n_sd, seed=0), seed=0)
    inp = text_input("/data/d", size, payload_bytes=6_000, seed=5)
    _, sd_path = bed.stage_replicated("d", inp)
    return bed, sd_path


def _job(sd_path, size=MB(20)):
    return DistributedJob(
        app="wordcount", input_path=sd_path, input_size=size,
        fragment_bytes=(size + 3) // 4,
    )


def _clean():
    bed, sd_path = _bed()
    eng = DistributedEngine(bed.cluster)
    res = bed.run(eng.run(_job(sd_path), timeout=_TIMEOUT))
    return res


def test_kill_at_exchange_partial_restart():
    clean = _clean()
    # a reduce owner that is NOT the merge node: its death loses its
    # derived working state, but its committed map artifact stays on the
    # (host-readable) disk, so NO map is re-run — the partition it owned
    # is re-reduced on a survivor from the surviving artifacts
    victims = [n for n in clean.reduce_nodes.values() if n != clean.merge_node]
    victim = victims[0] if victims else clean.merge_node
    kill_at = (clean.timeline["map_done"] + clean.timeline["exchange_done"]) / 2

    bed, sd_path = _bed()
    eng = DistributedEngine(bed.cluster)

    def killer():
        yield bed.sim.timeout(kill_at)
        bed.cluster.sd_daemons[victim].kill()

    bed.sim.spawn(killer(), name="killer")
    res = bed.run(eng.run(_job(sd_path), timeout=5.0))
    assert pickle.dumps(res.output) == pickle.dumps(clean.output)
    assert res.attempts == 1
    assert eng.partial_restarts >= 1 and eng.full_restarts == 0
    # the dead mapper's committed artifact was reused in place
    assert victim in res.shard_nodes
    # but no daemon work was re-dispatched to it
    assert victim not in res.reduce_nodes.values()
    assert res.merge_node != victim
    counters = bed.sim.obs.metrics.snapshot()["counters"]
    # recovery never re-ran a map: one dist_map invoke per shard, total
    assert counters.get("dist.invoke.map", 0) == res.n_shards
    assert counters.get("dist.restart.partial", 0) >= 1
    assert counters.get("dist.restart.full", 0) == 0


def test_corrupted_artifact_rebuilt_in_place():
    clean = _clean()
    bed, sd_path = _bed()
    injector = bed.sim.install_faults(recovery_chaos_plan(0))
    eng = DistributedEngine(bed.cluster)
    res = bed.run(eng.run(_job(sd_path), timeout=_TIMEOUT))
    assert injector.fired_by_site().get("shuffle.artifact", 0) == 1
    assert pickle.dumps(res.output) == pickle.dumps(clean.output)
    # crc caught the on-disk damage; only that artifact was re-derived
    assert res.attempts == 1
    assert eng.partial_restarts >= 1 and eng.full_restarts == 0
    # the replay re-copied only the rebuilt shard's buckets; every other
    # surviving transfer was recognized and skipped
    assert res.recovery["dedup_transfers"] >= 1


def test_straggler_speculation_wins():
    clean = _clean()
    victim = clean.shard_nodes[0]
    map_span = max(clean.timeline["map_done"], 0.2)
    stall = 6.0 * map_span

    bed, sd_path = _bed()
    bed.sim.install_faults(FaultPlan(rules=(
        FaultRule("fam.dispatch", action="delay", count=1, delay=stall,
                  where={"module": "dist_map", "node": victim}),
    )))
    eng = DistributedEngine(
        bed.cluster,
        speculation=SpeculationPolicy(multiplier=1.3, min_wait=0.02),
    )
    res = bed.run(eng.run(_job(sd_path), timeout=_TIMEOUT))
    assert pickle.dumps(res.output) == pickle.dumps(clean.output)
    assert res.attempts == 1 and eng.full_restarts == 0
    spec = res.recovery["speculation"]
    assert spec["launched"] >= 1 and spec["won"] >= 1
    # the duplicate shard ran on a spare, so the stall never gated the job
    assert res.elapsed < clean.elapsed + stall


def test_speculation_disabled_by_policy():
    bed, sd_path = _bed()
    eng = DistributedEngine(
        bed.cluster, speculation=SpeculationPolicy(enabled=False)
    )
    res = bed.run(eng.run(_job(sd_path), timeout=_TIMEOUT))
    assert res.recovery["speculation"] == {
        "launched": 0, "won": 0, "cancelled": 0,
    }
