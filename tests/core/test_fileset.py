"""Tests for multi-file datasets (the paper's 'set of files' input)."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.apps import make_wordcount_spec
from repro.cluster import Testbed
from repro.core.fileset import run_fileset
from repro.errors import OffloadError, WorkloadError
from repro.units import MB
from repro.workloads.fileset import fileset_input


@pytest.fixture()
def staged():
    bed = Testbed(seed=41)
    files = fileset_input(
        "/data/corpus", n_files=4, total_declared_bytes=MB(800),
        payload_bytes_per_file=6_000, seed=41,
    )
    staged_files = [bed.stage(bed.sd, f"/export{f.path}", f) for f in files]
    return bed, staged_files


def test_fileset_generator_shapes():
    files = fileset_input("/d", n_files=5, total_declared_bytes=MB(500), seed=1)
    assert len(files) == 5
    assert sum(f.size for f in files) == MB(500)
    assert len({f.path for f in files}) == 5
    assert all(f.payload_bytes for f in files)


def test_fileset_skew():
    files = fileset_input(
        "/d", n_files=4, total_declared_bytes=MB(400), seed=1, skew=0.5
    )
    sizes = [f.size for f in files]
    assert sizes == sorted(sizes, reverse=True)
    assert sizes[0] > 2 * sizes[-1]


def test_fileset_validation():
    with pytest.raises(WorkloadError):
        fileset_input("/d", 0, MB(1))
    with pytest.raises(WorkloadError):
        fileset_input("/d", 4, 2)
    with pytest.raises(WorkloadError):
        fileset_input("/d", 2, MB(1), skew=1.0)


def test_run_fileset_counts_exactly(staged):
    bed, files = staged
    spec = make_wordcount_spec()

    def go():
        return (yield run_fileset(bed.sd, spec, files, phoenix_cfg=bed.config.phoenix))

    res = bed.run(go())
    assert res.n_files == 4
    truth = Counter()
    for f in files:
        truth.update(f.payload_bytes.split())
    assert dict(res.output) == dict(truth)
    # output stays globally sorted by frequency
    counts = [v for _, v in res.output]
    assert counts == sorted(counts, reverse=True)


def test_run_fileset_partitions_large_files(staged):
    bed, files = staged
    spec = make_wordcount_spec()

    def go():
        return (
            yield run_fileset(
                bed.sd, spec, files, fragment_bytes=MB(100),
                phoenix_cfg=bed.config.phoenix,
            )
        )

    res = bed.run(go())
    # 4 x 200MB files at 100MB fragments -> 2 fragments each
    assert all(r.n_fragments == 2 for r in res.per_file)


def test_run_fileset_empty_rejected(staged):
    bed, _files = staged
    with pytest.raises(OffloadError):
        run_fileset(bed.sd, make_wordcount_spec(), [])


def test_run_fileset_requires_merge(staged):
    bed, files = staged
    from repro.apps.wordcount import WC_PROFILE, wc_map
    from repro.phoenix.api import MapReduceSpec

    spec = MapReduceSpec(name="nomerge", map_fn=wc_map, profile=WC_PROFILE)
    with pytest.raises(OffloadError):
        run_fileset(bed.sd, spec, files)


def test_run_fileset_single_file_passthrough(staged):
    bed, files = staged
    spec = make_wordcount_spec()

    def go():
        return (
            yield run_fileset(
                bed.sd, spec, files[:1], phoenix_cfg=bed.config.phoenix
            )
        )

    res = bed.run(go())
    assert res.n_files == 1
    assert dict(res.output) == dict(Counter(files[0].payload_bytes.split()))
