"""Durable shuffle artifacts: framing, verification, manifest lifecycle."""

from __future__ import annotations

import pytest

from repro.core.artifacts import (
    FRAME,
    AttemptManifest,
    corrupt_artifact,
    pack_artifact,
    unpack_artifact,
)
from repro.errors import ShuffleArtifactError
from repro.exec.outofcore import _BLOCK_HEADER


def test_frame_matches_spill_format():
    # one durable framing convention across the repo: the shuffle frame IS
    # the PR-4 spill frame (<length:u32><crc32:u32>)
    assert FRAME.format == _BLOCK_HEADER.format
    assert FRAME.size == _BLOCK_HEADER.size


def test_roundtrip():
    obj = [("word", 3), ("count", 7), {"nested": [1, 2, 3]}]
    blob = pack_artifact(obj)
    assert unpack_artifact(blob, path="/x/y") == obj


def test_corrupt_payload_detected():
    blob = pack_artifact({"k": list(range(50))})
    bad = corrupt_artifact(blob)
    assert bad != blob and len(bad) == len(blob)
    with pytest.raises(ShuffleArtifactError) as ei:
        unpack_artifact(bad, path="/shuffle/map0.p1", shard=0, partition=1)
    assert ei.value.retryable
    assert ei.value.shard == 0 and ei.value.partition == 1


def test_truncated_frame_detected():
    blob = pack_artifact([1, 2, 3])
    for cut in (0, FRAME.size - 1, FRAME.size, len(blob) - 1):
        with pytest.raises(ShuffleArtifactError):
            unpack_artifact(blob[:cut], path="/p")


def _manifest():
    m = AttemptManifest()
    m.register_map(0, "sd0", {"partitions": {0: {"path": "/s/map0.p0", "bytes": 10},
                                            1: {"path": "/s/map0.p1", "bytes": 20}},
                              "entries": 5})
    m.register_map(1, "sd1", {"partitions": {0: {"path": "/s/map1.p0", "bytes": 30},
                                            1: {"path": "/s/map1.p1", "bytes": 40}},
                              "entries": 7})
    m.received[("sd0", 1, 0)] = "/s/rx/p0.s1"   # shard 1's p0 copied to sd0
    m.received[("sd1", 0, 1)] = "/s/rx/p1.s0"   # shard 0's p1 copied to sd1
    m.reduced[0] = {"path": "/s/red.p0", "bytes": 50, "entries": 3, "node": "sd0"}
    m.reduced[1] = {"path": "/s/red.p1", "bytes": 60, "entries": 4, "node": "sd1"}
    m.gathered[("sd0", "p", 1)] = "/s/rx/red.p1"
    return m


def test_invalidate_node_keeps_committed_maps_and_live_copies():
    m = _manifest()
    m.invalidate_node("sd1")
    # a kill crashes the daemon, not the disk: sd1's COMMITTED map artifact
    # survives (host-readable, crc-verified on read); its derived working
    # state — the reduce output it held — is re-derived on survivors
    assert 1 in m.maps and 0 in m.maps
    assert 1 not in m.reduced and 0 in m.reduced
    # the copy sd1 *owned* is gone; the copy of sd1's bucket held on live
    # sd0 is KEPT — a deterministic re-map regenerates identical bytes, so
    # the transfer need not repeat
    assert ("sd1", 0, 1) not in m.received
    assert ("sd0", 1, 0) in m.received
    # gathered leg for the dead reduce output is dropped with it
    assert ("sd0", "p", 1) not in m.gathered


def test_invalidate_shard_drops_its_buckets_everywhere():
    m = _manifest()
    m.invalidate_shard(1)
    assert 1 not in m.maps and 0 in m.maps
    assert ("sd0", 1, 0) not in m.received       # shard 1's bucket copy
    assert ("sd1", 0, 1) in m.received           # shard 0's copy untouched
    assert m.reduced  # reduce outputs survive a map re-run decision


def test_invalidate_artifact_routes_by_exception():
    m = _manifest()
    m.invalidate_artifact(
        ShuffleArtifactError("/s/red.p1", partition=1, detail="crc")
    )
    assert 1 not in m.reduced and 0 in m.reduced
    assert ("sd0", "p", 1) not in m.gathered

    m2 = _manifest()
    m2.invalidate_artifact(ShuffleArtifactError("/s/map1.p0", shard=1))
    assert 1 not in m2.maps and 0 in m2.maps

    m3 = _manifest()
    # no attribution at all: conservative full invalidation
    m3.invalidate_artifact(ShuffleArtifactError("/s/unknown"))
    assert not m3.maps and not m3.received and not m3.reduced
    assert not m3.gathered


def test_summary_counts():
    m = _manifest()
    s = m.summary()
    assert s["maps"] == 2 and s["received"] == 2
    assert s["reduced"] == 2 and s["gathered"] == 1
