"""Tests for fault tolerance: deadlines, retries, failover (Section VI)."""

from __future__ import annotations

import pytest

from repro.cluster import Testbed
from repro.config import table1_cluster
from repro.core import DataJob, FaultTolerantInvoker
from repro.errors import OffloadError, OffloadTimeoutError, SmartFAMError
from repro.units import MB
from repro.workloads import text_input


@pytest.fixture()
def env():
    bed = Testbed(config=table1_cluster(n_sd=2, seed=5), seed=5)
    inp = text_input("/data/f", MB(200), payload_bytes=6_000, seed=5)
    _sd, _h, sd_path = bed.stage_on_sd("f", inp)
    # replicate the dataset on the second SD node (failover target)
    bed.stage(bed.cluster.sd(1), sd_path, inp)
    job = DataJob(app="wordcount", input_path=sd_path, input_size=MB(200), mode="parallel")
    return bed, inp, job


def expected_total(inp):
    return len(inp.payload_bytes.split())


def test_clean_run_single_attempt(env):
    bed, inp, job = env
    ft = FaultTolerantInvoker(bed.cluster, timeout=60.0)

    def go():
        return (yield ft.run(job))

    res = bed.run(go())
    assert res.where == "sd0"
    assert ft.total_attempts == 1
    assert sum(v for _, v in res.output) == expected_total(inp)


def test_injected_crash_retried_on_same_node(env):
    bed, inp, job = env
    bed.cluster.sd_daemons["sd0"].inject_module_crash("wordcount", 1)
    ft = FaultTolerantInvoker(bed.cluster, timeout=60.0, max_retries=1)

    def go():
        return (yield ft.run(job))

    res = bed.run(go())
    assert res.where == "sd0"
    trail = ft.history[0]
    assert [a.outcome for a in trail] == ["error", "ok"]


def test_dropped_result_times_out_and_retries(env):
    bed, inp, job = env
    bed.cluster.sd_daemons["sd0"].inject_result_drop("wordcount", 1)
    ft = FaultTolerantInvoker(bed.cluster, timeout=20.0, max_retries=1)

    def go():
        return (yield ft.run(job))

    res = bed.run(go())
    trail = ft.history[0]
    assert trail[0].outcome == "timeout"
    assert trail[0].finished_at - trail[0].started_at == pytest.approx(20.0, rel=0.01)
    assert res.where == "sd0"
    assert sum(v for _, v in res.output) == expected_total(inp)


def test_failover_to_replica_sd(env):
    bed, inp, job = env
    bed.cluster.sd_daemons["sd0"].inject_module_crash("wordcount", 5)
    ft = FaultTolerantInvoker(bed.cluster, timeout=60.0, max_retries=1)

    def go():
        return (yield ft.run(job, replicas=["sd1"]))

    res = bed.run(go())
    assert res.where == "sd1"
    targets = [a.target for a in ft.history[0]]
    assert targets == ["sd0", "sd0", "sd1"]
    assert sum(v for _, v in res.output) == expected_total(inp)


def test_failover_to_host_when_all_sds_dead(env):
    bed, inp, job = env
    bed.cluster.sd_daemons["sd0"].inject_module_crash("wordcount", 5)
    bed.cluster.sd_daemons["sd1"].inject_module_crash("wordcount", 5)
    ft = FaultTolerantInvoker(bed.cluster, timeout=60.0, max_retries=0)

    def go():
        return (yield ft.run(job, replicas=["sd1"]))

    res = bed.run(go())
    assert res.where == "host"
    assert not res.offloaded
    assert ft.failovers == 1
    assert sum(v for _, v in res.output) == expected_total(inp)


def test_no_fallback_raises(env):
    bed, inp, job = env
    bed.cluster.sd_daemons["sd0"].inject_module_crash("wordcount", 5)
    ft = FaultTolerantInvoker(
        bed.cluster, timeout=60.0, max_retries=1, fallback_to_host=False
    )

    def go():
        yield ft.run(job)

    with pytest.raises(OffloadError):
        bed.run(go())


def test_raw_channel_timeout_error(env):
    bed, inp, job = env
    bed.cluster.sd_daemons["sd0"].inject_result_drop("wordcount", 1)

    def go():
        try:
            yield bed.cluster.channel().invoke(
                "wordcount", job.invoke_params(), timeout=10.0
            )
        except OffloadTimeoutError as exc:
            return (bed.sim.now, exc.module)

    t, module = bed.run(go())
    assert t == pytest.approx(10.0, rel=0.01)
    assert module == "wordcount"


def test_channel_recovers_after_timeout(env):
    """The per-module lock must not be leaked by an abandoned call."""
    bed, inp, job = env
    bed.cluster.sd_daemons["sd0"].inject_result_drop("wordcount", 1)
    channel = bed.cluster.channel()

    def go():
        try:
            yield channel.invoke("wordcount", job.invoke_params(), timeout=10.0)
        except OffloadTimeoutError:
            pass
        res = yield channel.invoke("wordcount", job.invoke_params(), timeout=120.0)
        return res

    res = bed.run(go())
    assert sum(v for _, v in res.output) == expected_total(inp)


def test_validation():
    bed = Testbed(seed=1)
    with pytest.raises(OffloadError):
        FaultTolerantInvoker(bed.cluster, max_retries=-1)
