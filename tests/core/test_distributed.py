"""Distributed single-job engine: planning, exchange, faults, restart."""

from __future__ import annotations

import pickle

import pytest

from repro.cluster.testbed import Testbed
from repro.config import table1_cluster
from repro.core import DistributedEngine, DistributedJob, plan_distribution
from repro.core.distributed import ShardFragment, SpeculationPolicy
from repro.errors import DistributedJobError, OffloadError
from repro.faults import distributed_chaos_plan
from repro.phoenix import InputSpec
from repro.units import MB
from repro.workloads import text_input

_TIMEOUT = 3600.0


def _bed(n_sd: int = 4, size: int = MB(20), **stage_kw):
    bed = Testbed(config=table1_cluster(n_sd=n_sd, seed=0), seed=0)
    inp = text_input("/data/d", size, payload_bytes=6_000, seed=5)
    _, sd_path = bed.stage_replicated("d", inp, **stage_kw)
    return bed, sd_path, inp


def _job(sd_path, size=MB(20), **kw):
    kw.setdefault("fragment_bytes", (size + 3) // 4)
    return DistributedJob(
        app="wordcount", input_path=sd_path, input_size=size, **kw,
    )


# -- planning ----------------------------------------------------------------


def _plan(job, payload, nodes):
    cfg = table1_cluster(n_sd=4, seed=0)
    return plan_distribution(
        job, payload, nodes, cfg.node("sd0").mem_bytes, cfg.phoenix
    )


def test_plan_slices_contiguous_fragments_over_shards():
    payload = b"alpha beta gamma delta " * 200
    size = MB(8)
    job = _job("/x", size=size, fragment_bytes=MB(2), n_shards=4)
    plan = _plan(job, payload, ["sd0", "sd1", "sd2", "sd3"])
    assert plan.kind == "bytes" and plan.exchange
    assert len(plan.shards) == 4
    assert sum(s.size for s in plan.shards) == size
    # contiguous global fragment indices, in order, no gaps
    indices = [f.index for s in plan.shards for f in s.fragments]
    assert indices == list(range(plan.n_fragments))
    # payload slices tile the payload exactly
    spans = [(f.p0, f.p1) for s in plan.shards for f in s.fragments]
    assert spans[0][0] == 0 and spans[-1][1] == len(payload)
    for (_, p1), (q0, _) in zip(spans, spans[1:]):
        assert p1 == q0


def test_plan_defaults_partitions_to_shard_count():
    payload = b"a b c " * 100
    job = _job("/x", size=MB(4), fragment_bytes=MB(1), n_shards=2)
    plan = _plan(job, payload, ["sd0", "sd1", "sd2", "sd3"])
    assert len(plan.shards) == 2
    assert plan.n_partitions == 2
    job2 = _job("/x", size=MB(4), fragment_bytes=MB(1), n_shards=2, n_partitions=7)
    assert _plan(job2, payload, ["sd0", "sd1"]).n_partitions == 7


def test_plan_drops_empty_shards_when_fragments_are_scarce():
    # one fragment, four requested shards: only one shard is planned
    payload = b"tiny"
    job = _job("/x", size=MB(1), fragment_bytes=MB(8), n_shards=4)
    plan = _plan(job, payload, ["sd0", "sd1", "sd2", "sd3"])
    assert len(plan.shards) == 1
    assert plan.shards[0].size == MB(1)


def test_plan_split_kind_for_non_byte_payloads():
    from repro.apps.matmul import matmul_input

    inp = matmul_input("/data/m", 64, payload_n=8, seed=1)
    job = DistributedJob(
        app="matmul", input_path="/x", input_size=inp.size,
        n_shards=3, params={"n": 64},
    )
    plan = _plan(job, inp.payload, ["sd0", "sd1", "sd2", "sd3"])
    assert plan.kind == "split"
    assert len(plan.shards) == 3
    assert sum(s.size for s in plan.shards) == inp.size
    # declared sizes differ by at most one byte (divmod apportionment)
    sizes = [s.size for s in plan.shards]
    assert max(sizes) - min(sizes) <= 1


def test_plan_requires_nodes():
    job = _job("/x")
    with pytest.raises(OffloadError):
        _plan(job, b"x", [])


def test_shard_fragment_is_frozen():
    f = ShardFragment(size=10, p0=0, p1=4, index=0)
    with pytest.raises(Exception):
        f.size = 20  # type: ignore[misc]


# -- clean runs --------------------------------------------------------------


def test_distributed_run_reports_shuffle_accounting():
    bed, sd_path, inp = _bed()
    eng = DistributedEngine(bed.cluster)
    res = bed.run(eng.run(_job(sd_path), timeout=_TIMEOUT))
    assert res.n_shards == 4 and res.offloaded
    assert res.where == res.merge_node
    assert res.shuffle_bytes > 0 and res.shuffle_transfers > 0
    assert res.n_partitions == 4
    # the observable counters mirror the result's accounting
    counters = bed.sim.obs.metrics.snapshot()["counters"]
    assert counters.get("shuffle.bytes") == res.shuffle_bytes
    assert counters.get("shuffle.transfers") == res.shuffle_transfers
    assert counters.get("shuffle.partitions", 0) >= 1
    assert counters.get("dist.jobs") == 1
    # the timeline is monotone through the phases
    tl = res.timeline
    assert (
        tl["started"] <= tl["map_done"] <= tl["exchange_done"]
        <= tl["reduce_done"] <= tl["merge_done"]
    )


def test_width_one_runs_without_exchange():
    bed, sd_path, inp = _bed()
    eng = DistributedEngine(bed.cluster)
    res = bed.run(eng.run(_job(sd_path, n_shards=1), timeout=_TIMEOUT))
    assert res.n_shards == 1
    assert res.shuffle_bytes == 0 and res.shuffle_transfers == 0


def test_engine_restricted_to_explicit_nodes():
    bed, sd_path, inp = _bed()
    eng = DistributedEngine(bed.cluster)
    res = bed.run(eng.run(_job(sd_path), nodes=["sd1", "sd3"], timeout=_TIMEOUT))
    assert set(res.shard_nodes) == {"sd1", "sd3"}


def test_engine_only_uses_nodes_holding_a_replica():
    # stage on 2 of the 4 nodes: shards must not land on the bare ones
    bed, sd_path, inp = _bed(n_replicas=2)
    eng = DistributedEngine(bed.cluster)
    res = bed.run(eng.run(_job(sd_path), timeout=_TIMEOUT))
    assert set(res.shard_nodes) <= {"sd0", "sd1"}


# -- faults ------------------------------------------------------------------


def test_shuffle_chaos_plan_absorbed_in_place():
    bed, sd_path, inp = _bed()
    eng = DistributedEngine(bed.cluster)
    clean = bed.run(eng.run(_job(sd_path), timeout=_TIMEOUT))

    bed2, path2, _ = _bed()
    injector = bed2.sim.install_faults(distributed_chaos_plan(0))
    eng2 = DistributedEngine(bed2.cluster)
    res = bed2.run(eng2.run(_job(path2), timeout=_TIMEOUT))
    assert pickle.dumps(res.output) == pickle.dumps(clean.output)
    # every rule fired, yet the bounded in-place retry absorbed them all
    assert injector.fired_by_site().get("shuffle.exchange", 0) == 3
    assert eng2.restarts == 0 and res.attempts == 1
    counters = bed2.sim.obs.metrics.snapshot()["counters"]
    assert counters.get("retry.shuffle", 0) >= 1


def test_killed_shard_restarts_on_survivors():
    bed, sd_path, inp = _bed()
    eng = DistributedEngine(bed.cluster)
    clean = bed.run(eng.run(_job(sd_path), timeout=_TIMEOUT))
    victim = clean.merge_node
    # mid-map: the victim dies before committing its map artifact, so its
    # shard is the one thing re-run — on a survivor
    kill_at = clean.timeline["map_done"] * 0.5

    bed2, path2, _ = _bed()
    # speculation off: otherwise a duplicate map absorbs the kill before
    # the partial-restart machinery (under test here) ever fires
    eng2 = DistributedEngine(
        bed2.cluster, speculation=SpeculationPolicy(enabled=False)
    )

    def killer():
        yield bed2.sim.timeout(kill_at)
        bed2.cluster.sd_daemons[victim].kill()

    bed2.sim.spawn(killer(), name="killer")
    res = bed2.run(eng2.run(_job(path2), timeout=5.0))
    assert pickle.dumps(res.output) == pickle.dumps(clean.output)
    # surviving map artifacts are reused: same attempt, partial restart only
    assert res.attempts == 1
    assert eng2.partial_restarts >= 1 and eng2.full_restarts == 0
    assert victim not in res.shard_nodes
    assert res.recovery["partial_restarts"] >= 1
    assert res.recovery["failures"]


def test_killed_shard_legacy_whole_job_restart():
    """partial_restart=False keeps the PR-7 contract: restart from scratch."""
    bed, sd_path, inp = _bed()
    eng = DistributedEngine(bed.cluster)
    clean = bed.run(eng.run(_job(sd_path), timeout=_TIMEOUT))
    victim = clean.merge_node
    kill_at = clean.timeline["map_done"] + 1e-3

    bed2, path2, _ = _bed()
    eng2 = DistributedEngine(bed2.cluster, partial_restart=False)

    def killer():
        yield bed2.sim.timeout(kill_at)
        bed2.cluster.sd_daemons[victim].kill()

    bed2.sim.spawn(killer(), name="killer")
    res = bed2.run(eng2.run(_job(path2), timeout=5.0))
    assert pickle.dumps(res.output) == pickle.dumps(clean.output)
    assert res.attempts == 2 and eng2.full_restarts == 1
    assert victim not in res.shard_nodes
    # the committed attempt cleaned up the failed attempt's shuffle dirs
    base, _, _ = res.job_id.rpartition("a")
    stale = f"/export/shuffle/{base}a0"
    for node in bed2.cluster.sd_nodes:
        assert not node.fs.vfs.exists(stale)


def test_whole_fleet_dead_raises_distributed_job_error():
    bed, sd_path, inp = _bed()
    for name in list(bed.cluster.sd_daemons):
        bed.cluster.sd_daemons[name].kill()
    eng = DistributedEngine(bed.cluster, max_attempts=2)

    def go():
        try:
            yield eng.run(_job(sd_path), timeout=1.0)
        except DistributedJobError as exc:
            return exc
        raise AssertionError("expected DistributedJobError")

    exc = bed.run(go())
    assert isinstance(exc, DistributedJobError)
    assert exc.timed_out  # dead daemons are only detectable by deadline
