"""Edge cases of the offload engine and scatter internals."""

from __future__ import annotations

import pytest

from repro.cluster import Testbed
from repro.core import DataJob, OffloadEngine, Placement
from repro.core.offload import _spec_for
from repro.errors import OffloadError
from repro.units import MB
from repro.workloads import text_input


@pytest.fixture()
def bed():
    return Testbed(seed=61)


def test_host_path_requires_export_resident_input(bed):
    engine = OffloadEngine(bed.cluster)
    job = DataJob(app="wordcount", input_path="/somewhere/else", input_size=MB(10))

    def go():
        yield engine.run(
            job, Placement(node=bed.host.name, offload=False, reason="test")
        )

    with pytest.raises(OffloadError, match="not under the SD export"):
        bed.run(go())


def test_offload_to_unknown_channel_rejected(bed):
    engine = OffloadEngine(bed.cluster)
    job = DataJob(app="wordcount", input_path="/export/data/x", input_size=MB(10))

    def go():
        yield engine.run(job, Placement(node="sd9", offload=True, reason="test"))

    with pytest.raises(OffloadError, match="channel"):
        bed.run(go())


def test_spec_for_unknown_app():
    with pytest.raises(OffloadError):
        _spec_for(DataJob(app="sorting", input_path="/export/x", input_size=1))


def test_spec_for_matmul_uses_n_param():
    spec = _spec_for(
        DataJob(app="matmul", input_path="/export/x", input_size=1, params={"n": 256})
    )
    assert spec.profile.n == 256


def test_inflight_tracking_returns_to_zero(bed):
    inp = text_input("/data/f", MB(100), payload_bytes=4_000, seed=61)
    _s, _h, sd_path = bed.stage_on_sd("f", inp)
    engine = OffloadEngine(bed.cluster)
    job = DataJob(app="wordcount", input_path=sd_path, input_size=MB(100), mode="parallel")

    def go():
        proc = engine.run(job, Placement(node="sd0", offload=True, reason="t"))
        # while in flight, the counter is up
        assert engine.inflight.get("sd0") == 1
        yield proc

    bed.run(go())
    assert engine.inflight["sd0"] == 0
    assert engine.offloaded == 1


def test_inflight_decrements_on_failure(bed):
    bed.cluster.sd_daemons["sd0"].inject_module_crash("wordcount", 1)
    inp = text_input("/data/f", MB(50), payload_bytes=2_000, seed=62)
    _s, _h, sd_path = bed.stage_on_sd("f", inp)
    engine = OffloadEngine(bed.cluster)
    job = DataJob(app="wordcount", input_path=sd_path, input_size=MB(50), mode="parallel")

    def go():
        try:
            yield engine.run(job, Placement(node="sd0", offload=True, reason="t"))
        except Exception:
            pass

    bed.run(go())
    assert engine.inflight["sd0"] == 0
