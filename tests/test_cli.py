"""Tests for the `python -m repro` experiment CLI."""

from __future__ import annotations

import pytest

from repro.__main__ import main


def test_table1_command(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "TABLE I" in out
    assert "Intel Core2 Quad Q9400" in out
    assert out.count("Celeron") == 3


def test_single_command(capsys):
    assert main(["single", "wordcount", "300", "--platform", "duo"]) == 0
    out = capsys.readouterr().out
    assert "wordcount 300MB on duo" in out
    assert "fragments" in out


def test_single_oom_reported(capsys):
    assert main(["single", "wordcount", "1750", "--approach", "parallel"]) == 0
    out = capsys.readouterr().out
    assert "not supported" in out


def test_pair_command(capsys):
    assert main(["pair", "mcsd", "stringmatch", "500"]) == 0
    out = capsys.readouterr().out
    assert "makespan" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["fig99"])


def test_bad_choice_rejected():
    with pytest.raises(SystemExit):
        main(["single", "sorting", "100"])
