"""Grand integration: the full system under a realistic mixed workload.

One scenario, everything at once: a 2-SD Table I cluster with SMB routine
traffic, an adaptive-placement McSD runtime running a burst of mixed
programs (MM on the host + WC/SM/dbselect offloads), a scatter-gather
query across both storage nodes, and a fault injected mid-run that the
fault-tolerance layer must absorb — all while every result stays exactly
correct and every conservation invariant holds.
"""

from __future__ import annotations

import pytest

from repro.cluster import Testbed
from repro.config import table1_cluster
from repro.core import (
    AdaptivePolicy,
    ComputeJob,
    DataJob,
    FaultTolerantInvoker,
    McSDProgram,
    McSDRuntime,
    ScatterGatherEngine,
    ScatterJob,
)
from repro.apps.dbselect import make_dbselect_spec
from repro.smartfam.registry import mapreduce_module, standard_registry
from repro.units import MB
from repro.workloads import encrypted_input, text_input
from repro.workloads.records import records_input


@pytest.fixture(scope="module")
def world():
    """Build the scenario once; every test inspects the same completed run."""
    registry = standard_registry()
    registry.register("dbselect", mapreduce_module(lambda p: make_dbselect_spec()))
    bed = Testbed(
        config=table1_cluster(n_sd=2, seed=77),
        registry=registry,
        with_smb=True,
        seed=77,
    )

    # datasets
    wc_inp = text_input("/data/wc", MB(700), payload_bytes=12_000, seed=77)
    _s, _h, wc_path = bed.stage_on_sd("wc", wc_inp)
    bed.stage(bed.cluster.sd(1), wc_path, wc_inp)  # replica for failover

    sm_inp, sm_keys, sm_planted = encrypted_input(
        "/data/sm", MB(500), payload_bytes=10_000, hit_rate=0.1, seed=78
    )
    _s, _h, sm_path = bed.stage_on_sd("sm", sm_inp, sd_index=1)

    db_inp = records_input("/data/db", MB(600), payload_bytes=12_000, seed=79)
    _s, _h, db_path = bed.stage_on_sd("db", db_inp)

    big_inp = text_input("/data/big", MB(1600), payload_bytes=12_000, seed=80)
    shards = bed.stage_shards("big", big_inp)

    # sd0's daemon flakes once mid-run
    bed.cluster.sd_daemons["sd0"].inject_module_crash("wordcount", 1)

    runtime = McSDRuntime(bed.cluster, policy=AdaptivePolicy(tolerance=1.0))
    ft = FaultTolerantInvoker(bed.cluster, timeout=90.0, max_retries=0)
    scatter = ScatterGatherEngine(bed.cluster)

    results: dict = {}

    def driver():
        t0 = bed.sim.now
        # a WC offload that will hit the injected crash and fail over
        p_wc = ft.run(
            DataJob(app="wordcount", input_path=wc_path, input_size=wc_inp.size),
            replicas=["sd1"],
        )
        # a mixed program: MM on the host + SM offloaded (data on sd1)
        p_prog = runtime.submit(
            McSDProgram(
                name="mix",
                host_part=ComputeJob.matmul(n=1024, payload_n=32),
                sd_part=DataJob(
                    app="stringmatch",
                    input_path=sm_path,
                    input_size=sm_inp.size,
                    mode="parallel",
                    params=sm_inp.params,
                    sd_node="sd1",
                ),
            )
        )
        # a database query, partition-enabled on sd0
        p_db = bed.cluster.channel("sd0").invoke(
            "dbselect",
            {
                "input_path": db_path,
                "input_size": db_inp.size,
                "mode": "partitioned",
                "app": {"threshold": 100.0, "agg": "sum"},
            },
        )
        # a scatter-gather across both SD nodes
        p_scatter = scatter.run(ScatterJob(app="wordcount", shards=shards))
        gathered = yield bed.sim.all_of([p_wc, p_prog, p_db, p_scatter])
        results["wc"] = gathered[p_wc]
        results["prog"] = gathered[p_prog]
        results["db"] = gathered[p_db]
        results["scatter"] = gathered[p_scatter]
        results["makespan"] = bed.sim.now - t0

    bed.run(driver())
    return bed, results, {
        "wc_inp": wc_inp,
        "sm_planted": sm_planted,
        "db_inp": db_inp,
        "big_inp": big_inp,
        "ft": ft,
    }


def test_everything_completed(world):
    bed, results, ctx = world
    assert results["makespan"] > 0
    assert all(k in results for k in ("wc", "prog", "db", "scatter"))


def test_wordcount_failed_over_and_is_exact(world):
    bed, results, ctx = world
    wc = results["wc"]
    assert wc.where == "sd1"  # crashed on sd0, recovered on the replica
    trail = ctx["ft"].history[0]
    assert trail[0].outcome == "error" and trail[-1].outcome == "ok"
    assert sum(v for _, v in wc.output) == len(ctx["wc_inp"].payload_bytes.split())


def test_mixed_program_results(world):
    bed, results, ctx = world
    prog = results["prog"]
    assert prog.host_result.where == "host"
    assert prog.sd_result.where in ("sd1", "host")  # adaptive may shed
    assert sum(v for _, v in prog.sd_result.output) == ctx["sm_planted"]


def test_db_query_matches_direct_scan(world):
    bed, results, ctx = world
    truth: dict[bytes, float] = {}
    for line in ctx["db_inp"].payload_bytes.splitlines():
        key, _, raw = line.partition(b",")
        v = float(raw)
        if v >= 100.0:
            truth[key] = truth.get(key, 0.0) + v
    got = {k: round(v, 6) for k, v in results["db"].output}
    assert got == {k: round(v, 6) for k, v in truth.items()}


def test_scatter_used_both_sd_nodes(world):
    bed, results, ctx = world
    scatter = results["scatter"]
    assert {r.where for r in scatter.shard_results} == {"sd0", "sd1"}
    assert sum(v for _, v in scatter.output) == len(
        ctx["big_inp"].payload_bytes.split()
    )


def test_conservation_invariants_after_the_storm(world):
    bed, results, ctx = world
    # memory fully returned on every node
    for node in bed.cluster.nodes.values():
        assert node.memory.used == 0, node.name
        assert node.cpu.n_active == 0, node.name
    # SMB really ran and never touched the SD nodes
    assert bed.cluster.smb.messages_sent > 0
    for f in bed.cluster.fabric.flows:
        if f.src.startswith("sd") and f.dst.startswith("sd"):
            pytest.fail(f"unexpected SD-to-SD flow {f}")


def test_deterministic_replay(world):
    """The whole storm replays to the identical makespan."""
    bed, results, ctx = world

    def rebuild():
        registry = standard_registry()
        registry.register(
            "dbselect", mapreduce_module(lambda p: make_dbselect_spec())
        )
        bed2 = Testbed(
            config=table1_cluster(n_sd=2, seed=77),
            registry=registry,
            with_smb=True,
            seed=77,
        )
        inp = text_input("/data/wc", MB(700), payload_bytes=12_000, seed=77)
        _s, _h, path = bed2.stage_on_sd("wc", inp)

        def go():
            t0 = bed2.sim.now
            yield bed2.cluster.channel().invoke(
                "wordcount",
                {"input_path": path, "input_size": inp.size, "mode": "partitioned"},
            )
            return bed2.sim.now - t0

        return bed2.run(go())

    assert rebuild() == rebuild()
