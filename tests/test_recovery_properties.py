"""Property: fine-grained recovery never changes a distributed answer.

The PR-9 correctness claim as a hypothesis property: for any random
schedule of one or two faults — node kills and stalls landing in the
map, exchange, or reduce phase — the partial-restart engine's output is
byte-identical to the clean run's, with ZERO full restarts and a single
attempt, because surviving shuffle artifacts are reused and only the
dead node's work is re-derived.
"""

from __future__ import annotations

import pickle

from hypothesis import given, settings, strategies as st

from repro.apps.matmul import assemble_product, matmul_input
from repro.cluster.testbed import Testbed
from repro.config import table1_cluster
from repro.core import DistributedEngine, DistributedJob
from repro.faults import FaultPlan, FaultRule
from repro.phoenix import InputSpec
from repro.units import MB

_TIMEOUT = 3600.0
_WORDS = b"alpha beta gamma delta with z " * 120


def _flat_pairs(out: object) -> list:
    pairs: list = []

    def walk(x: object) -> None:
        if isinstance(x, tuple) and len(x) == 2:
            pairs.append(x)
        elif isinstance(x, list):
            for y in x:
                walk(y)

    walk(out)
    return pairs


def _canonical(app: str, output: object) -> bytes:
    if app == "matmul":
        return pickle.dumps(assemble_product(_flat_pairs(output)).tolist())
    return pickle.dumps(output)


def _inp(app: str) -> tuple[InputSpec, dict]:
    if app == "matmul":
        return matmul_input("/data/prop", 64, payload_n=16, seed=1), {"n": 64}
    return InputSpec(path="/data/prop", size=MB(8), payload=_WORDS), {}


def _bed():
    return Testbed(config=table1_cluster(n_sd=4, seed=0), seed=0)


def _job(app: str, sd_path: str, inp: InputSpec, params: dict) -> DistributedJob:
    return DistributedJob(
        app=app, input_path=sd_path, input_size=inp.size, n_shards=4,
        fragment_bytes=(inp.size + 3) // 4, params=params,
    )


def _kill_time(phase: str, timeline: dict) -> float:
    if phase == "map":
        return timeline["map_done"] * 0.5
    if phase == "exchange":
        return (timeline["map_done"] + timeline["exchange_done"]) / 2
    lo = timeline.get("exchange_done", timeline["map_done"])
    return (lo + timeline.get("reduce_done", timeline["merge_done"])) / 2


def _delay_rule(phase: str, victim: str) -> FaultRule:
    if phase == "exchange":
        return FaultRule(
            "shuffle.exchange", action="delay", count=1, delay=0.2,
            where={"src": victim},
        )
    module = "dist_map" if phase == "map" else "dist_reduce"
    return FaultRule(
        "fam.dispatch", action="delay", count=1, delay=0.4,
        where={"module": module, "node": victim},
    )


fault_st = st.tuples(
    st.sampled_from(["map", "exchange", "reduce"]),
    st.sampled_from(["kill", "delay"]),
    st.integers(min_value=0, max_value=3),
)


@given(
    app=st.sampled_from(["wordcount", "stringmatch", "matmul"]),
    faults=st.lists(fault_st, min_size=1, max_size=2),
)
@settings(max_examples=8, deadline=None)
def test_property_partial_restart_is_transparent(app, faults):
    inp, params = _inp(app)

    bed = _bed()
    _, sd_path = bed.stage_replicated("prop", inp)
    eng = DistributedEngine(bed.cluster)
    clean = bed.run(eng.run(_job(app, sd_path, inp, params), timeout=_TIMEOUT))
    want = _canonical(app, clean.output)
    nodes = list(clean.shard_nodes)

    # keep at least two survivors: cap the distinct kill victims at two
    kills: list[tuple[float, str]] = []
    rules: list[FaultRule] = []
    for phase, kind, vi in faults:
        victim = nodes[vi % len(nodes)]
        if kind == "kill":
            if len({v for _, v in kills} | {victim}) > 2:
                continue
            kills.append((_kill_time(phase, clean.timeline), victim))
        else:
            rules.append(_delay_rule(phase, victim))

    bed2 = _bed()
    _, path2 = bed2.stage_replicated("prop", inp)
    if rules:
        bed2.sim.install_faults(FaultPlan(rules=tuple(rules)))
    eng2 = DistributedEngine(bed2.cluster)

    def killer(at: float, victim: str):
        yield bed2.sim.timeout(at)
        bed2.cluster.sd_daemons[victim].kill()

    for at, victim in kills:
        bed2.sim.spawn(killer(at, victim), name=f"kill:{victim}")

    res = bed2.run(eng2.run(_job(app, path2, inp, params), timeout=5.0))
    assert _canonical(app, res.output) == want
    # surviving artifacts were reused: no whole-job restart, ever.  A kill
    # may prove harmless (the victim's work was already durable and it
    # owned nothing downstream) or be absorbed by speculation; every other
    # schedule recovers through a partial restart — never a full one.
    assert eng2.full_restarts == 0
    assert res.attempts == 1
