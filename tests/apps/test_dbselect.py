"""Tests for the database-operation module (filtered aggregation)."""

from __future__ import annotations

import pytest

from repro.apps.dbselect import db_map, db_merge, db_reduce, make_dbselect_spec
from repro.cluster import Testbed
from repro.errors import WorkloadError
from repro.phoenix import PhoenixRuntime
from repro.partition import ExtendedPhoenixRuntime
from repro.phoenix.sort import Combiner
from repro.smartfam.registry import mapreduce_module, standard_registry
from repro.units import MB
from repro.workloads.records import records_input


def scan_truth(payload: bytes, threshold: float, agg: str = "sum"):
    groups: dict[bytes, list[float]] = {}
    for line in payload.splitlines():
        key, _, raw = line.partition(b",")
        if not raw:
            continue
        v = float(raw)
        if v >= threshold:
            groups.setdefault(key, []).append(v)
    if agg == "sum":
        return {k: sum(v) for k, v in groups.items()}
    if agg == "count":
        return {k: float(len(v)) for k, v in groups.items()}
    if agg == "max":
        return {k: max(v) for k, v in groups.items()}
    return {k: min(v) for k, v in groups.items()}


def test_db_map_filters_and_parses():
    c = Combiner(None)
    data = b"a,10\nb,5\na,20\nbroken\nc,not-a-number\n"
    db_map(data, c.emit, {"threshold": 8.0})
    assert dict(c.pairs()) == {b"a": [10.0, 20.0]}


def test_db_reduce_aggregates():
    assert db_reduce(b"k", [1.0, 2.0, 3.0], {"agg": "sum"}) == 6.0
    assert db_reduce(b"k", [1.0, 2.0], {"agg": "count"}) == 2.0
    assert db_reduce(b"k", [1.0, 5.0], {"agg": "max"}) == 5.0
    assert db_reduce(b"k", [1.0, 5.0], {"agg": "min"}) == 1.0
    with pytest.raises(WorkloadError):
        db_reduce(b"k", [1.0], {"agg": "median"})


def test_db_merge_reaggregates():
    parts = [[(b"a", 5.0), (b"b", 1.0)], [(b"a", 3.0)]]
    assert dict(db_merge(parts, {"agg": "sum"})) == {b"a": 8.0, b"b": 1.0}
    assert dict(db_merge(parts, {"agg": "max"})) == {b"a": 5.0, b"b": 1.0}


@pytest.mark.parametrize("agg", ["sum", "count", "max"])
def test_dbselect_end_to_end_matches_scan(agg):
    bed = Testbed(seed=13)
    inp = records_input("/data/t", MB(400), payload_bytes=20_000, seed=13)
    inp.params.update({"threshold": 120.0, "agg": agg})
    sd_view, _h, _p = bed.stage_on_sd("t", inp)
    rt = PhoenixRuntime(bed.sd, bed.config.phoenix)

    def go():
        res = yield rt.run(make_dbselect_spec(), sd_view, mode="parallel")
        return res.output

    output = bed.run(go())
    truth = scan_truth(inp.payload_bytes, 120.0, agg)
    assert {k: round(v, 9) for k, v in output} == {
        k: round(v, 9) for k, v in truth.items()
    }


def test_dbselect_partitioned_equals_whole():
    bed = Testbed(seed=14)
    inp = records_input("/data/t", MB(900), payload_bytes=30_000, seed=14)
    inp.params.update({"threshold": 50.0, "agg": "sum"})
    sd_view, _h, _p = bed.stage_on_sd("t", inp)
    rt = PhoenixRuntime(bed.sd, bed.config.phoenix)
    ext = ExtendedPhoenixRuntime(bed.sd, bed.config.phoenix)

    def go():
        whole = yield rt.run(make_dbselect_spec(), sd_view, mode="parallel")
        parts = yield ext.run(make_dbselect_spec(), sd_view, fragment_bytes=MB(300))
        return whole.output, parts.output, parts.n_fragments

    whole_out, part_out, nf = bed.run(go())
    assert nf == 3
    assert {k: round(v, 6) for k, v in whole_out} == {
        k: round(v, 6) for k, v in part_out
    }


def test_dbselect_as_preloaded_module():
    registry = standard_registry()
    registry.register("dbselect", mapreduce_module(lambda p: make_dbselect_spec()))
    bed = Testbed(registry=registry, seed=15)
    inp = records_input("/data/t", MB(300), payload_bytes=10_000, seed=15)
    _sd, _h, sd_path = bed.stage_on_sd("t", inp)

    def go():
        res = yield bed.cluster.channel().invoke(
            "dbselect",
            {
                "input_path": sd_path,
                "input_size": MB(300),
                "mode": "parallel",
                "app": {"threshold": 200.0},
            },
        )
        return res.output

    output = bed.run(go())
    truth = scan_truth(inp.payload_bytes, 200.0)
    assert {k: round(v, 6) for k, v in output} == {
        k: round(v, 6) for k, v in truth.items()
    }
    # the new module's log file was created at preload time
    assert bed.sd.fs.exists("/export/sdlog/dbselect.log")
