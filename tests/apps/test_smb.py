"""Tests for the SMB routine-work traffic generator."""

from __future__ import annotations

import pytest

from repro.apps.smb import SMBTraffic
from repro.cluster import Testbed
from repro.errors import ConfigError
from repro.units import KB, msec


@pytest.fixture()
def bed():
    return Testbed(seed=71)


def run_for(bed, seconds):
    def idle():
        yield bed.sim.timeout(seconds)

    bed.run(idle())


def test_ring_pattern_covers_all_participants(bed):
    participants = [bed.host, *bed.cluster.compute_nodes]
    smb = SMBTraffic(participants, message_bytes=KB(16), interval=msec(10))
    smb.start()
    run_for(bed, 1.0)
    smb.stop()
    srcs = {f.src for f in bed.cluster.fabric.flows if f.nbytes == KB(16)}
    dsts = {f.dst for f in bed.cluster.fabric.flows if f.nbytes == KB(16)}
    names = {n.name for n in participants}
    assert srcs == names and dsts == names


def test_start_is_idempotent(bed):
    smb = SMBTraffic([bed.host, bed.cluster.compute_nodes[0]])
    smb.start()
    smb.start()  # second start must not double the senders
    run_for(bed, 0.5)
    smb.stop()
    first = smb.messages_sent
    # one sender per participant: with interval ~20ms over 0.5s, roughly
    # 2 * 25 messages; a doubled start would have sent ~2x that
    assert first < 80


def test_stop_halts_traffic(bed):
    smb = SMBTraffic([bed.host, bed.cluster.compute_nodes[0]], interval=msec(10))
    smb.start()
    run_for(bed, 0.5)
    smb.stop()
    at_stop = smb.messages_sent
    run_for(bed, 1.0)
    assert smb.messages_sent <= at_stop + 2  # at most in-flight rounds


def test_jitter_bounds(bed):
    smb = SMBTraffic(
        [bed.host, bed.cluster.compute_nodes[0]],
        interval=msec(20),
        jitter=5.0,  # clamped to 1.0
    )
    assert smb.jitter == 1.0


def test_messages_are_seeded_deterministic():
    def run():
        bed = Testbed(with_smb=True, seed=99)

        def idle():
            yield bed.sim.timeout(2.0)

        bed.run(idle())
        return bed.cluster.smb.messages_sent

    assert run() == run()


def test_validation(bed):
    with pytest.raises(ConfigError):
        SMBTraffic([bed.host])
    with pytest.raises(ConfigError):
        SMBTraffic([bed.host, bed.sd], interval=0)
