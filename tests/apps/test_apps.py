"""Unit tests for the three benchmark applications' callbacks and profiles."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.matmul import (
    MatMulProfile,
    assemble_product,
    make_matmul_spec,
    matmul_input,
)
from repro.apps.stringmatch import SM_PROFILE, make_stringmatch_spec, sm_map
from repro.apps.wordcount import WC_PROFILE, make_wordcount_spec, wc_map, wc_reduce
from repro.errors import WorkloadError
from repro.phoenix.sort import Combiner
from repro.units import MB


# ------------------------------------------------------------------ word count


def test_wc_map_emits_each_word():
    c = Combiner(None)
    wc_map(b"a b a c", c.emit, {})
    assert dict(c.pairs()) == {b"a": [1, 1], b"b": [1], b"c": [1]}


def test_wc_map_accepts_str():
    c = Combiner(lambda a, b: a + b)
    wc_map("x y x", c.emit, {})
    assert dict(c.pairs()) == {"x": 2, "y": 1}


def test_wc_map_rejects_non_text():
    with pytest.raises(TypeError):
        wc_map(123, lambda k, v: None, {})


def test_wc_reduce_sums():
    assert wc_reduce(b"w", [1, 1, 1], {}) == 3


def test_wc_profile_footprint_is_3x():
    assert WC_PROFILE.footprint(MB(500)) == MB(1500)


def test_wc_spec_wiring():
    spec = make_wordcount_spec()
    assert spec.needs_sort and spec.sort_output
    assert spec.reduce_fn is not None and spec.merge_fn is not None


# ------------------------------------------------------------------ string match


def test_sm_map_counts_matching_lines():
    c = Combiner(lambda a, b: a + b)
    data = b"hello KEY there\nno match\nKEY again\n"
    sm_map(data, c.emit, {"keys": [b"KEY"]})
    assert dict(c.pairs()) == {b"KEY": 2}


def test_sm_map_multiple_keys_per_line():
    c = Combiner(lambda a, b: a + b)
    sm_map(b"AAA BBB\n", c.emit, {"keys": [b"AAA", b"BBB", b"CCC"]})
    assert dict(c.pairs()) == {b"AAA": 1, b"BBB": 1}


def test_sm_map_no_keys_is_noop():
    c = Combiner(None)
    sm_map(b"anything\n", c.emit, {})
    assert c.emitted == 0


def test_sm_map_accepts_str_keys_and_data():
    c = Combiner(lambda a, b: a + b)
    sm_map("find ME here", c.emit, {"keys": ["ME"]})
    assert dict(c.pairs()) == {b"ME": 1}


def test_sm_profile_footprint_is_2x():
    assert SM_PROFILE.footprint(MB(500)) == MB(1000)


def test_sm_spec_has_no_sort_or_reduce():
    spec = make_stringmatch_spec()
    assert not spec.needs_sort
    assert spec.reduce_fn is None


# ------------------------------------------------------------------ matmul


def test_mm_profile_flop_cost():
    p = MatMulProfile(n=100)
    assert p.flops == 2.0 * 100**3
    assert p.map_ops(p.input_bytes()) == pytest.approx(p.flops)
    assert p.map_ops(p.input_bytes() // 2) == pytest.approx(p.flops / 2)


def test_mm_profile_rejects_bad_n():
    with pytest.raises(WorkloadError):
        MatMulProfile(n=0)


def test_mm_input_declared_vs_payload():
    inp = matmul_input("/data/mm", n=1024, payload_n=32, seed=1)
    assert inp.size == 2 * 1024 * 1024 * 8
    a, b = inp.payload
    assert a.shape == (32, 32)


def test_mm_split_covers_all_rows():
    spec = make_matmul_spec(n=64)
    inp = matmul_input("/data/mm", n=64, payload_n=64, seed=2)
    chunks = spec.split(inp.payload, 5)
    total_rows = sum(c[1].shape[0] for c in chunks)
    assert total_rows == 64
    starts = [c[0] for c in chunks]
    assert starts == sorted(starts)


def test_mm_product_matches_numpy():
    spec = make_matmul_spec(n=48)
    inp = matmul_input("/data/mm", n=48, payload_n=48, seed=3)
    a, b = inp.payload
    c = Combiner(None)
    for chunk in spec.split(inp.payload, 4):
        spec.map_fn(chunk, c.emit, {})
    pairs = [(k, v[0] if isinstance(v, list) else v) for k, v in c.pairs()]
    product = assemble_product(pairs)
    np.testing.assert_allclose(product, a @ b, rtol=1e-10)


def test_mm_payload_capped_at_n():
    inp = matmul_input("/data/mm", n=16, payload_n=64, seed=1)
    a, _ = inp.payload
    assert a.shape == (16, 16)
