"""Unit tests for the processor-sharing CPU model.

The PS model is the analytical heart of the multicore claims, so these
tests pin its exact fluid semantics: rates, sharing, arrivals, slowdown.
"""

from __future__ import annotations

import pytest

from repro.config import CPUSpec, DUO_E4400, QUAD_Q9400
from repro.errors import SimulationError
from repro.hardware import ProcessorSharingCPU
from repro.sim import Simulator

GHZ2 = CPUSpec("ref-duo", cores=2, clock_ghz=2.0)  # 2e9 ops/s per core


def run_tasks(spec, tasks):
    """tasks: list of (start, ops). Returns dict name -> (start, end)."""
    sim = Simulator()
    cpu = ProcessorSharingCPU(sim, spec)
    out = {}

    def t(sim, cpu, name, start, ops):
        if start:
            yield sim.timeout(start)
        t0 = sim.now
        yield cpu.submit(ops, name)
        out[name] = (t0, sim.now)

    for i, (start, ops) in enumerate(tasks):
        sim.spawn(t(sim, cpu, f"t{i}", start, ops))
    sim.run()
    return sim, cpu, out


def test_single_task_runs_at_full_core_speed():
    _, _, out = run_tasks(GHZ2, [(0.0, 2.0e9)])
    assert out["t0"] == (0.0, pytest.approx(1.0))


def test_tasks_up_to_cores_run_concurrently_at_full_speed():
    _, _, out = run_tasks(GHZ2, [(0.0, 2.0e9), (0.0, 2.0e9)])
    assert out["t0"][1] == pytest.approx(1.0)
    assert out["t1"][1] == pytest.approx(1.0)


def test_oversubscription_shares_cores_equally():
    # 4 equal tasks on 2 cores -> each at half a core -> 2x elapsed
    _, _, out = run_tasks(GHZ2, [(0.0, 2.0e9)] * 4)
    for name in out:
        assert out[name][1] == pytest.approx(2.0)


def test_late_arrival_dynamics():
    # t0: 4e9 ops alone from 0; t1: 2e9 ops arriving at 1.0.
    # With 2 cores both always get a full core: t0 ends at 2, t1 at 2.
    _, _, out = run_tasks(GHZ2, [(0.0, 4.0e9), (1.0, 2.0e9)])
    assert out["t0"][1] == pytest.approx(2.0)
    assert out["t1"][1] == pytest.approx(2.0)


def test_late_arrival_with_contention():
    # Single-core CPU: t0 needs 2s alone; t1 (1s alone) arrives at 1.0.
    # From t=1 they share: each at 0.5 core.
    # t0 remaining 1e9 at t=1 -> needs 2e9... rates: 1e9/2=0.5e9 ops/s each.
    # t1 finishes its 1e9 at t=3? t0 also has 1e9 left -> both at t=3.
    uni = CPUSpec("uni", cores=1, clock_ghz=1.0)
    _, _, out = run_tasks(uni, [(0.0, 2.0e9), (1.0, 1.0e9)])
    assert out["t0"][1] == pytest.approx(3.0)
    assert out["t1"][1] == pytest.approx(3.0)


def test_work_conservation():
    # Total delivered core-seconds == total ops / per-core rate.
    sim, cpu, out = run_tasks(GHZ2, [(0.0, 2.0e9), (0.5, 3.0e9), (1.0, 1.0e9)])
    total_ops = 2.0e9 + 3.0e9 + 1.0e9
    assert cpu.busy_core_seconds == pytest.approx(total_ops / 2.0e9, rel=1e-9)


def test_zero_ops_completes_immediately():
    sim = Simulator()
    cpu = ProcessorSharingCPU(sim, GHZ2)
    ev = cpu.submit(0.0, "empty")
    assert ev.triggered
    assert cpu.completed_tasks == 1


def test_invalid_ops_rejected():
    sim = Simulator()
    cpu = ProcessorSharingCPU(sim, GHZ2)
    with pytest.raises(SimulationError):
        cpu.submit(-1.0)
    with pytest.raises(SimulationError):
        cpu.submit(float("nan"))


def test_slowdown_scales_elapsed_time():
    sim = Simulator()
    cpu = ProcessorSharingCPU(sim, GHZ2)
    cpu.set_slowdown(2.0)
    out = {}

    def t(sim, cpu):
        yield cpu.submit(2.0e9, "slowed")
        out["end"] = sim.now

    sim.spawn(t(sim, cpu))
    sim.run()
    assert out["end"] == pytest.approx(2.0)


def test_slowdown_change_midflight():
    sim = Simulator()
    cpu = ProcessorSharingCPU(sim, GHZ2)
    out = {}

    def t(sim, cpu):
        yield cpu.submit(2.0e9, "task")
        out["end"] = sim.now

    def slower(sim, cpu):
        yield sim.timeout(0.5)
        cpu.set_slowdown(2.0)

    sim.spawn(t(sim, cpu))
    sim.spawn(slower(sim, cpu))
    sim.run()
    # 0.5s at full speed (1e9 done), remaining 1e9 at half speed -> +1.0s
    assert out["end"] == pytest.approx(1.5)


def test_slowdown_below_one_rejected():
    sim = Simulator()
    cpu = ProcessorSharingCPU(sim, GHZ2)
    with pytest.raises(SimulationError):
        cpu.set_slowdown(0.5)


def test_cancel_releases_capacity():
    sim = Simulator()
    cpu = ProcessorSharingCPU(sim, CPUSpec("uni", cores=1, clock_ghz=1.0))
    out = {}

    def winner(sim, cpu):
        yield sim.timeout(0.0)
        ev = cpu.submit(1.0e9, "w")
        yield ev
        out["end"] = sim.now

    victim_ev = cpu.submit(10.0e9, "victim")

    def canceller(sim, cpu, ev):
        yield sim.timeout(1.0)
        assert cpu.cancel(ev)

    sim.spawn(winner(sim, cpu))
    sim.spawn(canceller(sim, cpu, victim_ev))

    def absorb(sim, ev):
        try:
            yield ev
        except SimulationError:
            out["cancelled_at"] = sim.now

    sim.spawn(absorb(sim, victim_ev))
    sim.run()
    assert out["cancelled_at"] == 1.0
    # winner: shares until t=1 (0.5e9 done), then full speed: ends at 1.5
    assert out["end"] == pytest.approx(1.5)


def test_quad_vs_duo_speed_ratio():
    # one job split into 8 equal tasks; quad should be ~(4*2.66)/(2*2.0) faster
    def total_time(spec):
        _, _, out = run_tasks(spec, [(0.0, 1.0e9)] * 8)
        return max(end for _, end in out.values())

    ratio = total_time(DUO_E4400) / total_time(QUAD_Q9400)
    assert ratio == pytest.approx((4 * 2.66) / (2 * 2.0), rel=1e-6)


def test_completion_event_value_is_elapsed_time():
    sim = Simulator()
    cpu = ProcessorSharingCPU(sim, GHZ2)
    got = {}

    def t(sim, cpu):
        elapsed = yield cpu.submit(2.0e9, "x")
        got["elapsed"] = elapsed

    sim.spawn(t(sim, cpu))
    sim.run()
    assert got["elapsed"] == pytest.approx(1.0)


def test_many_equal_tasks_finish_simultaneously():
    _, _, out = run_tasks(QUAD_Q9400, [(0.0, 1.0e9)] * 16)
    assert len({round(end, 9) for _, end in out.values()}) == 1
