"""Unit tests for the memory model: accounting, thrash curve, OOM."""

from __future__ import annotations

import pytest

from repro.config import MemoryPolicy
from repro.errors import OutOfMemoryError, SimulationError
from repro.hardware import MemoryModel
from repro.sim import Simulator
from repro.units import GiB, MB


@pytest.fixture()
def mem():
    sim = Simulator()
    return MemoryModel(sim, GiB(2), policy=MemoryPolicy())


def test_alloc_free_accounting(mem):
    a = mem.alloc(MB(100), owner="job")
    assert mem.used == MB(100)
    b = mem.alloc(MB(50), owner="job")
    assert mem.used == MB(150)
    a.free()
    assert mem.used == MB(50)
    b.free()
    assert mem.used == 0


def test_free_is_idempotent(mem):
    a = mem.alloc(MB(10))
    a.free()
    a.free()
    assert mem.used == 0


def test_context_manager_frees(mem):
    with mem.alloc(MB(10)) as a:
        assert mem.used == MB(10)
    assert a.freed
    assert mem.used == 0


def test_oom_past_ram_plus_swap(mem):
    # 2 GiB RAM, swap_factor 1.5 -> limit 5 GiB
    mem.alloc(int(GiB(2) * 2.4))
    with pytest.raises(OutOfMemoryError):
        mem.alloc(int(GiB(2) * 0.2))


def test_try_alloc_returns_none_on_oom(mem):
    assert mem.try_alloc(mem.limit + 1) is None
    assert mem.try_alloc(mem.limit) is not None


def test_would_fit(mem):
    assert mem.would_fit(mem.limit)
    assert not mem.would_fit(mem.limit + 1)


def test_negative_alloc_rejected(mem):
    with pytest.raises(SimulationError):
        mem.alloc(-1)


def test_pressure_and_peak(mem):
    a = mem.alloc(GiB(1))
    assert mem.pressure == pytest.approx(0.5)
    a.free()
    assert mem.peak_used == GiB(1)


def test_thrash_flat_below_threshold(mem):
    mem.alloc(int(GiB(2) * 0.55))
    assert mem.thrash_factor() == 1.0


def test_thrash_grows_past_threshold(mem):
    mem.alloc(int(GiB(2) * 1.2))
    f1 = mem.thrash_factor()
    assert f1 > 1.0
    mem.alloc(int(GiB(2) * 0.5))
    assert mem.thrash_factor() > f1


def test_thrash_curve_matches_policy():
    policy = MemoryPolicy(thrash_fraction=0.6, thrash_coeff=2.0, thrash_exponent=2.0)
    assert policy.thrash_factor(0.5) == 1.0
    assert policy.thrash_factor(0.6) == 1.0
    assert policy.thrash_factor(1.6) == pytest.approx(1.0 + 2.0 * 1.0**2)
    assert policy.thrash_factor(2.1) == pytest.approx(1.0 + 2.0 * 1.5**2)


def test_listener_fires_on_alloc_and_free(mem):
    seen = []
    mem.on_thrash_change(seen.append)
    a = mem.alloc(int(GiB(2) * 1.5))
    assert seen and seen[-1] > 1.0
    a.free()
    assert seen[-1] == 1.0


def test_resize_grows_and_shrinks(mem):
    a = mem.alloc(MB(100), owner="x")
    a.resize(MB(300))
    assert mem.used == MB(300)
    a.resize(MB(50))
    assert mem.used == MB(50)


def test_resize_oom_leaves_state_intact(mem):
    a = mem.alloc(MB(100))
    with pytest.raises(OutOfMemoryError):
        a.resize(mem.limit + MB(1))
    assert a.nbytes == MB(100)
    assert mem.used == MB(100)


def test_resize_freed_allocation_rejected(mem):
    a = mem.alloc(MB(10))
    a.free()
    with pytest.raises(SimulationError):
        a.resize(MB(20))


def test_usage_by_owner(mem):
    mem.alloc(MB(10), owner="wc")
    mem.alloc(MB(20), owner="wc")
    mem.alloc(MB(5), owner="mm")
    assert mem.usage_by_owner() == {"wc": MB(30), "mm": MB(5)}


def test_swap_factor_zero_means_ram_only():
    sim = Simulator()
    m = MemoryModel(sim, MB(100), policy=MemoryPolicy(swap_factor=0.0))
    m.alloc(MB(100))
    with pytest.raises(OutOfMemoryError):
        m.alloc(1)
