"""Unit tests for the disk model: service time, FIFO queueing, stats."""

from __future__ import annotations

import pytest

from repro.config import DiskSpec
from repro.errors import DiskError
from repro.hardware import DiskModel
from repro.sim import Simulator
from repro.units import MB


def make_disk(bw=80e6, seek=0.008):
    sim = Simulator()
    return sim, DiskModel(sim, DiskSpec(bandwidth=bw, seek_time=seek))


def test_service_time_formula():
    _, disk = make_disk()
    assert disk.service_time(MB(80)) == pytest.approx(0.008 + 1.0)
    assert disk.service_time(0) == pytest.approx(0.008)


def test_negative_size_rejected():
    _, disk = make_disk()
    with pytest.raises(DiskError):
        disk.service_time(-1)


def test_single_read_elapsed():
    sim, disk = make_disk()

    def proc(sim, disk):
        yield disk.read(MB(80))
        return sim.now

    p = sim.spawn(proc(sim, disk))
    sim.run()
    assert p.value == pytest.approx(1.008)
    assert disk.bytes_read == MB(80)
    assert disk.requests == 1


def test_requests_queue_fifo():
    sim, disk = make_disk(seek=0.0)
    ends = {}

    def proc(sim, disk, name, nbytes):
        yield disk.read(nbytes)
        ends[name] = sim.now

    sim.spawn(proc(sim, disk, "a", MB(80)))  # 1s
    sim.spawn(proc(sim, disk, "b", MB(40)))  # 0.5s, queued behind a
    sim.run()
    assert ends["a"] == pytest.approx(1.0)
    assert ends["b"] == pytest.approx(1.5)


def test_seek_charged_per_request():
    sim, disk = make_disk(seek=0.01)
    # 10 small requests: 10 seeks dominate
    def proc(sim, disk):
        for _ in range(10):
            yield disk.read(0)
        return sim.now

    p = sim.spawn(proc(sim, disk))
    sim.run()
    assert p.value == pytest.approx(0.1)


def test_write_stats_separate_from_read():
    sim, disk = make_disk()

    def proc(sim, disk):
        yield disk.write(MB(10))
        yield disk.read(MB(20))

    sim.spawn(proc(sim, disk))
    sim.run()
    assert disk.bytes_written == MB(10)
    assert disk.bytes_read == MB(20)
    assert disk.requests == 2


def test_busy_time_accumulates():
    sim, disk = make_disk(seek=0.0)

    def proc(sim, disk):
        yield disk.read(MB(160))

    sim.spawn(proc(sim, disk))
    sim.run()
    assert disk.busy_time == pytest.approx(2.0)
