"""Unit tests for Signal, Semaphore, Barrier, Latch."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim import Barrier, Latch, Semaphore, Signal, Simulator


def test_signal_wakes_all_current_waiters():
    sim = Simulator()
    sig = Signal(sim)
    woken = []

    def waiter(sim, sig, name):
        v = yield sig.wait()
        woken.append((name, v, sim.now))

    for n in ("a", "b"):
        sim.spawn(waiter(sim, sig, n))

    def firer(sim, sig):
        yield sim.timeout(2)
        n = sig.fire("pulse")
        return n

    p = sim.spawn(firer(sim, sig))
    sim.run()
    assert p.value == 2
    assert woken == [("a", "pulse", 2.0), ("b", "pulse", 2.0)]


def test_signal_pulse_not_sticky():
    sim = Simulator()
    sig = Signal(sim)
    sig.fire()  # nobody waiting: pulse lost

    def waiter(sim, sig):
        yield sig.wait()
        return sim.now

    def firer(sim, sig):
        yield sim.timeout(5)
        sig.fire()

    p = sim.spawn(waiter(sim, sig))
    sim.spawn(firer(sim, sig))
    sim.run()
    assert p.value == 5.0
    assert sig.fired_count == 2


def test_semaphore_limits_concurrency():
    sim = Simulator()
    sem = Semaphore(sim, value=2)
    active = []
    peak = []

    def worker(sim, sem, i):
        yield sem.acquire()
        active.append(i)
        peak.append(len(active))
        yield sim.timeout(1)
        active.remove(i)
        sem.release()

    for i in range(6):
        sim.spawn(worker(sim, sem, i))
    sim.run()
    assert max(peak) == 2
    assert sem.value == 2


def test_semaphore_fifo_handoff():
    sim = Simulator()
    sem = Semaphore(sim, value=0)
    order = []

    def waiter(sim, sem, name):
        yield sem.acquire()
        order.append(name)

    for n in ("x", "y", "z"):
        sim.spawn(waiter(sim, sem, n))

    def releaser(sim, sem):
        for _ in range(3):
            yield sim.timeout(1)
            sem.release()

    sim.spawn(releaser(sim, sem))
    sim.run()
    assert order == ["x", "y", "z"]


def test_semaphore_negative_init_rejected():
    with pytest.raises(SimulationError):
        Semaphore(Simulator(), value=-1)


def test_barrier_releases_all_parties_together():
    sim = Simulator()
    bar = Barrier(sim, parties=3)
    released = []

    def party(sim, bar, i):
        yield sim.timeout(i)
        yield bar.arrive()
        released.append((i, sim.now))

    for i in range(3):
        sim.spawn(party(sim, bar, i))
    sim.run()
    assert [t for _, t in released] == [2.0, 2.0, 2.0]
    assert bar.generations == 1


def test_barrier_is_cyclic():
    sim = Simulator()
    bar = Barrier(sim, parties=2)
    times = []

    def party(sim, bar):
        for _ in range(2):
            yield bar.arrive()
            times.append(sim.now)
            yield sim.timeout(1)

    sim.spawn(party(sim, bar))
    sim.spawn(party(sim, bar))
    sim.run()
    assert bar.generations == 2


def test_latch_opens_once_and_stays_open():
    sim = Simulator()
    latch = Latch(sim, count=2)
    assert not latch.opened
    latch.count_down()
    assert not latch.opened
    latch.count_down()
    assert latch.opened
    latch.count_down()  # extra decrement is a no-op
    assert latch.opened

    def waiter(sim, latch):
        yield latch.wait()
        return sim.now

    p = sim.spawn(waiter(sim, latch))
    sim.run()
    assert p.value == 0.0  # already open: immediate


def test_latch_zero_count_starts_open():
    sim = Simulator()
    assert Latch(sim, count=0).opened


def test_latch_wait_before_open():
    sim = Simulator()
    latch = Latch(sim, count=1)

    def waiter(sim, latch):
        yield latch.wait()
        return sim.now

    def opener(sim, latch):
        yield sim.timeout(7)
        latch.count_down()

    p = sim.spawn(waiter(sim, latch))
    sim.spawn(opener(sim, latch))
    sim.run()
    assert p.value == 7.0
