"""Unit tests for Resource, Store and Container semantics."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim import Container, Resource, Simulator, Store


# ---------------------------------------------------------------- Resource


def test_resource_grants_up_to_capacity_immediately():
    sim = Simulator()
    r = Resource(sim, capacity=2)
    r1, r2 = r.request(), r.request()
    assert r1.triggered and r2.triggered
    r3 = r.request()
    assert not r3.triggered
    assert r.count == 2
    assert r.queue_len == 1


def test_resource_fifo_order():
    sim = Simulator()
    r = Resource(sim, capacity=1)
    order = []

    def user(sim, r, name, hold):
        with r.request() as req:
            yield req
            order.append(name)
            yield sim.timeout(hold)

    for name in ("a", "b", "c"):
        sim.spawn(user(sim, r, name, 1.0))
    sim.run()
    assert order == ["a", "b", "c"]


def test_resource_release_is_idempotent():
    sim = Simulator()
    r = Resource(sim, capacity=1)
    req = r.request()
    r.release(req)
    r.release(req)
    assert r.count == 0


def test_resource_cancel_waiting_request():
    sim = Simulator()
    r = Resource(sim, capacity=1)
    holder = r.request()
    waiter = r.request()
    waiter.cancel()
    r.release(holder)
    assert not waiter.triggered
    assert r.count == 0


def test_resource_capacity_validation():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Resource(sim, capacity=0)


def test_context_manager_releases_on_exception():
    sim = Simulator()
    r = Resource(sim, capacity=1)

    def bad_user(sim, r):
        with r.request() as req:
            yield req
            raise RuntimeError("die holding the slot")

    def next_user(sim, r):
        with r.request() as req:
            yield req
            return sim.now

    p1 = sim.spawn(bad_user(sim, r))
    p2 = sim.spawn(next_user(sim, r))
    sim.run()
    assert not p1.ok
    assert p2.ok  # the slot was not leaked


# ---------------------------------------------------------------- Store


def test_store_put_get_fifo():
    sim = Simulator()
    s = Store(sim)

    def producer(sim, s):
        for i in range(3):
            yield s.put(i)

    def consumer(sim, s):
        out = []
        for _ in range(3):
            out.append((yield s.get()))
        return out

    sim.spawn(producer(sim, s))
    p = sim.spawn(consumer(sim, s))
    sim.run()
    assert p.value == [0, 1, 2]


def test_store_get_blocks_until_put():
    sim = Simulator()
    s = Store(sim)

    def consumer(sim, s):
        item = yield s.get()
        return (sim.now, item)

    def producer(sim, s):
        yield sim.timeout(4)
        yield s.put("late")

    p = sim.spawn(consumer(sim, s))
    sim.spawn(producer(sim, s))
    sim.run()
    assert p.value == (4.0, "late")


def test_store_bounded_put_blocks():
    sim = Simulator()
    s = Store(sim, capacity=1)

    def producer(sim, s):
        yield s.put("a")
        yield s.put("b")  # blocks until the consumer takes "a"
        return sim.now

    def consumer(sim, s):
        yield sim.timeout(2)
        yield s.get()

    p = sim.spawn(producer(sim, s))
    sim.spawn(consumer(sim, s))
    sim.run()
    assert p.value == 2.0


def test_store_try_get():
    sim = Simulator()
    s = Store(sim)
    assert s.try_get() is None
    s.put("x")
    assert s.try_get() == "x"


def test_store_handoff_to_waiting_getter():
    sim = Simulator()
    s = Store(sim)

    def consumer(sim, s):
        return (yield s.get())

    p = sim.spawn(consumer(sim, s))
    sim.run(until=0.0)
    s.put("direct")
    sim.run()
    assert p.value == "direct"
    assert len(s) == 0


# ---------------------------------------------------------------- Container


def test_container_levels():
    sim = Simulator()
    c = Container(sim, capacity=100, init=50)
    c.get(30)
    assert c.level == 20
    c.put(80)
    assert c.level == 100


def test_container_get_blocks_until_level():
    sim = Simulator()
    c = Container(sim, capacity=100, init=0)

    def consumer(sim, c):
        yield c.get(60)
        return sim.now

    def producer(sim, c):
        yield sim.timeout(1)
        yield c.put(30)
        yield sim.timeout(1)
        yield c.put(30)

    p = sim.spawn(consumer(sim, c))
    sim.spawn(producer(sim, c))
    sim.run()
    assert p.value == 2.0


def test_container_put_blocks_at_capacity():
    sim = Simulator()
    c = Container(sim, capacity=10, init=10)

    def producer(sim, c):
        yield c.put(5)
        return sim.now

    def consumer(sim, c):
        yield sim.timeout(3)
        yield c.get(5)

    p = sim.spawn(producer(sim, c))
    sim.spawn(consumer(sim, c))
    sim.run()
    assert p.value == 3.0


def test_container_validates_amounts():
    sim = Simulator()
    c = Container(sim, capacity=10)
    with pytest.raises(SimulationError):
        c.put(0)
    with pytest.raises(SimulationError):
        c.get(-1)
    with pytest.raises(SimulationError):
        c.put(11)
