"""Unit tests for processes: spawning, joining, interrupts, error paths."""

from __future__ import annotations

import pytest

from repro.errors import InterruptError, SimulationError
from repro.sim import Simulator


def test_process_return_value_becomes_event_value():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1)
        return {"answer": 42}

    p = sim.spawn(proc(sim))
    sim.run()
    assert p.value == {"answer": 42}


def test_process_is_alive_until_done():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(2)

    p = sim.spawn(proc(sim))
    sim.run(until=1.0)
    assert p.is_alive
    sim.run()
    assert not p.is_alive


def test_process_exception_fails_event():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1)
        raise KeyError("oops")

    p = sim.spawn(proc(sim))
    sim.run()
    assert not p.ok
    assert isinstance(p.value, KeyError)


def test_process_can_wait_on_process():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(2)
        return "child-result"

    def parent(sim):
        res = yield sim.spawn(child(sim))
        return f"got {res}"

    p = sim.spawn(parent(sim))
    sim.run()
    assert p.value == "got child-result"


def test_yielding_non_event_fails_cleanly():
    sim = Simulator()

    def proc(sim):
        yield 42  # type: ignore[misc]

    p = sim.spawn(proc(sim))
    sim.run()
    assert not p.ok
    assert isinstance(p.value, SimulationError)


def test_interrupt_delivers_cause():
    sim = Simulator()

    def victim(sim):
        try:
            yield sim.timeout(100)
        except InterruptError as exc:
            return ("interrupted", exc.cause, sim.now)

    victim_p = sim.spawn(victim(sim))

    def attacker(sim, target):
        yield sim.timeout(3)
        target.interrupt("deadline")

    sim.spawn(attacker(sim, victim_p))
    sim.run()
    assert victim_p.value == ("interrupted", "deadline", 3.0)


def test_interrupted_process_can_rewait():
    sim = Simulator()

    def victim(sim):
        sleep = sim.timeout(10)
        try:
            yield sleep
        except InterruptError:
            pass
        yield sleep  # original event is still valid
        return sim.now

    victim_p = sim.spawn(victim(sim))

    def attacker(sim, target):
        yield sim.timeout(1)
        target.interrupt()

    sim.spawn(attacker(sim, victim_p))
    sim.run()
    assert victim_p.value == 10.0


def test_interrupt_finished_process_raises():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1)

    p = sim.spawn(proc(sim))
    sim.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_interrupt_race_with_completion_is_safe():
    """Interrupt scheduled at the same instant the victim finishes."""
    sim = Simulator()

    def victim(sim):
        yield sim.timeout(5)
        return "done"

    victim_p = sim.spawn(victim(sim))

    def attacker(sim, target):
        yield sim.timeout(5)
        if target.is_alive:
            target.interrupt("late")

    sim.spawn(attacker(sim, victim_p))
    sim.run()
    # whichever order the heap picked, the run completes without error
    assert victim_p.triggered


def test_nested_spawn_fanout():
    sim = Simulator()

    def leaf(sim, i):
        yield sim.timeout(i)
        return i

    def root(sim):
        procs = [sim.spawn(leaf(sim, i)) for i in range(5)]
        res = yield sim.all_of(procs)
        return sum(res.values())

    p = sim.spawn(root(sim))
    sim.run()
    assert p.value == 10
