"""Unit tests for tracing and time-series stats."""

from __future__ import annotations

import pytest

from repro.sim import Simulator
from repro.sim.trace import TimeSeries, Tracer


def test_counters_always_on():
    t = Tracer(enabled=False)
    t.count("nfs.bytes", 100)
    t.count("nfs.bytes", 50)
    assert t.counters["nfs.bytes"] == 150


def test_records_only_when_enabled():
    t = Tracer(enabled=False)
    t.record("ev", 1.0, "ignored")
    assert len(t.records) == 0
    t.enabled = True
    t.record("ev", 2.0, "kept")
    assert len(t.records) == 1
    assert t.records[0].kind == "ev"


def test_of_kind_filter():
    t = Tracer(enabled=True)
    t.record("a", 1.0)
    t.record("b", 2.0)
    t.record("a", 3.0)
    assert [r.time for r in t.of_kind("a")] == [1.0, 3.0]


def test_record_ring_buffer():
    t = Tracer(enabled=True, keep=3)
    for i in range(5):
        t.record("x", float(i))
    assert len(t.records) == 3
    assert t.records[0].time == 2.0


def test_clear():
    t = Tracer(enabled=True)
    t.record("x", 1.0)
    t.count("c")
    t.sample("s", 0.0, 1.0)
    t.clear()
    assert not t.records and not t.counters and not t.series


def test_timeseries_stats():
    ts = TimeSeries("q")
    assert ts.last == 0.0 and ts.mean() == 0.0 and ts.maximum() == 0.0
    ts.sample(0.0, 2.0)
    ts.sample(1.0, 4.0)
    ts.sample(3.0, 0.0)
    assert len(ts) == 3
    assert ts.last == 0.0
    assert ts.mean() == pytest.approx(2.0)
    assert ts.maximum() == 4.0


def test_time_weighted_mean_step_function():
    ts = TimeSeries("util")
    ts.sample(0.0, 1.0)   # holds 1.0 for [0, 2)
    ts.sample(2.0, 3.0)   # holds 3.0 for [2, 4)
    assert ts.time_weighted_mean(until=4.0) == pytest.approx(2.0)


def test_time_weighted_mean_single_sample():
    ts = TimeSeries("u")
    ts.sample(1.0, 7.0)
    assert ts.time_weighted_mean(until=1.0) == 7.0


def test_tracer_sample_creates_series():
    t = Tracer()
    t.sample("cpu", 0.0, 0.5)
    t.sample("cpu", 1.0, 0.7)
    assert t.series["cpu"].maximum() == 0.7


def test_simulator_tracer_records_events():
    sim = Simulator(trace=True)

    def proc(sim):
        yield sim.timeout(1.0)

    sim.spawn(proc(sim))
    sim.run()
    assert len(sim.tracer.records) >= 2


def test_dropped_counter_surfaces_ring_overflow():
    t = Tracer(enabled=True, keep=3)
    assert t.dropped == 0
    for i in range(5):
        t.record("x", float(i))
    assert t.dropped == 2
    t.clear()
    assert t.dropped == 0


def test_of_kind_consistent_after_eviction():
    t = Tracer(enabled=True, keep=4)
    for i in range(4):
        t.record("a" if i % 2 == 0 else "b", float(i))
    for i in range(4, 7):  # evicts times 0.0 ("a"), 1.0 ("b"), 2.0 ("a")
        t.record("c", float(i))
    assert [r.time for r in t.of_kind("a")] == []
    assert [r.time for r in t.of_kind("b")] == [3.0]
    assert [r.time for r in t.of_kind("c")] == [4.0, 5.0, 6.0]
    assert t.dropped == 3
    # the index agrees with the surviving entries
    assert sorted(r.time for r in t.records) == [3.0, 4.0, 5.0, 6.0]


def test_of_kind_unknown_kind_empty():
    t = Tracer(enabled=True)
    t.record("a", 1.0)
    assert t.of_kind("nope") == []


def test_time_weighted_mean_until_earlier_than_last_sample():
    ts = TimeSeries("u")
    ts.sample(0.0, 1.0)
    ts.sample(2.0, 5.0)
    # `until` before the last sample: the final interval gets zero
    # weight instead of a negative one
    assert ts.time_weighted_mean(until=1.0) == pytest.approx(1.0)


def test_time_weighted_mean_out_of_order_times():
    ts = TimeSeries("u")
    ts.sample(5.0, 2.0)   # negative interval to the next sample
    ts.sample(1.0, 4.0)   # holds 4.0 for [1, 3)
    assert ts.time_weighted_mean(until=3.0) == pytest.approx(4.0)


def test_time_weighted_mean_all_zero_weight_returns_last():
    ts = TimeSeries("u")
    ts.sample(3.0, 9.0)
    ts.sample(3.0, 7.0)
    assert ts.time_weighted_mean(until=3.0) == 7.0


def test_tracer_is_a_facade_over_sim_obs():
    sim = Simulator(trace=True)
    sim.obs.record("direct", 1.0, "via obs")
    assert sim.tracer.of_kind("direct")[0].detail == "via obs"
    sim.tracer.count("c", 2)
    assert sim.obs.metrics.counters["c"] == 2
    sim.tracer.enabled = False
    assert sim.obs.enabled is False
