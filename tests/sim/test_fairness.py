"""Fairness and ordering invariants of the kernel's shared primitives."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import Resource, Simulator, Store
from repro.sim.rng import derive_seed


@given(
    capacity=st.integers(min_value=1, max_value=4),
    holds=st.lists(st.floats(min_value=0.01, max_value=2.0), min_size=2, max_size=12),
)
@settings(max_examples=60, deadline=None)
def test_property_resource_grants_fifo(capacity, holds):
    """Grant order equals request order regardless of hold times."""
    sim = Simulator()
    r = Resource(sim, capacity=capacity)
    grant_order = []

    def user(idx, hold):
        with r.request() as req:
            yield req
            grant_order.append(idx)
            yield sim.timeout(hold)

    for i, hold in enumerate(holds):
        sim.spawn(user(i, hold))
    sim.run()
    assert grant_order == list(range(len(holds)))


@given(items=st.lists(st.integers(), min_size=1, max_size=30))
@settings(max_examples=60, deadline=None)
def test_property_store_preserves_fifo(items):
    sim = Simulator()
    s = Store(sim)
    received = []

    def producer():
        for item in items:
            yield s.put(item)

    def consumer():
        for _ in items:
            received.append((yield s.get()))

    sim.spawn(producer())
    sim.spawn(consumer())
    sim.run()
    assert received == items


@given(
    n_consumers=st.integers(min_value=1, max_value=5),
    n_items=st.integers(min_value=1, max_value=20),
)
@settings(max_examples=40, deadline=None)
def test_property_store_items_delivered_exactly_once(n_consumers, n_items):
    sim = Simulator()
    s = Store(sim)
    received = []

    def consumer():
        while True:
            item = yield s.get()
            if item is None:
                return
            received.append(item)

    consumers = [sim.spawn(consumer()) for _ in range(n_consumers)]

    def producer():
        for i in range(n_items):
            yield s.put(i)
        for _ in range(n_consumers):
            yield s.put(None)  # poison pills

    sim.spawn(producer())
    sim.run()
    assert sorted(received) == list(range(n_items))
    assert all(c.triggered for c in consumers)


def test_derive_seed_stable_and_distinct():
    assert derive_seed(1, "a") == derive_seed(1, "a")
    assert derive_seed(1, "a") != derive_seed(1, "b")
    assert derive_seed(1, "a") != derive_seed(2, "a")
    assert 0 <= derive_seed(123, "stream") < 2**63


def test_rng_registry_reset():
    sim = Simulator(seed=5)
    first = sim.rng.stream("x").integers(0, 10**9)
    sim.rng.reset()
    assert sim.rng.stream("x").integers(0, 10**9) == first
    assert "x" in sim.rng
