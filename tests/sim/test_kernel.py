"""Unit tests for the discrete-event kernel: clock, ordering, run modes."""

from __future__ import annotations

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.sim import Simulator
from repro.sim.events import Timeout


class _CountingTimeout(Timeout):
    """Timeout whose ``repr`` bumps a class counter (tracer-cost probe)."""

    reprs = 0

    def __repr__(self) -> str:
        _CountingTimeout.reprs += 1
        return "<_CountingTimeout>"


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_timeout_advances_clock():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(2.5)
        return sim.now

    p = sim.spawn(proc(sim))
    sim.run()
    assert p.value == 2.5
    assert sim.now == 2.5


def test_zero_delay_timeout_fires_at_same_instant():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(0.0)
        return sim.now

    p = sim.spawn(proc(sim))
    sim.run()
    assert p.value == 0.0


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1.0)


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []

    def proc(sim, name, delay):
        yield sim.timeout(delay)
        order.append(name)

    sim.spawn(proc(sim, "late", 3.0))
    sim.spawn(proc(sim, "early", 1.0))
    sim.spawn(proc(sim, "mid", 2.0))
    sim.run()
    assert order == ["early", "mid", "late"]


def test_ties_break_by_insertion_order():
    sim = Simulator()
    order = []

    def proc(sim, name):
        yield sim.timeout(1.0)
        order.append(name)

    for name in "abcd":
        sim.spawn(proc(sim, name))
    sim.run()
    assert order == list("abcd")


def test_run_until_time_stops_clock_exactly():
    sim = Simulator()

    def proc(sim):
        while True:
            yield sim.timeout(1.0)

    sim.spawn(proc(sim))
    sim.run(until=5.5)
    assert sim.now == 5.5


def test_run_until_event_returns_value():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1.0)
        return "finished"

    p = sim.spawn(proc(sim))
    assert sim.run(until=p) == "finished"


def test_run_until_event_raises_failure():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1.0)
        raise ValueError("boom")

    p = sim.spawn(proc(sim))
    with pytest.raises(ValueError, match="boom"):
        sim.run(until=p)


def test_run_until_never_firing_event_is_deadlock():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(DeadlockError):
        sim.run(until=ev)


def test_run_until_past_time_rejected():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(10.0)

    sim.spawn(proc(sim))
    sim.run(until=5.0)
    with pytest.raises(SimulationError):
        sim.run(until=1.0)


def test_step_without_events_raises():
    sim = Simulator()
    with pytest.raises(DeadlockError):
        sim.step()


def test_peek_reports_next_event_time():
    sim = Simulator()
    assert sim.peek() == float("inf")
    sim.timeout(4.0)
    assert sim.peek() == 4.0


def test_processed_events_counted():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1.0)
        yield sim.timeout(1.0)

    sim.spawn(proc(sim))
    sim.run()
    assert sim.processed_events >= 3  # init + 2 timeouts


def test_spawn_requires_generator():
    sim = Simulator()

    def not_a_generator():
        return 42

    with pytest.raises(SimulationError):
        sim.spawn(not_a_generator())  # type: ignore[arg-type]


def test_untraced_step_never_reprs_events():
    sim = Simulator(trace=False)
    _CountingTimeout.reprs = 0
    _CountingTimeout(sim, 1.0)
    sim.run()
    assert sim.processed_events == 1
    assert _CountingTimeout.reprs == 0


def test_traced_step_records_one_repr_per_event():
    sim = Simulator(trace=True)
    _CountingTimeout.reprs = 0
    _CountingTimeout(sim, 1.0)
    sim.run()
    assert _CountingTimeout.reprs == 1
    events = sim.tracer.of_kind("event")
    assert len(events) == 1
    assert events[0].detail == "<_CountingTimeout>"


def test_determinism_same_seed_same_schedule():
    def build():
        sim = Simulator(seed=7)
        log = []

        def proc(sim, name):
            jitter = float(sim.rng.stream("jitter").uniform(0, 1))
            yield sim.timeout(jitter)
            log.append((sim.now, name))

        for i in range(10):
            sim.spawn(proc(sim, f"p{i}"))
        sim.run()
        return log

    assert build() == build()


def test_rng_streams_independent():
    sim = Simulator(seed=1)
    a1 = sim.rng.stream("a").integers(0, 1000, size=5).tolist()
    # interleave another stream; "a" must be unaffected next time
    sim.rng.stream("b").integers(0, 1000, size=50)
    sim2 = Simulator(seed=1)
    sim2.rng.stream("b").integers(0, 1000, size=3)
    a2 = sim2.rng.stream("a").integers(0, 1000, size=5).tolist()
    assert a1 == a2
