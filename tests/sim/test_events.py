"""Unit tests for events: lifecycle, composition, failure propagation."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator


def test_event_lifecycle():
    sim = Simulator()
    ev = sim.event("e")
    assert not ev.triggered
    ev.succeed(99)
    assert ev.triggered
    assert ev.ok
    assert ev.value == 99


def test_event_double_trigger_rejected():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)
    with pytest.raises(SimulationError):
        ev.fail(ValueError())


def test_event_fail_requires_exception():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")  # type: ignore[arg-type]


def test_value_before_trigger_raises():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimulationError):
        _ = ev.value
    with pytest.raises(SimulationError):
        _ = ev.ok


def test_callback_after_processing_runs_immediately():
    sim = Simulator()
    ev = sim.event()
    ev.succeed("x")
    sim.run()
    seen = []
    ev.add_callback(lambda e: seen.append(e.value))
    assert seen == ["x"]


def test_failed_event_throws_into_process():
    sim = Simulator()
    ev = sim.event()

    def proc(sim, ev):
        try:
            yield ev
        except RuntimeError as exc:
            return f"caught {exc}"

    p = sim.spawn(proc(sim, ev))
    ev.fail(RuntimeError("bad"))
    sim.run()
    assert p.value == "caught bad"


def test_all_of_waits_for_every_event():
    sim = Simulator()
    done_at = []

    def waiter(sim, evs):
        yield sim.all_of(evs)
        done_at.append(sim.now)

    t1, t2, t3 = sim.timeout(1), sim.timeout(3), sim.timeout(2)
    sim.spawn(waiter(sim, [t1, t2, t3]))
    sim.run()
    assert done_at == [3.0]


def test_any_of_fires_on_first():
    sim = Simulator()
    done_at = []

    def waiter(sim, evs):
        yield sim.any_of(evs)
        done_at.append(sim.now)

    sim.spawn(waiter(sim, [sim.timeout(5), sim.timeout(1), sim.timeout(3)]))
    sim.run()
    assert done_at == [1.0]


def test_all_of_empty_succeeds_immediately():
    sim = Simulator()

    def waiter(sim):
        res = yield sim.all_of([])
        return res

    p = sim.spawn(waiter(sim))
    sim.run()
    assert p.value == {}


def test_all_of_collects_values():
    sim = Simulator()

    def waiter(sim):
        evs = [sim.timeout(1, "a"), sim.timeout(2, "b")]
        res = yield sim.all_of(evs)
        return sorted(res.values())

    p = sim.spawn(waiter(sim))
    sim.run()
    assert p.value == ["a", "b"]


def test_all_of_fails_fast_on_sub_failure():
    sim = Simulator()
    bad = sim.event()

    def waiter(sim, bad):
        try:
            yield sim.all_of([sim.timeout(10), bad])
        except ValueError:
            return sim.now

    p = sim.spawn(waiter(sim, bad))

    def failer(sim, bad):
        yield sim.timeout(1)
        bad.fail(ValueError("sub failed"))

    sim.spawn(failer(sim, bad))
    sim.run()
    assert p.value == 1.0


def test_timeout_carries_value():
    sim = Simulator()

    def proc(sim):
        v = yield sim.timeout(1.0, value="payload")
        return v

    p = sim.spawn(proc(sim))
    sim.run()
    assert p.value == "payload"


def test_condition_rejects_cross_simulator_events():
    sim1, sim2 = Simulator(), Simulator()
    foreign = sim2.event()
    with pytest.raises(SimulationError):
        sim1.all_of([sim1.event(), foreign])
