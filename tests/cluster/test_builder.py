"""Integration tests for cluster assembly, the testbed and SMB traffic."""

from __future__ import annotations

import pytest

from repro.cluster import Testbed, build_cluster
from repro.config import NodeConfig, ClusterConfig, DUO_E4400, NodeRole, table1_cluster
from repro.errors import ConfigError
from repro.units import KB, MB, msec
from repro.workloads import text_input


def test_build_cluster_wiring():
    cluster = build_cluster(table1_cluster())
    assert cluster.host.name == "host"
    assert [n.name for n in cluster.sd_nodes] == ["sd0"]
    assert len(cluster.compute_nodes) == 3
    assert "sd0" in cluster.host_channels
    assert cluster.smb is None


def test_build_requires_exactly_one_host():
    cfg = ClusterConfig(nodes=(NodeConfig("only-sd", DUO_E4400, role=NodeRole.SD),))
    with pytest.raises(ConfigError):
        build_cluster(cfg)


def test_sd_export_prepared():
    cluster = build_cluster(table1_cluster())
    sd = cluster.sd(0)
    assert sd.fs.exists("/export")
    assert sd.fs.exists("/export/sdlog")
    # one preloaded log file per standard module (apps + distributed plane)
    assert sorted(sd.fs.vfs.listdir("/export/sdlog")) == [
        "dist_map.log",
        "dist_merge.log",
        "dist_reduce.log",
        "matmul.log",
        "stringmatch.log",
        "wordcount.log",
    ]


def test_host_mounts_sd_export():
    cluster = build_cluster(table1_cluster())
    fs, rel = cluster.host.resolve_fs("/mnt/sd0/sdlog/wordcount.log")
    assert fs is cluster.mount()
    assert rel == "/sdlog/wordcount.log"


def test_compute_nodes_mount_host_share():
    cluster = build_cluster(table1_cluster())
    comp = cluster.compute_nodes[0]
    fs, rel = comp.resolve_fs("/mnt/host/some/file")
    assert fs is not comp.fs


def test_testbed_stage_roundtrip():
    bed = Testbed(seed=0)
    inp = text_input("/data/x", MB(50), payload_bytes=2_000, seed=1)
    sd_view, host_view, sd_path = bed.stage_on_sd("x", inp)
    assert sd_path == "/export/data/x"
    assert bed.sd.fs.size_of(sd_path) == MB(50)
    assert host_view.path == "/mnt/sd0/data/x"
    # host can read the bytes through NFS
    def proc():
        fs, rel = bed.host.resolve_fs(host_view.path)
        data = yield fs.read(rel)
        return data

    assert bed.run(proc()) == inp.payload_bytes


def test_smb_traffic_flows_between_participants():
    bed = Testbed(with_smb=True, seed=0)

    def idle():
        yield bed.sim.timeout(1.0)

    bed.run(idle())
    smb = bed.cluster.smb
    assert smb is not None
    assert smb.messages_sent > 10
    # SMB runs among host + compute nodes, never touching the SD node
    sd_flows = [
        f
        for f in bed.cluster.fabric.flows
        if "sd0" in (f.src, f.dst)
    ]
    assert not sd_flows
    smb.stop()


def test_smb_custom_intensity():
    bed = Testbed(with_smb=True, smb_params={"message_bytes": KB(4), "interval": msec(5)}, seed=0)

    def idle():
        yield bed.sim.timeout(0.5)

    bed.run(idle())
    assert bed.cluster.smb.message_bytes == KB(4)
    assert bed.cluster.smb.messages_sent > 50


def test_smb_validation():
    from repro.apps.smb import SMBTraffic
    from repro.errors import ConfigError

    bed = Testbed(seed=0)
    with pytest.raises(ConfigError):
        SMBTraffic([bed.host])
    with pytest.raises(ConfigError):
        SMBTraffic([bed.host, bed.sd], message_bytes=0)


def test_builds_are_deterministic():
    def fingerprint():
        bed = Testbed(with_smb=True, seed=42)

        def idle():
            yield bed.sim.timeout(2.0)

        bed.run(idle())
        return (
            bed.cluster.smb.messages_sent,
            bed.sim.processed_events,
            round(bed.sim.now, 9),
        )

    assert fingerprint() == fingerprint()
