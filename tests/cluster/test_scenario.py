"""Integration tests for the Fig 8/9/10 scenario drivers."""

from __future__ import annotations

import pytest

from repro.cluster.scenario import (
    PAIR_SCENARIOS,
    make_data_app,
    run_pair_scenario,
    run_single_app,
)
from repro.errors import ConfigError
from repro.units import MB


def test_make_data_app_wordcount():
    spec, inp = make_data_app("wordcount", MB(100))
    assert spec.name == "wordcount"
    assert inp.size == MB(100)
    assert inp.payload_bytes


def test_make_data_app_stringmatch_has_keys():
    spec, inp = make_data_app("stringmatch", MB(100))
    assert inp.params["keys"]


def test_make_data_app_unknown():
    with pytest.raises(ConfigError):
        make_data_app("sorting", MB(1))


def test_single_app_approaches_ordering():
    size = MB(400)
    seq = run_single_app("wordcount", size, "duo", "sequential")
    par = run_single_app("wordcount", size, "duo", "parallel")
    part = run_single_app("wordcount", size, "duo", "partitioned")
    assert seq.supported and par.supported and part.supported
    # at a comfortable size: parallel ~ partitioned < sequential
    assert par.elapsed < seq.elapsed
    assert part.elapsed < seq.elapsed
    assert part.elapsed == pytest.approx(par.elapsed, rel=0.15)


def test_single_app_oom_reported_as_unsupported():
    r = run_single_app("wordcount", MB(1750), "duo", "parallel")
    assert not r.supported
    assert r.elapsed is None
    assert "wordcount" in r.failure


def test_single_app_partitioned_reports_fragments():
    r = run_single_app("wordcount", MB(1000), "duo", "partitioned")
    assert r.fragments > 1


def test_single_app_unknown_platform_and_approach():
    with pytest.raises(ConfigError):
        run_single_app("wordcount", MB(1), "octo")
    with pytest.raises(ConfigError):
        run_single_app("wordcount", MB(1), "duo", "quantum")


def test_pair_scenario_all_variants_run():
    size = MB(500)
    for scenario in PAIR_SCENARIOS:
        r = run_pair_scenario(scenario, "stringmatch", size)
        assert r.supported, scenario
        assert r.makespan >= max(r.mm_elapsed, r.data_elapsed) - 1e-9
        assert r.scenario == scenario


def test_pair_scenario_unknown_rejected():
    with pytest.raises(ConfigError):
        run_pair_scenario("warp-drive", "wordcount", MB(1))


def test_pair_mcsd_beats_trad_sd():
    size = MB(750)
    mcsd = run_pair_scenario("mcsd", "wordcount", size)
    trad = run_pair_scenario("trad-sd", "wordcount", size)
    assert trad.makespan / mcsd.makespan > 1.5


def test_pair_results_deterministic():
    a = run_pair_scenario("mcsd", "wordcount", MB(500), seed=3)
    b = run_pair_scenario("mcsd", "wordcount", MB(500), seed=3)
    assert a.makespan == b.makespan


def test_host_part_beats_host_only_at_large_size():
    """The Fig 9 caption's Host-part variant: partitioning helps the host too."""
    size = MB(1250)
    host_only = run_pair_scenario("host-only", "wordcount", size)
    host_part = run_pair_scenario("host-part", "wordcount", size)
    assert host_part.makespan < host_only.makespan
