"""Edge cases of :meth:`Testbed.stage_replicated`.

Replication is not sharding: every replica must be the FULL dataset —
declared size, payload and offset identical on every SD node — even when
the size does not divide evenly by the fleet (no truncated tail on the
last replica) and even when the fleet is a single node (the degenerate
case is valid, not an error).
"""

from __future__ import annotations

import pytest

from repro.cluster.testbed import Testbed
from repro.config import table1_cluster
from repro.errors import FileNotFoundInVFS
from repro.phoenix import InputSpec
from repro.units import MB


def _bed(n_sd: int) -> Testbed:
    return Testbed(config=table1_cluster(n_sd=n_sd, seed=0), seed=0)


def test_uneven_size_leaves_full_copy_on_every_replica():
    # a declared size that does not divide by the 4-node fleet: the tail
    # replica must still carry the whole dataset, not the remainder
    bed = _bed(4)
    size = MB(10) + 3
    payload = b"alpha beta gamma " * 100
    inp = InputSpec(path="/data/u", size=size, payload=payload)
    sd_view, sd_path = bed.stage_replicated("u", inp)
    assert sd_view.size == size
    for i in range(4):
        node = bed.cluster.sd(i)
        assert node.fs.vfs.read(sd_path) == payload
        assert node.fs.vfs.size_of(sd_path) == size


def test_offset_preserved_on_every_replica():
    bed = _bed(2)
    inp = InputSpec(path="/data/o", size=MB(2), payload=b"x y z", offset=7)
    sd_view, sd_path = bed.stage_replicated("o", inp)
    assert sd_view.offset == 7
    # the staged copies themselves carry the same declared size
    for i in range(2):
        assert bed.cluster.sd(i).fs.vfs.size_of(sd_path) == MB(2)


def test_single_replica_degenerate_case():
    # one SD node: the single staged copy IS the replica set
    bed = _bed(1)
    inp = InputSpec(path="/data/s", size=MB(1), payload=b"solo")
    sd_view, sd_path = bed.stage_replicated("s", inp)
    assert sd_view.size == MB(1)
    assert bed.sd.fs.vfs.read(sd_path) == b"solo"


def test_n_replicas_limits_the_replica_set():
    bed = _bed(4)
    inp = InputSpec(path="/data/r", size=MB(1), payload=b"pair")
    _, sd_path = bed.stage_replicated("r", inp, n_replicas=2)
    assert bed.cluster.sd(0).fs.vfs.read(sd_path) == b"pair"
    assert bed.cluster.sd(1).fs.vfs.read(sd_path) == b"pair"
    for i in (2, 3):
        with pytest.raises(FileNotFoundInVFS):
            bed.cluster.sd(i).fs.vfs.read(sd_path)


def test_n_replicas_clamped_to_fleet_and_floor():
    bed = _bed(2)
    inp = InputSpec(path="/data/c", size=MB(1), payload=b"clamp")
    # far beyond the fleet: clamps to every SD node, no error
    _, sd_path = bed.stage_replicated("c", inp, n_replicas=99)
    for i in range(2):
        assert bed.cluster.sd(i).fs.vfs.read(sd_path) == b"clamp"
    # zero/negative clamps up to one replica (the first copy always lands)
    bed2 = _bed(2)
    _, sd_path2 = bed2.stage_replicated("c2", inp, n_replicas=0)
    assert bed2.cluster.sd(0).fs.vfs.read(sd_path2) == b"clamp"
    with pytest.raises(FileNotFoundInVFS):
        bed2.cluster.sd(1).fs.vfs.read(sd_path2)
