"""Property: distributing one job across replicas never changes its answer.

The PR-8 correctness claim, stated as hypothesis properties: for any
random corpus, declared size and fragment size, the distributed engine's
output at 1, 2 and 4 shards is byte-identical to the plain single-node
partitioned run of the same job — for wordcount and stringmatch exactly,
and for matmul on the assembled product matrix (the distributed plane
keeps the single-node task grid, so even the float summation order
matches).
"""

from __future__ import annotations

import pickle

from hypothesis import given, settings, strategies as st

from repro.apps.matmul import assemble_product, matmul_input
from repro.cluster.testbed import Testbed
from repro.config import table1_cluster
from repro.core import DataJob, DistributedEngine, DistributedJob, OffloadEngine
from repro.core.loadbalance import Placement
from repro.phoenix import InputSpec
from repro.units import MB

_TIMEOUT = 3600.0

words_st = st.lists(
    st.sampled_from([b"alpha", b"beta", b"gamma", b"delta", b"with", b"z"]),
    min_size=1,
    max_size=200,
)


def _flat_pairs(out: object) -> list:
    pairs: list = []

    def walk(x: object) -> None:
        if isinstance(x, tuple) and len(x) == 2:
            pairs.append(x)
        elif isinstance(x, list):
            for y in x:
                walk(y)

    walk(out)
    return pairs


def _canonical(app: str, output: object) -> bytes:
    if app == "matmul":
        return pickle.dumps(assemble_product(_flat_pairs(output)).tolist())
    return pickle.dumps(output)


def _single_node(app: str, inp: InputSpec, frag, mode, params) -> object:
    bed = Testbed(config=table1_cluster(n_sd=1, seed=0), seed=0)
    _, sd_path = bed.stage_replicated("prop", inp)
    job = DataJob(
        app=app, input_path=sd_path, input_size=inp.size, mode=mode,
        fragment_bytes=frag, params=params,
    )
    eng = OffloadEngine(bed.cluster)
    placement = Placement(node=bed.sd.name, offload=True, reason="property")
    return bed.run(eng.run(job, placement)).output


def _distributed(app: str, inp: InputSpec, frag, n_shards, params) -> object:
    bed = Testbed(config=table1_cluster(n_sd=4, seed=0), seed=0)
    _, sd_path = bed.stage_replicated("prop", inp)
    job = DistributedJob(
        app=app, input_path=sd_path, input_size=inp.size,
        n_shards=n_shards, fragment_bytes=frag, params=params,
    )
    eng = DistributedEngine(bed.cluster)
    return bed.run(eng.run(job, timeout=_TIMEOUT)).output


def _assert_widths_agree(app: str, inp: InputSpec, frag, mode, params) -> None:
    want = _canonical(app, _single_node(app, inp, frag, mode, params))
    for n_shards in (1, 2, 4):
        got = _canonical(app, _distributed(app, inp, frag, n_shards, params))
        assert got == want, f"{app} diverged at {n_shards} shards"


@given(
    words=words_st,
    size_mb=st.integers(min_value=2, max_value=60),
    frag_div=st.integers(min_value=1, max_value=6),
)
@settings(max_examples=8, deadline=None)
def test_property_wordcount_distribution_is_transparent(words, size_mb, frag_div):
    size = MB(size_mb)
    inp = InputSpec(path="/data/prop", size=size, payload=b" ".join(words))
    frag = max(1, size // frag_div)
    _assert_widths_agree("wordcount", inp, frag, "partitioned", {})


@given(
    words=words_st,
    size_mb=st.integers(min_value=2, max_value=60),
    frag_div=st.integers(min_value=1, max_value=6),
)
@settings(max_examples=8, deadline=None)
def test_property_stringmatch_distribution_is_transparent(words, size_mb, frag_div):
    size = MB(size_mb)
    inp = InputSpec(path="/data/prop", size=size, payload=b" ".join(words))
    frag = max(1, size // frag_div)
    _assert_widths_agree("stringmatch", inp, frag, "partitioned", {})


@given(
    n=st.sampled_from([64, 128, 256]),
    seed=st.integers(min_value=0, max_value=5),
)
@settings(max_examples=6, deadline=None)
def test_property_matmul_distribution_is_transparent(n, seed):
    inp = matmul_input("/data/prop", n, payload_n=16, seed=seed)
    _assert_widths_agree("matmul", inp, None, "parallel", {"n": n})
