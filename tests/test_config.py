"""Unit tests for the configuration layer (Table I presets, validation)."""

from __future__ import annotations

import dataclasses

import pytest

from repro.config import (
    CELERON_450,
    CPUSpec,
    ClusterConfig,
    DiskSpec,
    DUO_E4400,
    MemoryPolicy,
    NetworkConfig,
    NodeConfig,
    NodeRole,
    PhoenixConfig,
    QUAD_Q9400,
    SmartFAMConfig,
    table1_cluster,
)
from repro.errors import ConfigError
from repro.units import GiB


def test_table1_cpu_specs():
    assert QUAD_Q9400.cores == 4 and QUAD_Q9400.clock_ghz == 2.66
    assert DUO_E4400.cores == 2 and DUO_E4400.clock_ghz == 2.00
    assert CELERON_450.cores == 1 and CELERON_450.clock_ghz == 2.20


def test_cpu_ops_rate():
    assert DUO_E4400.ops_per_sec_per_core == pytest.approx(2.0e9)


def test_cpu_scaled_copy():
    uni = DUO_E4400.scaled(cores=1)
    assert uni.cores == 1 and uni.clock_ghz == 2.0
    assert DUO_E4400.cores == 2  # original untouched


def test_cpu_validation():
    with pytest.raises(ConfigError):
        CPUSpec("bad", cores=0, clock_ghz=1.0)
    with pytest.raises(ConfigError):
        CPUSpec("bad", cores=1, clock_ghz=0)
    with pytest.raises(ConfigError):
        CPUSpec("bad", cores=1, clock_ghz=1, ops_per_cycle=0)


def test_disk_validation():
    with pytest.raises(ConfigError):
        DiskSpec(bandwidth=0)
    with pytest.raises(ConfigError):
        DiskSpec(seek_time=-1)


def test_memory_policy_curve_continuity():
    mp = MemoryPolicy()
    eps = 1e-9
    below = mp.thrash_factor(mp.thrash_fraction - eps)
    at = mp.thrash_factor(mp.thrash_fraction)
    assert below == at == 1.0
    assert mp.thrash_factor(mp.thrash_fraction + 0.01) > 1.0


def test_memory_policy_validation():
    with pytest.raises(ConfigError):
        MemoryPolicy(thrash_fraction=0)
    with pytest.raises(ConfigError):
        MemoryPolicy(thrash_coeff=-1)
    with pytest.raises(ConfigError):
        MemoryPolicy(swap_factor=-0.1)


def test_network_validation():
    with pytest.raises(ConfigError):
        NetworkConfig(link_bandwidth=0)
    with pytest.raises(ConfigError):
        NetworkConfig(segment_bytes=0)


def test_phoenix_config_validation():
    with pytest.raises(ConfigError):
        PhoenixConfig(max_input_fraction=0)
    with pytest.raises(ConfigError):
        PhoenixConfig(tasks_per_core=0)
    with pytest.raises(ConfigError):
        PhoenixConfig(auto_fragment_fraction=1.5)


def test_smartfam_config_validation():
    with pytest.raises(ConfigError):
        SmartFAMConfig(inotify_latency=-1)
    with pytest.raises(ConfigError):
        SmartFAMConfig(logfile_bytes=0)


def test_node_config_validation():
    with pytest.raises(ConfigError):
        NodeConfig("n", DUO_E4400, mem_bytes=0)
    with pytest.raises(ConfigError):
        NodeConfig("n", DUO_E4400, role="weird")


def test_table1_cluster_layout():
    cfg = table1_cluster()
    assert len(cfg.nodes) == 5
    assert cfg.node("host").cpu == QUAD_Q9400
    assert cfg.node("sd0").cpu == DUO_E4400
    assert len(cfg.by_role(NodeRole.COMPUTE)) == 3
    assert all(n.mem_bytes == GiB(2) for n in cfg.nodes)


def test_table1_customization():
    cfg = table1_cluster(sd_cpu=QUAD_Q9400, n_compute=1, mem_bytes=GiB(4))
    assert cfg.node("sd0").cpu == QUAD_Q9400
    assert len(cfg.nodes) == 3
    assert cfg.node("host").mem_bytes == GiB(4)


def test_cluster_validation():
    with pytest.raises(ConfigError):
        ClusterConfig(nodes=())
    n = NodeConfig("dup", DUO_E4400)
    with pytest.raises(ConfigError):
        ClusterConfig(nodes=(n, n))
    cfg = table1_cluster()
    with pytest.raises(ConfigError):
        cfg.node("ghost")


def test_configs_are_frozen():
    cfg = table1_cluster()
    with pytest.raises(dataclasses.FrozenInstanceError):
        cfg.network.link_bandwidth = 1  # type: ignore[misc]
