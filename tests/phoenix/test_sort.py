"""Unit tests for the intermediate-data machinery."""

from __future__ import annotations

import operator

from repro.phoenix.sort import (
    Combiner,
    decorate_sorted,
    group_by_key,
    hash_partition,
    local_merge_maps,
    merge_combiner_maps,
    merge_decorated_runs,
    merge_entry_runs,
    merge_grouped,
    partition_decorated,
    shuffle_parallel,
    sort_by_value_desc,
    undecorate,
)


class CountingKey:
    """Value-equal, hashable key that counts global ``__repr__`` calls.

    The shuffle's acceptance contract is "``repr`` at most once per
    distinct key per job"; tests reset :attr:`reprs` and assert the exact
    count after a run.
    """

    reprs = 0

    def __init__(self, ident: int):
        self.ident = ident

    def __hash__(self) -> int:
        return hash(self.ident)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, CountingKey) and self.ident == other.ident

    def __repr__(self) -> str:
        CountingKey.reprs += 1
        return f"CountingKey({self.ident:04d})"


def _sum_reduce(key, values, params):
    return sum(values)


def test_combiner_without_combine_collects_lists():
    c = Combiner(None)
    c.emit("a", 1)
    c.emit("a", 2)
    c.emit("b", 3)
    assert dict(c.pairs()) == {"a": [1, 2], "b": [3]}
    assert c.emitted == 3


def test_combiner_with_combine_folds_values():
    c = Combiner(lambda old, new: old + new)
    for _ in range(5):
        c.emit("x", 1)
    c.emit("y", 10)
    assert dict(c.pairs()) == {"x": 5, "y": 10}
    assert c.emitted == 6


def test_combiner_pairs_deterministic_order():
    c = Combiner(lambda a, b: a + b)
    for k in ("z", "a", "m"):
        c.emit(k, 1)
    assert [k for k, _ in c.pairs()] == sorted(["z", "a", "m"], key=repr)


def test_hash_partition_covers_all_pairs():
    pairs = [(f"k{i}", i) for i in range(100)]
    buckets = hash_partition(pairs, 4)
    assert len(buckets) == 4
    flat = [kv for b in buckets for kv in b]
    assert sorted(flat) == sorted(pairs)


def test_hash_partition_deterministic():
    pairs = [(f"k{i}", i) for i in range(50)]
    b1 = hash_partition(pairs, 8)
    b2 = hash_partition(pairs, 8)
    assert b1 == b2


def test_hash_partition_same_key_same_bucket():
    pairs = [("hot", i) for i in range(10)]
    buckets = hash_partition(pairs, 4)
    non_empty = [b for b in buckets if b]
    assert len(non_empty) == 1
    assert len(non_empty[0]) == 10


def test_group_by_key_sorts_and_groups():
    pairs = [("b", 1), ("a", 2), ("b", 3)]
    grouped = group_by_key(pairs)
    assert grouped == [("a", [2]), ("b", [1, 3])]


def test_group_by_key_with_list_values():
    pairs = [("a", [1, 2]), ("a", [3])]
    grouped = group_by_key(pairs, values_are_lists=True)
    assert grouped == [("a", [1, 2, 3])]


def test_merge_grouped():
    parts = [[("b", 2)], [("a", 1)], [("c", 3)]]
    assert merge_grouped(parts) == [("a", 1), ("b", 2), ("c", 3)]


def test_sort_by_value_desc_ties_broken_by_key():
    pairs = [("b", 2), ("a", 5), ("c", 2)]
    assert sort_by_value_desc(pairs) == [("a", 5), ("b", 2), ("c", 2)]


def test_sort_by_value_desc_non_numeric_values():
    pairs = [("a", "x"), ("b", 3)]
    out = sort_by_value_desc(pairs)
    assert out[0] == ("b", 3)


# -- sort-once/merge-after pipeline ------------------------------------------


def test_merge_combiner_maps_without_combine_extends_value_lists():
    maps = [{"a": [1, 2], "b": [3]}, {"a": [4]}]
    merged = merge_combiner_maps(maps, None)
    assert merged == {"a": [1, 2, 4], "b": [3]}


def test_merge_combiner_maps_with_combine_keeps_per_worker_partials():
    # reducers must see one partial per worker, not a cross-worker fold
    maps = [{"a": 5}, {"a": 7, "b": 1}]
    merged = merge_combiner_maps(maps, operator.add)
    assert merged == {"a": [5, 7], "b": [1]}


def test_decorate_sorted_orders_by_repr_and_carries_key_value():
    entries = decorate_sorted({"b": 2, "a": 1, 10: 3})
    assert entries == [("'a'", "a", 1), ("'b'", "b", 2), ("10", 10, 3)]
    assert undecorate(entries) == [("a", 1), ("b", 2), (10, 3)]


def test_decorate_sorted_reprs_each_key_exactly_once():
    CountingKey.reprs = 0
    decorate_sorted({CountingKey(i): i for i in range(20)})
    assert CountingKey.reprs == 20


def test_partition_decorated_covers_and_preserves_sorted_order():
    entries = decorate_sorted({f"k{i}": i for i in range(100)})
    buckets = partition_decorated(entries, 4)
    assert len(buckets) == 4
    assert sorted(e for b in buckets for e in b) == entries
    for b in buckets:
        assert b == sorted(b, key=lambda e: e[0])


def test_partition_decorated_agrees_with_hash_partition():
    # entry routing must match the pair-level partitioner: both hash
    # crc32(repr(key)), one from the cached sort key, one from the key
    pairs = [(f"k{i}", i) for i in range(64)]
    entries = decorate_sorted(pairs)
    by_entry = partition_decorated(entries, 8)
    by_pair = hash_partition(pairs, 8)
    assert [sorted(undecorate(b)) for b in by_entry] == [sorted(b) for b in by_pair]


def test_merge_entry_runs_merges_sorted_runs():
    runs = [decorate_sorted({"a": 1, "z": 2}), decorate_sorted({"m": 3})]
    merged = merge_entry_runs(runs)
    assert undecorate(merged) == [("a", 1), ("m", 3), ("z", 2)]


def test_merge_decorated_runs_lazy_equals_eager():
    runs = [
        decorate_sorted({f"k{i}": i for i in range(0, 30, 3)}),
        decorate_sorted({f"k{i}": i for i in range(1, 30, 3)}),
        decorate_sorted({f"k{i}": i for i in range(2, 30, 3)}),
    ]
    assert list(merge_decorated_runs(runs)) == merge_entry_runs(runs)


def test_shuffle_parallel_wordcount_shape():
    maps = [{"a": 2, "b": 1}, {"a": 3, "c": 1}]
    out = shuffle_parallel(maps, operator.add, _sum_reduce, True, True, 4, {})
    assert out == [("a", 5), ("b", 1), ("c", 1)]


def test_shuffle_parallel_reprs_once_per_distinct_key():
    CountingKey.reprs = 0
    maps = [{CountingKey(i): 1 for i in range(w, w + 8)} for w in range(4)]
    n_distinct = len({k for m in maps for k in m})
    shuffle_parallel(maps, operator.add, _sum_reduce, True, True, 4, {})
    assert CountingKey.reprs == n_distinct


def test_local_merge_maps_folds_chunk_partials():
    maps = [{"a": 2, "b": 1}, {"a": 3}]
    assert local_merge_maps(maps, operator.add, None, False, {}) == [
        ("a", 5),
        ("b", 1),
    ]
    assert local_merge_maps(maps, operator.add, _sum_reduce, True, {}) == [
        ("a", 5),
        ("b", 1),
    ]


def test_local_merge_maps_reprs_once_per_distinct_key():
    CountingKey.reprs = 0
    maps = [{CountingKey(i): 1 for i in range(w, w + 8)} for w in range(4)]
    n_distinct = len({k for m in maps for k in m})
    local_merge_maps(maps, operator.add, None, True, {})
    assert CountingKey.reprs == n_distinct
