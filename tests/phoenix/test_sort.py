"""Unit tests for the intermediate-data machinery."""

from __future__ import annotations

from repro.phoenix.sort import (
    Combiner,
    group_by_key,
    hash_partition,
    merge_grouped,
    sort_by_value_desc,
)


def test_combiner_without_combine_collects_lists():
    c = Combiner(None)
    c.emit("a", 1)
    c.emit("a", 2)
    c.emit("b", 3)
    assert dict(c.pairs()) == {"a": [1, 2], "b": [3]}
    assert c.emitted == 3


def test_combiner_with_combine_folds_values():
    c = Combiner(lambda old, new: old + new)
    for _ in range(5):
        c.emit("x", 1)
    c.emit("y", 10)
    assert dict(c.pairs()) == {"x": 5, "y": 10}
    assert c.emitted == 6


def test_combiner_pairs_deterministic_order():
    c = Combiner(lambda a, b: a + b)
    for k in ("z", "a", "m"):
        c.emit(k, 1)
    assert [k for k, _ in c.pairs()] == sorted(["z", "a", "m"], key=repr)


def test_hash_partition_covers_all_pairs():
    pairs = [(f"k{i}", i) for i in range(100)]
    buckets = hash_partition(pairs, 4)
    assert len(buckets) == 4
    flat = [kv for b in buckets for kv in b]
    assert sorted(flat) == sorted(pairs)


def test_hash_partition_deterministic():
    pairs = [(f"k{i}", i) for i in range(50)]
    b1 = hash_partition(pairs, 8)
    b2 = hash_partition(pairs, 8)
    assert b1 == b2


def test_hash_partition_same_key_same_bucket():
    pairs = [("hot", i) for i in range(10)]
    buckets = hash_partition(pairs, 4)
    non_empty = [b for b in buckets if b]
    assert len(non_empty) == 1
    assert len(non_empty[0]) == 10


def test_group_by_key_sorts_and_groups():
    pairs = [("b", 1), ("a", 2), ("b", 3)]
    grouped = group_by_key(pairs)
    assert grouped == [("a", [2]), ("b", [1, 3])]


def test_group_by_key_with_list_values():
    pairs = [("a", [1, 2]), ("a", [3])]
    grouped = group_by_key(pairs, values_are_lists=True)
    assert grouped == [("a", [1, 2, 3])]


def test_merge_grouped():
    parts = [[("b", 2)], [("a", 1)], [("c", 3)]]
    assert merge_grouped(parts) == [("a", 1), ("b", 2), ("c", 3)]


def test_sort_by_value_desc_ties_broken_by_key():
    pairs = [("b", 2), ("a", 5), ("c", 2)]
    assert sort_by_value_desc(pairs) == [("a", 5), ("b", 2), ("c", 2)]


def test_sort_by_value_desc_non_numeric_values():
    pairs = [("a", "x"), ("b", 3)]
    out = sort_by_value_desc(pairs)
    assert out[0] == ("b", 3)
