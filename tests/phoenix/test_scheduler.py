"""Tests for the dynamic task-pool scheduler."""

from __future__ import annotations

from repro.config import QUAD_Q9400
from repro.hardware.cpu import ProcessorSharingCPU
from repro.phoenix.scheduler import Task, run_task_pool
from repro.sim import Simulator


def _pool(tasks, n_workers):
    sim = Simulator()
    cpu = ProcessorSharingCPU(sim, QUAD_Q9400)
    return sim.run(until=run_task_pool(sim, cpu, tasks, n_workers))


def test_results_stay_in_task_order_despite_completion_order():
    completion = []

    def make(i):
        def compute():
            completion.append(i)
            return i

        return compute

    # descending costs: task 0 finishes last among the first wave, but the
    # pool's results must still come back indexed by task, not by finish
    tasks = [Task(name=f"t{i}", ops=(10 - i) * 1e6, compute=make(i)) for i in range(10)]
    results = _pool(tasks, n_workers=4)
    assert results == list(range(10))
    assert sorted(completion) == list(range(10))
    assert completion != list(range(10))


def test_single_worker_drains_queue_in_order():
    order = []

    def make(i):
        def compute():
            order.append(i)
            return i

        return compute

    tasks = [Task(name=f"t{i}", ops=1e6, compute=make(i)) for i in range(5)]
    assert _pool(tasks, n_workers=1) == list(range(5))
    assert order == list(range(5))


def test_empty_task_list_returns_empty():
    assert _pool([], n_workers=4) == []


def test_tasks_without_compute_yield_none_results():
    tasks = [Task(name=f"t{i}", ops=1e6) for i in range(3)]
    assert _pool(tasks, n_workers=2) == [None, None, None]
