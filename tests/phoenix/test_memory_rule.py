"""Unit tests for the Phoenix out-of-core rule (Section IV-B)."""

from __future__ import annotations

import pytest

from repro.config import PhoenixConfig
from repro.errors import PhoenixMemoryError
from repro.phoenix import footprint_bytes, max_supported_input
from repro.phoenix.memory import check_supportable
from repro.apps.stringmatch import SM_PROFILE
from repro.apps.wordcount import WC_PROFILE
from repro.units import GiB, MB


CFG = PhoenixConfig()
MEM = GiB(2)


def test_max_supported_input_fraction():
    assert max_supported_input(MEM, CFG) == int(0.75 * MEM)


def test_paper_boundary_1500m_passes_1750m_fails():
    """Section V-B: WC/SM fail beyond 1.5G on the 2GB nodes."""
    check_supportable("wc", MB(1500), MEM, CFG, WC_PROFILE)  # no raise
    with pytest.raises(PhoenixMemoryError):
        check_supportable("wc", MB(1750), MEM, CFG, WC_PROFILE)


def test_rule_is_input_based_not_footprint_based():
    """The paper states the limit on *required data size*, so WC (3x) and
    SM (2x) fail at the same input size despite different footprints."""
    for profile in (WC_PROFILE, SM_PROFILE):
        check_supportable("app", MB(1500), MEM, CFG, profile)
        with pytest.raises(PhoenixMemoryError):
            check_supportable("app", MB(1700), MEM, CFG, profile)


def test_footprint_bytes_delegates_to_profile():
    assert footprint_bytes(WC_PROFILE, MB(500)) == MB(1500)
    assert footprint_bytes(SM_PROFILE, MB(500)) == MB(1000)


def test_error_carries_footprint_and_app():
    try:
        check_supportable("wordcount", MB(2000), MEM, CFG, WC_PROFILE)
    except PhoenixMemoryError as exc:
        assert exc.app == "wordcount"
        assert exc.footprint == WC_PROFILE.footprint(MB(2000))
        assert exc.capacity == MEM
    else:  # pragma: no cover
        pytest.fail("expected PhoenixMemoryError")


def test_configurable_fraction():
    tight = PhoenixConfig(max_input_fraction=0.25)
    with pytest.raises(PhoenixMemoryError):
        check_supportable("wc", MB(600), MEM, tight, WC_PROFILE)
    check_supportable("wc", MB(500), MEM, tight, WC_PROFILE)
