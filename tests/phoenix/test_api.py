"""Unit tests for the Phoenix API: cost profiles, input specs, splitting."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.phoenix.api import CostProfile, InputSpec, default_split
from repro.phoenix.scheduler import Task, run_task_pool
from repro.config import DUO_E4400
from repro.hardware import ProcessorSharingCPU
from repro.sim import Simulator
from repro.units import MB


def test_cost_profile_linear_scaling():
    p = CostProfile("x", map_ops_per_byte=10.0, sort_ops_per_byte=2.0)
    assert p.map_ops(100) == 1000.0
    assert p.map_ops(200) == 2.0 * p.map_ops(100)
    assert p.total_ops(100) == p.map_ops(100) + p.sort_ops(100)


def test_cost_profile_footprint_and_sizes():
    p = CostProfile(
        "x",
        map_ops_per_byte=1.0,
        footprint_factor=3.0,
        intermediate_ratio=0.5,
        output_ratio=0.1,
    )
    assert p.footprint(MB(100)) == MB(300)
    assert p.intermediate_bytes(MB(100)) == MB(50)
    assert p.output_bytes(MB(100)) == MB(10)


def test_cost_profile_validation():
    with pytest.raises(WorkloadError):
        CostProfile("bad", map_ops_per_byte=-1.0)
    with pytest.raises(WorkloadError):
        CostProfile("bad", map_ops_per_byte=1.0, footprint_factor=0.0)


def test_input_spec_rejects_negative_size():
    with pytest.raises(WorkloadError):
        InputSpec(path="/x", size=-1)


def test_input_spec_payload_bytes_accessor():
    assert InputSpec(path="/x", size=1, payload=b"abc").payload_bytes == b"abc"
    assert InputSpec(path="/x", size=1, payload=(1, 2)).payload_bytes is None
    assert InputSpec(path="/x", size=1).payload_bytes is None


def test_default_split_bytes_never_splits_words():
    data = b"alpha beta gamma delta epsilon zeta eta theta"
    chunks = default_split(data, 4)
    assert b"".join(chunks) == data
    whole_words = set(data.split())
    for chunk in chunks:
        for word in chunk.split():
            assert word in whole_words


def test_default_split_preserves_all_content():
    data = (b"word " * 1000).strip()
    for n in (1, 2, 3, 7, 16):
        chunks = default_split(data, n)
        assert len(chunks) == n
        assert b"".join(chunks) == data


def test_default_split_sequences():
    chunks = default_split(list(range(10)), 3)
    assert chunks == [[0, 1, 2, 3], [4, 5, 6], [7, 8, 9]]


def test_default_split_none_payload():
    assert default_split(None, 3) == [None, None, None]


def test_default_split_empty_bytes():
    assert default_split(b"", 3) == [b"", b"", b""]


def test_default_split_unknown_type_rejected():
    with pytest.raises(WorkloadError):
        default_split(42, 2)


# ------------------------------------------------------------------ scheduler


def test_task_pool_results_in_task_order():
    sim = Simulator()
    cpu = ProcessorSharingCPU(sim, DUO_E4400)
    tasks = [
        Task(name=f"t{i}", ops=(5 - i) * 1e8, compute=lambda i=i: i) for i in range(5)
    ]
    pool = run_task_pool(sim, cpu, tasks, n_workers=2)
    out = sim.run(until=pool)
    assert out == [0, 1, 2, 3, 4]


def test_task_pool_dynamic_balancing():
    """One long task + many short ones: 2 workers should overlap them."""
    sim = Simulator()
    cpu = ProcessorSharingCPU(sim, DUO_E4400)
    tasks = [Task(name="big", ops=8e9)] + [Task(name=f"s{i}", ops=1e9) for i in range(4)]
    pool = run_task_pool(sim, cpu, tasks, n_workers=2)
    sim.run(until=pool)
    # big alone: 4s; shorts: 4 x 0.5s on the other core -> makespan 4s
    assert sim.now == pytest.approx(4.0, rel=0.01)


def test_task_pool_empty():
    sim = Simulator()
    cpu = ProcessorSharingCPU(sim, DUO_E4400)
    pool = run_task_pool(sim, cpu, [], n_workers=2)
    assert sim.run(until=pool) == []


def test_task_pool_compute_failure_fails_pool():
    sim = Simulator()
    cpu = ProcessorSharingCPU(sim, DUO_E4400)

    def boom():
        raise ValueError("bad task")

    tasks = [Task(name="ok", ops=1e8, compute=lambda: 1), Task(name="bad", ops=1e8, compute=boom)]
    pool = run_task_pool(sim, cpu, tasks, n_workers=2)
    with pytest.raises(ValueError, match="bad task"):
        sim.run(until=pool)
