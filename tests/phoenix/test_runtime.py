"""Integration tests for the Phoenix runtime: correctness and timing."""

from __future__ import annotations

import pytest

from repro.config import PhoenixConfig, table1_cluster
from repro.errors import PhoenixMemoryError
from repro.net import Fabric
from repro.node import Node
from repro.phoenix import InputSpec, PhoenixRuntime
from repro.apps import make_stringmatch_spec, make_wordcount_spec
from repro.sim import Simulator
from repro.units import GiB, MB
from repro.workloads import encrypted_input, text_input


def make_sd(cfg=None):
    cfg = cfg or table1_cluster()
    sim = Simulator(seed=3)
    fab = Fabric(sim, cfg.network)
    sd = Node(sim, cfg.node("sd0"), fab)
    sd.fs.vfs.mkdir("/data")
    return sim, sd, cfg


def stage(sd, inp):
    sd.fs.vfs.write(inp.path, data=inp.payload_bytes or b"", size=inp.size)


def run(sim, proc_gen):
    p = sim.spawn(proc_gen)
    return sim.run(until=p)


def test_wordcount_counts_are_exact():
    sim, sd, cfg = make_sd()
    payload = b"apple banana apple cherry banana apple\n"
    inp = InputSpec(path="/data/f", size=MB(100), payload=payload)
    stage(sd, inp)
    rt = PhoenixRuntime(sd, cfg.phoenix)

    def proc():
        res = yield rt.run(make_wordcount_spec(), inp, mode="parallel")
        return res.output

    output = run(sim, proc())
    assert output[0] == (b"apple", 3)
    assert dict(output) == {b"apple": 3, b"banana": 2, b"cherry": 1}


def test_wordcount_output_sorted_by_frequency():
    sim, sd, cfg = make_sd()
    inp = text_input("/data/f", MB(200), payload_bytes=30_000, seed=7)
    stage(sd, inp)
    rt = PhoenixRuntime(sd, cfg.phoenix)

    def proc():
        res = yield rt.run(make_wordcount_spec(), inp, mode="parallel")
        return res.output

    output = run(sim, proc())
    counts = [v for _, v in output]
    assert counts == sorted(counts, reverse=True)


def test_parallel_equals_sequential_output():
    sim, sd, cfg = make_sd()
    inp = text_input("/data/f", MB(300), payload_bytes=40_000, seed=11)
    stage(sd, inp)
    rt = PhoenixRuntime(sd, cfg.phoenix)

    def proc():
        par = yield rt.run(make_wordcount_spec(), inp, mode="parallel")
        seq = yield rt.run(make_wordcount_spec(), inp, mode="sequential")
        return par.output, seq.output

    par_out, seq_out = run(sim, proc())
    assert dict(par_out) == dict(seq_out)


def test_total_word_count_matches_payload():
    sim, sd, cfg = make_sd()
    inp = text_input("/data/f", MB(100), payload_bytes=25_000, seed=5)
    stage(sd, inp)
    rt = PhoenixRuntime(sd, cfg.phoenix)

    def proc():
        res = yield rt.run(make_wordcount_spec(), inp, mode="parallel")
        return res.output

    output = run(sim, proc())
    assert sum(v for _, v in output) == len(inp.payload_bytes.split())


def test_stringmatch_finds_planted_keys():
    sim, sd, cfg = make_sd()
    inp, keys, planted = encrypted_input(
        "/data/f", MB(100), payload_bytes=20_000, hit_rate=0.2, seed=9
    )
    stage(sd, inp)
    rt = PhoenixRuntime(sd, cfg.phoenix)

    def proc():
        res = yield rt.run(make_stringmatch_spec(), inp, mode="parallel")
        return res.output

    output = run(sim, proc())
    assert sum(v for _, v in output) == planted
    assert all(k in keys for k, _ in output)


def test_parallel_faster_than_sequential():
    sim, sd, cfg = make_sd()
    inp = text_input("/data/f", MB(400), payload_bytes=20_000, seed=2)
    stage(sd, inp)
    rt = PhoenixRuntime(sd, cfg.phoenix)

    def proc():
        seq = yield rt.run(make_wordcount_spec(), inp, mode="sequential")
        par = yield rt.run(make_wordcount_spec(), inp, mode="parallel")
        return seq.stats.elapsed, par.stats.elapsed

    seq_t, par_t = run(sim, proc())
    # duo-core: close to 2x (serial merge + I/O keep it below the ideal)
    assert 1.5 < seq_t / par_t < 2.05


def test_memory_rule_trips_past_limit():
    sim, sd, cfg = make_sd()
    # 0.75 x 2 GiB ~ 1.61 GB; 1.75 GB must be rejected
    inp = text_input("/data/f", MB(1750), payload_bytes=10_000, seed=1)
    stage(sd, inp)
    rt = PhoenixRuntime(sd, cfg.phoenix)

    def proc():
        yield rt.run(make_wordcount_spec(), inp, mode="parallel")

    with pytest.raises(PhoenixMemoryError):
        run(sim, proc())


def test_memory_rule_respects_1500m_boundary():
    """The paper: WC/SM fail beyond 1.5G on the 2GB nodes -- 1.5G itself runs."""
    sim, sd, cfg = make_sd()
    inp = text_input("/data/f", MB(1500), payload_bytes=10_000, seed=1)
    stage(sd, inp)
    rt = PhoenixRuntime(sd, cfg.phoenix)

    def proc():
        res = yield rt.run(make_wordcount_spec(), inp, mode="parallel")
        return res.stats.elapsed

    assert run(sim, proc()) > 0


def test_sequential_mode_has_no_memory_rule():
    sim, sd, cfg = make_sd()
    inp = text_input("/data/f", MB(1750), payload_bytes=10_000, seed=1)
    stage(sd, inp)
    rt = PhoenixRuntime(sd, cfg.phoenix)

    def proc():
        res = yield rt.run(make_wordcount_spec(), inp, mode="sequential")
        return res.stats.elapsed

    assert run(sim, proc()) > 0


def test_memory_freed_after_job():
    sim, sd, cfg = make_sd()
    inp = text_input("/data/f", MB(300), payload_bytes=10_000, seed=1)
    stage(sd, inp)
    rt = PhoenixRuntime(sd, cfg.phoenix)

    def proc():
        yield rt.run(make_wordcount_spec(), inp, mode="parallel")

    run(sim, proc())
    assert sd.memory.used == 0


def test_memory_freed_even_on_failure():
    sim, sd, cfg = make_sd()

    def bad_map(data, emit, params):
        raise RuntimeError("map blew up")

    from repro.phoenix.api import MapReduceSpec
    from repro.apps.wordcount import WC_PROFILE

    spec = MapReduceSpec(name="bad", map_fn=bad_map, profile=WC_PROFILE)
    inp = text_input("/data/f", MB(100), payload_bytes=5_000, seed=1)
    stage(sd, inp)
    rt = PhoenixRuntime(sd, cfg.phoenix)

    def proc():
        yield rt.run(spec, inp, mode="parallel")

    with pytest.raises(RuntimeError, match="map blew up"):
        run(sim, proc())
    assert sd.memory.used == 0


def test_stats_stages_sum_to_elapsed():
    sim, sd, cfg = make_sd()
    inp = text_input("/data/f", MB(250), payload_bytes=10_000, seed=1)
    stage(sd, inp)
    rt = PhoenixRuntime(sd, cfg.phoenix)

    def proc():
        res = yield rt.run(make_wordcount_spec(), inp, mode="parallel")
        return res.stats

    stats = run(sim, proc())
    total = (
        stats.read_time
        + stats.map_time
        + stats.sort_time
        + stats.reduce_time
        + stats.merge_time
        + stats.write_time
    )
    assert total == pytest.approx(stats.elapsed, rel=0.02)
    assert stats.map_tasks == cfg.phoenix.tasks_per_core * sd.cpu.cores
    assert stats.emitted_pairs > 0


def test_output_file_written_with_declared_size():
    sim, sd, cfg = make_sd()
    inp = text_input("/data/f", MB(100), payload_bytes=5_000, seed=1)
    stage(sd, inp)
    rt = PhoenixRuntime(sd, cfg.phoenix)

    def proc():
        yield rt.run(make_wordcount_spec(), inp, mode="parallel")

    run(sim, proc())
    spec = make_wordcount_spec()
    assert sd.fs.size_of("/data/f.out") == spec.profile.output_bytes(MB(100))


class _CountingKey:
    """Value-equal key counting global ``repr`` calls (shuffle contract)."""

    reprs = 0

    def __init__(self, ident: int):
        self.ident = ident

    def __hash__(self) -> int:
        return hash(self.ident)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _CountingKey) and self.ident == other.ident

    def __repr__(self) -> str:
        _CountingKey.reprs += 1
        return f"_CountingKey({self.ident:04d})"


def _counting_spec():
    import operator

    from repro.apps.wordcount import WC_PROFILE
    from repro.phoenix.api import MapReduceSpec

    def ck_map(data, emit, params):
        for x in data:
            emit(_CountingKey(x), 1)

    return MapReduceSpec(
        name="ck",
        map_fn=ck_map,
        profile=WC_PROFILE,
        reduce_fn=lambda k, vs, params: sum(vs),
        combine_fn=operator.add,
        sort_output=True,
    )


@pytest.mark.parametrize("mode", ["parallel", "sequential"])
def test_runtime_reprs_each_distinct_key_once_per_job(mode):
    sim, sd, cfg = make_sd()
    # 25 distinct keys recurring across every map split: the job's shuffle
    # must repr each exactly once, not once per (key, worker)
    payload = [i % 25 for i in range(400)]
    inp = InputSpec(path="/data/f", size=MB(100), payload=payload)
    stage(sd, inp)
    rt = PhoenixRuntime(sd, cfg.phoenix)

    def proc():
        res = yield rt.run(_counting_spec(), inp, mode=mode)
        return res.output

    _CountingKey.reprs = 0
    output = run(sim, proc())
    assert _CountingKey.reprs == 25
    assert sorted(v for _, v in output) == [16] * 25


def test_quad_faster_than_duo():
    from repro.config import QUAD_Q9400

    def elapsed_on(cpu):
        cfg = table1_cluster(sd_cpu=cpu)
        sim, sd, cfg = make_sd(cfg)
        inp = text_input("/data/f", MB(400), payload_bytes=10_000, seed=1)
        stage(sd, inp)
        rt = PhoenixRuntime(sd, cfg.phoenix)

        def proc():
            res = yield rt.run(make_wordcount_spec(), inp, mode="parallel")
            return res.stats.elapsed

        return run(sim, proc())

    cfg = table1_cluster()
    duo_t = elapsed_on(cfg.node("sd0").cpu)
    quad_t = elapsed_on(QUAD_Q9400)
    assert quad_t < duo_t
