"""Unit tests for unit helpers and the error hierarchy."""

from __future__ import annotations

import pytest

from repro import errors, units


def test_byte_units():
    assert units.KB(1) == 1_000
    assert units.MB(1.5) == 1_500_000
    assert units.GB(2) == 2_000_000_000
    assert units.KiB(1) == 1024
    assert units.MiB(1) == 1024**2
    assert units.GiB(2) == 2 * 1024**3


def test_bandwidth_units():
    assert units.Gbit(1) == pytest.approx(125e6)
    assert units.Mbit(100) == pytest.approx(12.5e6)
    assert units.Kbit(8) == pytest.approx(1000)


def test_time_units():
    assert units.usec(100) == pytest.approx(1e-4)
    assert units.msec(50) == pytest.approx(0.05)
    assert units.sec(2) == 2.0
    assert units.minutes(1.5) == 90.0


def test_parse_bytes():
    assert units.parse_bytes("600M") == 600_000_000
    assert units.parse_bytes("1.25G") == 1_250_000_000
    assert units.parse_bytes("512K") == 512_000
    assert units.parse_bytes("4096") == 4096
    assert units.parse_bytes("2T") == 2_000_000_000_000
    assert units.parse_bytes("10MB") == 10_000_000
    assert units.parse_bytes(" 1g ") == 1_000_000_000


def test_parse_bytes_rejects_garbage():
    import pytest as _pytest

    for bad in ("", "abc", "-5M", "12Q"):
        with _pytest.raises(ValueError):
            units.parse_bytes(bad)


def test_fmt_bytes():
    assert units.fmt_bytes(500) == "500B"
    assert units.fmt_bytes(1500) == "1.50KB"
    assert units.fmt_bytes(2_500_000) == "2.50MB"
    assert units.fmt_bytes(1.25e9) == "1.25GB"


def test_fmt_time():
    assert units.fmt_time(0.0000005) == "0.5us"
    assert units.fmt_time(0.005) == "5.000ms"
    assert units.fmt_time(2.5) == "2.500s"
    assert units.fmt_time(90) == "1m30.00s"


def test_fmt_rate():
    assert units.fmt_rate(125e6) == "125.00MB/s"


def test_error_hierarchy_roots():
    assert issubclass(errors.SimulationError, errors.McSDError)
    assert issubclass(errors.OutOfMemoryError, errors.HardwareError)
    assert issubclass(errors.PhoenixMemoryError, errors.PhoenixError)
    assert issubclass(errors.IntegrityError, errors.PartitionError)
    assert issubclass(errors.NFSError, errors.FileSystemError)
    assert issubclass(errors.ModuleNotRegisteredError, errors.SmartFAMError)


def test_oom_error_carries_details():
    exc = errors.OutOfMemoryError(100, 50, node="sd0")
    assert exc.requested == 100
    assert exc.available == 50
    assert "sd0" in str(exc)


def test_phoenix_memory_error_details():
    exc = errors.PhoenixMemoryError(footprint=300, capacity=200, app="wc")
    assert exc.footprint == 300
    assert "wc" in str(exc)


def test_interrupt_error_cause():
    exc = errors.InterruptError(cause={"reason": "test"})
    assert exc.cause == {"reason": "test"}
