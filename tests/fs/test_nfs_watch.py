"""Focused tests for the NFS mtime-polling watch (smartFAM's host side)."""

from __future__ import annotations

import pytest

from repro.fs import NFSClient, NFSMount, NFSServer
from repro.units import MB

from tests.conftest import run_proc


@pytest.fixture()
def mounted(sim, host_and_sd):
    host, sd = host_and_sd
    NFSServer(sd, export_root="/export")
    mount = NFSMount(NFSClient(host), "sd0")

    def seed():
        yield sd.fs.mkdir("/export", parents=True)
        yield sd.fs.write("/export/watched", data=b"v1", size=MB(1))

    run_proc(sim, seed())
    return sim, host, sd, mount


def test_watch_stop_halts_polling(mounted):
    sim, host, sd, mount = mounted
    watch = mount.watch("/watched", poll_interval=0.1)

    def run_a_while():
        yield sim.timeout(1.0)
        watch.stop()
        polls_at_stop = watch.polls
        yield sim.timeout(2.0)
        return polls_at_stop

    polls_at_stop = run_proc(sim, run_a_while())
    # at most one extra in-flight poll after stop
    assert watch.polls <= polls_at_stop + 1


def test_watch_fires_on_each_change(mounted):
    sim, host, sd, mount = mounted
    watch = mount.watch("/watched", poll_interval=0.05)
    events = []

    def consumer():
        for _ in range(3):
            ev = yield watch.queue.get()
            events.append(ev["mtime"])
        watch.stop()

    def writer():
        for i in range(3):
            yield sim.timeout(0.5)
            yield sd.fs.write("/export/watched", data=b"v%d" % i, size=MB(1))

    sim.spawn(writer())
    run_proc(sim, consumer())
    assert len(events) == 3
    assert events == sorted(events)


def test_watch_detects_file_appearing(mounted):
    sim, host, sd, mount = mounted
    watch = mount.watch("/future", poll_interval=0.05)

    def creator():
        yield sim.timeout(0.4)
        yield sd.fs.write("/export/future", data=b"born", size=100)

    def consumer():
        ev = yield watch.queue.get()
        watch.stop()
        return ev["size"]

    sim.spawn(creator())
    assert run_proc(sim, consumer()) == 100


def test_watch_silent_without_changes(mounted):
    sim, host, sd, mount = mounted
    watch = mount.watch("/watched", poll_interval=0.05)

    def idle():
        yield sim.timeout(1.0)
        watch.stop()

    run_proc(sim, idle())
    assert len(watch.queue) == 0
    assert watch.polls >= 15  # it really was polling


def test_watch_negative_interval_rejected(mounted):
    sim, host, sd, mount = mounted
    from repro.errors import NFSError

    with pytest.raises(NFSError):
        mount.watch("/watched", poll_interval=-1.0)
