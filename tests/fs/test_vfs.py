"""Unit tests for the pure VFS state machine and path helpers."""

from __future__ import annotations

import pytest

from repro.errors import (
    FileExistsInVFS,
    FileNotFoundInVFS,
    FileSystemError,
    IsADirectoryInVFS,
    NotADirectoryInVFS,
)
from repro.fs import path as p
from repro.fs.vfs import VFS


# ---------------------------------------------------------------- paths


def test_normalize():
    assert p.normalize("/a/b/") == "/a/b"
    assert p.normalize("//a///b") == "/a/b"
    assert p.normalize("/") == "/"
    assert p.normalize("/a/./b") == "/a/b"


def test_normalize_rejects_relative_and_dotdot():
    with pytest.raises(FileSystemError):
        p.normalize("a/b")
    with pytest.raises(FileSystemError):
        p.normalize("/a/../b")


def test_parent_basename_join():
    assert p.parent("/a/b/c") == "/a/b"
    assert p.parent("/") == "/"
    assert p.basename("/a/b") == "b"
    assert p.basename("/") == ""
    assert p.join("/a", "b", "c/d") == "/a/b/c/d"
    assert p.join("/", "x") == "/x"


def test_is_under():
    assert p.is_under("/a/b", "/a")
    assert p.is_under("/a", "/a")
    assert not p.is_under("/ab", "/a")
    assert not p.is_under("/a", "/a/b")


# ---------------------------------------------------------------- VFS


@pytest.fixture()
def vfs():
    return VFS()


def test_mkdir_and_listdir(vfs):
    vfs.mkdir("/data")
    vfs.mkdir("/data/sub")
    assert vfs.listdir("/") == ["data"]
    assert vfs.listdir("/data") == ["sub"]


def test_mkdir_parents(vfs):
    vfs.mkdir("/a/b/c", parents=True)
    assert vfs.exists("/a/b/c")
    with pytest.raises(FileNotFoundInVFS):
        vfs.mkdir("/x/y/z")


def test_mkdir_existing_dir_is_idempotent(vfs):
    d1 = vfs.mkdir("/data")
    d2 = vfs.mkdir("/data")
    assert d1 is d2


def test_mkdir_over_file_rejected(vfs):
    vfs.create("/f")
    with pytest.raises(FileExistsInVFS):
        vfs.mkdir("/f")


def test_create_write_read(vfs):
    vfs.create("/f.txt")
    vfs.write("/f.txt", data=b"hello", mtime=1.0)
    assert vfs.read("/f.txt") == b"hello"
    assert vfs.size_of("/f.txt") == 5
    assert vfs.stat("/f.txt").mtime == 1.0


def test_write_creates_by_default(vfs):
    vfs.write("/auto.txt", data=b"x")
    assert vfs.exists("/auto.txt")
    with pytest.raises(FileNotFoundInVFS):
        vfs.write("/no.txt", data=b"x", create=False)


def test_declared_size_independent_of_payload(vfs):
    vfs.write("/big", data=b"tiny payload", size=10**9)
    assert vfs.size_of("/big") == 10**9
    assert vfs.read("/big") == b"tiny payload"


def test_append_concatenates_and_adds_size(vfs):
    vfs.write("/log", data=b"aa", size=100)
    vfs.write("/log", data=b"bb", size=50, append=True)
    assert vfs.read("/log") == b"aabb"
    assert vfs.size_of("/log") == 150


def test_create_exclusive(vfs):
    vfs.create("/f")
    with pytest.raises(FileExistsInVFS):
        vfs.create("/f")
    vfs.create("/f", exist_ok=True)


def test_read_directory_rejected(vfs):
    vfs.mkdir("/d")
    with pytest.raises(IsADirectoryInVFS):
        vfs.read("/d")
    with pytest.raises(IsADirectoryInVFS):
        vfs.size_of("/d")


def test_file_as_path_component_rejected(vfs):
    vfs.create("/f")
    with pytest.raises(NotADirectoryInVFS):
        vfs.create("/f/child")


def test_unlink_file_and_empty_dir(vfs):
    vfs.create("/f")
    vfs.unlink("/f")
    assert not vfs.exists("/f")
    vfs.mkdir("/d")
    vfs.unlink("/d")
    assert not vfs.exists("/d")


def test_unlink_nonempty_dir_rejected(vfs):
    vfs.mkdir("/d")
    vfs.create("/d/f")
    with pytest.raises(FileSystemError):
        vfs.unlink("/d")


def test_unlink_missing_raises(vfs):
    with pytest.raises(FileNotFoundInVFS):
        vfs.unlink("/ghost")


def test_handle_staleness(vfs):
    vfs.create("/f")
    h = vfs.handle("/f")
    assert h.valid()
    vfs.unlink("/f")
    assert not h.valid()
    from repro.errors import StaleHandleError

    with pytest.raises(StaleHandleError):
        h.ensure()


def test_walk_sorted_depth_first(vfs):
    vfs.mkdir("/b")
    vfs.mkdir("/a")
    vfs.create("/a/z")
    vfs.create("/a/c")
    paths = [path for path, _ in vfs.walk()]
    assert paths == ["/", "/a", "/a/c", "/a/z", "/b"]


def test_event_hooks(vfs):
    events = []
    vfs.on_event(lambda ev, path, inode: events.append((ev, path)))
    vfs.create("/f")
    vfs.write("/f", data=b"x")
    vfs.unlink("/f")
    assert events == [("create", "/f"), ("modify", "/f"), ("delete", "/f")]
