"""Integration tests: NFS client/server over the simulated fabric."""

from __future__ import annotations

import pytest

from repro.errors import FileNotFoundInVFS
from repro.fs import NFSClient, NFSMount, NFSServer
from repro.units import MB

from tests.conftest import run_proc


@pytest.fixture()
def nfs(sim, host_and_sd):
    host, sd = host_and_sd
    NFSServer(sd, export_root="/export")
    client = NFSClient(host)
    mount = NFSMount(client, "sd0")
    host.add_mount("/mnt/sd0", mount)

    def seed():
        yield sd.fs.mkdir("/export/data", parents=True)
        yield sd.fs.write("/export/data/f.txt", data=b"remote bytes", size=MB(50))

    run_proc(sim, seed())
    return sim, host, sd, mount


def test_remote_read_returns_payload(nfs):
    sim, host, sd, mount = nfs

    def proc():
        return (yield mount.read("/data/f.txt"))

    assert run_proc(sim, proc()) == b"remote bytes"


def test_remote_read_costs_disk_plus_network(nfs):
    sim, host, sd, mount = nfs

    def proc():
        t0 = sim.now
        yield mount.read("/data/f.txt")
        return sim.now - t0

    elapsed = run_proc(sim, proc())
    # 50 MB: disk 0.633s + network 0.4s, pipelining not modelled inside NFS
    expect = 50e6 / 80e6 + 50e6 / 125e6
    assert elapsed == pytest.approx(expect, rel=0.15)


def test_remote_write_appears_on_server(nfs):
    sim, host, sd, mount = nfs

    def proc():
        yield mount.write("/data/new.txt", data=b"written", size=MB(10))
        return sd.fs.vfs.read("/export/data/new.txt")

    assert run_proc(sim, proc()) == b"written"
    assert sd.fs.size_of("/export/data/new.txt") == MB(10)


def test_stat_and_listdir(nfs):
    sim, host, sd, mount = nfs

    def proc():
        attrs = yield mount.stat("/data/f.txt")
        names = yield mount.listdir("/data")
        return attrs, names

    attrs, names = run_proc(sim, proc())
    assert attrs["size"] == MB(50)
    assert not attrs["is_dir"]
    assert names == ["f.txt"]


def test_errors_propagate_to_client(nfs):
    sim, host, sd, mount = nfs

    def proc():
        try:
            yield mount.read("/data/ghost")
        except FileNotFoundInVFS:
            return "not found"

    assert run_proc(sim, proc()) == "not found"


def test_remove_and_access(nfs):
    sim, host, sd, mount = nfs

    def proc():
        before = yield mount.access("/data/f.txt")
        yield mount.unlink("/data/f.txt")
        after = yield mount.access("/data/f.txt")
        return before, after

    assert run_proc(sim, proc()) == (True, False)


def test_mount_resolution_via_node(nfs):
    sim, host, sd, mount = nfs
    fs, rel = host.resolve_fs("/mnt/sd0/data/f.txt")
    assert fs is mount
    assert rel == "/data/f.txt"
    fs2, rel2 = host.resolve_fs("/local/file")
    assert fs2 is host.fs
    assert rel2 == "/local/file"


def test_watch_detects_remote_modification(nfs):
    sim, host, sd, mount = nfs
    watch = mount.watch("/data/f.txt", poll_interval=0.05)
    write_done_at = []

    def modifier():
        yield sim.timeout(1.0)
        yield sd.fs.write("/export/data/f.txt", data=b"v2", size=MB(50))
        write_done_at.append(sim.now)

    def waiter():
        ev = yield watch.queue.get()
        watch.stop()
        return sim.now, ev["size"]

    sim.spawn(modifier())
    t, size = run_proc(sim, waiter())
    # detected within ~2 poll rounds + one getattr RTT of the write landing
    assert write_done_at and write_done_at[0] < t < write_done_at[0] + 0.15
    assert size == MB(50)
    assert watch.polls > 2


def test_concurrent_rpcs_matched_by_xid(nfs):
    sim, host, sd, mount = nfs

    def proc():
        reads = [mount.read("/data/f.txt") for _ in range(4)]
        stats = [mount.stat("/data/f.txt") for _ in range(4)]
        res = yield sim.all_of(reads + stats)
        return list(res.values())

    values = run_proc(sim, proc())
    assert sum(1 for v in values if v == b"remote bytes") == 4
    assert sum(1 for v in values if isinstance(v, dict)) == 4


def test_nfs_traffic_counted(nfs):
    sim, host, sd, mount = nfs

    def proc():
        yield mount.read("/data/f.txt")
        yield mount.write("/data/g", size=MB(5))

    run_proc(sim, proc())
    assert mount.bytes_read == MB(50)
    assert mount.bytes_written == MB(5)
