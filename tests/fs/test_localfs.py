"""Unit tests for timed local-FS operations."""

from __future__ import annotations

import pytest

from repro.config import DiskSpec
from repro.hardware import DiskModel
from repro.fs import LocalFS
from repro.sim import Simulator
from repro.units import MB


@pytest.fixture()
def lfs():
    sim = Simulator()
    disk = DiskModel(sim, DiskSpec(bandwidth=100e6, seek_time=0.01))
    return sim, LocalFS(sim, disk)


def run(sim, gen):
    proc = sim.spawn(gen)
    sim.run(until=proc)
    return proc.value


def test_write_then_read_roundtrip(lfs):
    sim, fs = lfs

    def proc():
        yield fs.mkdir("/data")
        yield fs.write("/data/f", data=b"payload", size=MB(100))
        data = yield fs.read("/data/f")
        return data

    assert run(sim, proc()) == b"payload"
    assert fs.size_of("/data/f") == MB(100)


def test_read_charges_declared_size(lfs):
    sim, fs = lfs

    def proc():
        yield fs.write("/f", data=b"x", size=MB(100))
        t0 = sim.now
        yield fs.read("/f")
        return sim.now - t0

    elapsed = run(sim, proc())
    assert elapsed == pytest.approx(0.01 + 1.0)  # seek + 100MB/100MBps


def test_partial_read_charges_nbytes(lfs):
    sim, fs = lfs

    def proc():
        yield fs.write("/f", data=b"x", size=MB(100))
        t0 = sim.now
        yield fs.read("/f", nbytes=MB(10))
        return sim.now - t0

    assert run(sim, proc()) == pytest.approx(0.01 + 0.1)


def test_mutating_metadata_ops_cost_one_seek(lfs):
    sim, fs = lfs

    def proc():
        t0 = sim.now
        yield fs.mkdir("/d")
        yield fs.create("/d/f")
        yield fs.unlink("/d/f")
        return sim.now - t0

    assert run(sim, proc()) == pytest.approx(3 * 0.01)


def test_cached_metadata_ops_are_free(lfs):
    sim, fs = lfs

    def proc():
        yield fs.create("/f")
        t0 = sim.now
        yield fs.stat("/f")
        yield fs.listdir("/")
        return sim.now - t0

    assert run(sim, proc()) == 0.0


def test_mtime_is_simulation_clock(lfs):
    sim, fs = lfs

    def proc():
        yield sim.timeout(3.0)
        yield fs.write("/f", data=b"x")
        inode = yield fs.stat("/f")
        return inode.mtime

    # write completes after the disk charge (seek)
    assert run(sim, proc()) == pytest.approx(3.01)


def test_append_accumulates(lfs):
    sim, fs = lfs

    def proc():
        yield fs.write("/f", data=b"aa", size=10)
        yield fs.write("/f", data=b"bb", size=10, append=True)
        return (yield fs.read("/f"))

    assert run(sim, proc()) == b"aabb"
    assert fs.size_of("/f") == 20


def test_exists_is_free_metadata(lfs):
    sim, fs = lfs
    assert not fs.exists("/nope")

    def proc():
        yield fs.create("/yes")

    run(sim, proc())
    assert fs.exists("/yes")


def test_concurrent_io_contends_on_disk(lfs):
    sim, fs = lfs
    ends = {}

    def writer(name):
        yield fs.write(f"/{name}", size=MB(100))
        ends[name] = sim.now

    def proc():
        a = sim.spawn(writer("a"))
        b = sim.spawn(writer("b"))
        yield sim.all_of([a, b])

    run(sim, proc())
    # both 1.01s of device time, serialized
    assert ends["a"] == pytest.approx(1.01, rel=0.01)
    assert ends["b"] == pytest.approx(2.02, rel=0.01)
