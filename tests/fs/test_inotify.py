"""Unit tests for the inotify subsystem."""

from __future__ import annotations

import pytest

from repro.fs.inotify import IN_CREATE, IN_DELETE, IN_MODIFY, InotifyManager
from repro.fs.vfs import VFS
from repro.sim import Simulator


@pytest.fixture()
def setup():
    sim = Simulator()
    vfs = VFS()
    mgr = InotifyManager(sim, vfs, latency=0.0)
    return sim, vfs, mgr


def drain(watch):
    out = []
    while True:
        item = watch.queue.try_get()
        if item is None:
            return out
        out.append(item)


def test_file_watch_sees_modify(setup):
    sim, vfs, mgr = setup
    vfs.create("/log")
    w = mgr.add_watch("/log", IN_MODIFY)
    vfs.write("/log", data=b"x", mtime=1.5)
    sim.run()
    events = drain(w)
    assert len(events) == 1
    assert events[0].is_modify
    assert events[0].path == "/log"


def test_watch_mask_filters(setup):
    sim, vfs, mgr = setup
    vfs.create("/f")
    w = mgr.add_watch("/f", IN_DELETE)
    vfs.write("/f", data=b"x")
    vfs.unlink("/f")
    sim.run()
    events = drain(w)
    assert len(events) == 1
    assert events[0].is_delete


def test_directory_watch_sees_children(setup):
    sim, vfs, mgr = setup
    vfs.mkdir("/logs")
    w = mgr.add_watch("/logs")
    vfs.create("/logs/a.log")
    vfs.write("/logs/a.log", data=b"data")
    sim.run()
    events = drain(w)
    assert [e.path for e in events] == ["/logs/a.log", "/logs/a.log"]
    assert events[0].is_create and events[1].is_modify


def test_directory_watch_not_recursive(setup):
    sim, vfs, mgr = setup
    vfs.mkdir("/logs/deep", parents=True)
    w = mgr.add_watch("/logs")
    vfs.create("/logs/deep/f")
    sim.run()
    assert drain(w) == []


def test_latency_delays_delivery():
    sim = Simulator()
    vfs = VFS()
    mgr = InotifyManager(sim, vfs, latency=0.25)
    vfs.create("/f")
    w = mgr.add_watch("/f", IN_MODIFY)

    def consumer(sim, w):
        ev = yield w.queue.get()
        return (sim.now, ev.path)

    def writer(sim, vfs):
        yield sim.timeout(1.0)
        vfs.write("/f", data=b"x", mtime=sim.now)

    p = sim.spawn(consumer(sim, w))
    sim.spawn(writer(sim, vfs))
    sim.run()
    assert p.value == (1.25, "/f")


def test_remove_watch_stops_delivery(setup):
    sim, vfs, mgr = setup
    vfs.create("/f")
    w = mgr.add_watch("/f")
    mgr.remove_watch(w)
    vfs.write("/f", data=b"x")
    sim.run()
    assert drain(w) == []


def test_multiple_watches_on_same_path(setup):
    sim, vfs, mgr = setup
    vfs.create("/f")
    w1 = mgr.add_watch("/f", IN_MODIFY)
    w2 = mgr.add_watch("/f", IN_MODIFY)
    vfs.write("/f", data=b"x")
    sim.run()
    assert len(drain(w1)) == 1
    assert len(drain(w2)) == 1
    assert mgr.delivered == 2


def test_watch_on_missing_path_gets_create(setup):
    sim, vfs, mgr = setup
    w = mgr.add_watch("/future", IN_CREATE)
    vfs.create("/future")
    sim.run()
    events = drain(w)
    assert len(events) == 1 and events[0].is_create
