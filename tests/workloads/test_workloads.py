"""Unit tests for the synthetic workload generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.units import MB
from repro.workloads import (
    FIG8A_SIZES,
    FIG8BC_SIZES,
    encrypted_input,
    keys_for,
    matrix_pair,
    size_label,
    text_input,
    zipf_corpus,
)


def test_zipf_corpus_deterministic():
    assert zipf_corpus(10_000, seed=5) == zipf_corpus(10_000, seed=5)
    assert zipf_corpus(10_000, seed=5) != zipf_corpus(10_000, seed=6)


def test_zipf_corpus_size_close_to_target():
    data = zipf_corpus(50_000, seed=1)
    assert 45_000 <= len(data) <= 50_000


def test_zipf_corpus_is_zipfian():
    """The top word should dominate; counts decay quickly."""
    data = zipf_corpus(200_000, vocabulary=500, seed=2)
    from collections import Counter

    counts = Counter(data.split()).most_common()
    top = counts[0][1]
    tenth = counts[9][1]
    assert top > 3 * tenth  # strong head


def test_zipf_corpus_validation():
    with pytest.raises(WorkloadError):
        zipf_corpus(0)
    with pytest.raises(WorkloadError):
        zipf_corpus(100, vocabulary=0)


def test_text_input_declared_vs_payload():
    inp = text_input("/f", MB(500), payload_bytes=10_000, seed=1)
    assert inp.size == MB(500)
    assert len(inp.payload_bytes) <= 10_000
    assert inp.path == "/f"


def test_text_input_payload_capped_at_declared():
    inp = text_input("/f", declared_bytes=1000, payload_bytes=100_000, seed=1)
    assert len(inp.payload_bytes) <= 1000


def test_keys_deterministic_and_distinct():
    keys = keys_for(6, seed=9)
    assert keys == keys_for(6, seed=9)
    assert len(set(keys)) == 6


def test_encrypted_input_planted_hits_exact():
    inp, keys, planted = encrypted_input(
        "/f", MB(100), payload_bytes=50_000, hit_rate=0.3, seed=4
    )
    count = 0
    bkeys = list(keys)
    for line in inp.payload_bytes.splitlines():
        for k in bkeys:
            if k in line:
                count += 1
    assert count == planted
    assert planted > 0
    assert inp.params["keys"] == keys


def test_encrypted_input_zero_hit_rate():
    inp, keys, planted = encrypted_input(
        "/f", MB(10), payload_bytes=20_000, hit_rate=0.0, seed=4
    )
    assert planted == 0


def test_encrypted_input_validation():
    with pytest.raises(WorkloadError):
        encrypted_input("/f", 0)
    with pytest.raises(WorkloadError):
        encrypted_input("/f", MB(1), hit_rate=1.5)


def test_matrix_pair_seeded():
    a1, b1 = matrix_pair(16, seed=3)
    a2, b2 = matrix_pair(16, seed=3)
    np.testing.assert_array_equal(a1, a2)
    np.testing.assert_array_equal(b1, b2)
    with pytest.raises(WorkloadError):
        matrix_pair(0)


def test_sweep_points_match_paper():
    assert [s // MB(1) for s in FIG8A_SIZES] == [500, 750, 1000, 1250]
    assert FIG8BC_SIZES[-1] == MB(2000)


def test_size_labels():
    assert size_label(MB(500)) == "500M"
    assert size_label(MB(1000)) == "1G"
    assert size_label(MB(1250)) == "1.25G"
    assert size_label(MB(2000)) == "2G"
