"""Tests for open-loop arrival processes (Poisson stream, trace replay)."""

from __future__ import annotations

import pytest

from repro.core import DataJob
from repro.errors import WorkloadError
from repro.workloads import Arrival, ArrivalProcess, DriveReport


def job(i: int = 0) -> DataJob:
    return DataJob(app="wordcount", input_path=f"/in/{i}", input_size=100)


def test_poisson_is_seed_deterministic():
    a = ArrivalProcess.poisson(job, rate=3.0, n=10, seed=42)
    b = ArrivalProcess.poisson(job, rate=3.0, n=10, seed=42)
    c = ArrivalProcess.poisson(job, rate=3.0, n=10, seed=43)
    assert [x.at for x in a] == [x.at for x in b]
    assert [x.at for x in a] != [x.at for x in c]
    assert len(a) == 10


def test_poisson_times_increase_at_the_rate():
    stream = ArrivalProcess.poisson(job, rate=2.0, n=500, seed=1, start=5.0)
    times = [x.at for x in stream]
    assert times == sorted(times)
    assert times[0] >= 5.0
    mean_gap = (times[-1] - 5.0) / len(times)
    assert mean_gap == pytest.approx(0.5, rel=0.2)


def test_poisson_validates_inputs():
    with pytest.raises(WorkloadError):
        ArrivalProcess.poisson(job, rate=0.0, n=1)
    with pytest.raises(WorkloadError):
        ArrivalProcess.poisson(job, rate=1.0, n=-1)


def test_from_trace_sorts_and_rejects_negative_times():
    stream = ArrivalProcess.from_trace([(2.0, job(1)), (1.0, job(0))])
    assert [a.at for a in stream] == [1.0, 2.0]
    assert stream.arrivals[0].job.input_path == "/in/0"
    with pytest.raises(WorkloadError):
        ArrivalProcess([Arrival(-0.5, job())])


def test_drive_report_throughput_math():
    report = DriveReport(
        completed=[(0.0, job(), None)] * 4,
        failed=[(0.0, job(), RuntimeError())],
        rejected=[],
        started_at=10.0,
        finished_at=12.0,
    )
    assert report.admitted == 5
    assert report.span == 2.0
    assert report.throughput == pytest.approx(2.0)
    empty = DriveReport([], [], [], started_at=1.0, finished_at=1.0)
    assert empty.throughput == 0.0
