#!/usr/bin/env python3
"""Extending McSD with a new preloaded module (Section VI future work #1).

"The extensibility of data-processing modules and operations (i.e.
data-intensive applications and database operations) that are preloaded
into McSD smart-disk nodes."  This example preloads a *database
operation* — a filtered aggregation (SELECT key, SUM(value) WHERE value
>= t GROUP BY key) — into the storage node and drives it from the host
through the same smartFAM channel as the built-in benchmarks.

Run:  python examples/custom_module.py
"""

from __future__ import annotations

from repro.apps.dbselect import make_dbselect_spec
from repro.cluster import Testbed
from repro.smartfam.registry import mapreduce_module, standard_registry
from repro.units import MB, fmt_time
from repro.workloads.records import records_input


def main() -> None:
    # 1) extend the standard registry with the new operation BEFORE the
    #    cluster boots — preloading creates the module's log file on the
    #    SD node and arms its inotify watch.
    registry = standard_registry()
    registry.register("dbselect", mapreduce_module(lambda p: make_dbselect_spec()))
    bed = Testbed(registry=registry, seed=11)
    print("preloaded modules:", ", ".join(registry.names()))

    # 2) stage a 1 GB record table on the storage node
    size = MB(1000)
    table = records_input("/data/table", size, seed=11)
    _sd, _host, sd_path = bed.stage_on_sd("table", table)

    # 3) run the query on the smart storage, partition-enabled
    threshold = 150.0

    def query():
        t0 = bed.sim.now
        result = yield bed.cluster.channel().invoke(
            "dbselect",
            {
                "input_path": sd_path,
                "input_size": size,
                "mode": "partitioned",
                "app": {"threshold": threshold, "agg": "sum"},
            },
        )
        return bed.sim.now - t0, result

    elapsed, result = bed.run(query())
    groups = result.output
    print(
        f"\nSELECT key, SUM(value) WHERE value >= {threshold} GROUP BY key "
        f"over {size / 1e6:.0f}MB: {fmt_time(elapsed)} on {bed.sd.name} "
        f"({result.n_fragments} fragments)"
    )
    print("top groups:", [(k.decode(), round(v, 1)) for k, v in groups[:4]])

    # 4) verify against a direct scan of the real payload
    truth: dict[bytes, float] = {}
    for line in table.payload_bytes.splitlines():
        key, _, raw = line.partition(b",")
        value = float(raw)
        if value >= threshold:
            truth[key] = truth.get(key, 0.0) + value
    assert {k: round(v, 6) for k, v in groups} == {
        k: round(v, 6) for k, v in truth.items()
    }
    print(f"verified against a direct scan: {len(truth)} groups match exactly")


if __name__ == "__main__":
    main()
