#!/usr/bin/env python3
"""The McSD programming model on the real machine (no simulator).

Generates a real text file, then runs Word Count through
:class:`repro.exec.LocalMapReduce` — the same map/reduce callbacks as the
simulated benchmarks, executed by genuine ``multiprocessing`` workers over
integrity-checked file chunks.  Results are verified against a plain
``collections.Counter`` pass.

Run:  python examples/real_multiprocessing.py
"""

from __future__ import annotations

import operator
import os
import tempfile
from collections import Counter

from repro.apps.wordcount import wc_map, wc_reduce
from repro.exec import LocalMapReduce
from repro.workloads import zipf_corpus


def main() -> None:
    data = zipf_corpus(2_000_000, seed=42)
    with tempfile.NamedTemporaryFile(suffix=".txt", delete=False) as f:
        f.write(data)
        path = f.name
    try:
        print(f"corpus: {len(data) / 1e6:.1f}MB real bytes at {path}")
        engine = LocalMapReduce(
            map_fn=wc_map,
            reduce_fn=wc_reduce,
            combine_fn=operator.add,
            sort_output=True,
        )
        par = engine.run(path)
        ser = engine.run(path, parallel=False)
        truth = Counter(data.split())

        assert dict(par.output) == dict(truth), "parallel result mismatch"
        assert par.output == ser.output, "parallel != serial"
        print(
            f"parallel: {par.elapsed:.3f}s with {par.n_workers} workers over "
            f"{par.n_chunks} chunks | serial: {ser.elapsed:.3f}s"
        )
        print("top 5:", [(k.decode(), v) for k, v in par.output[:5]])
        print(
            f"verified against Counter: {len(truth)} distinct words, "
            f"{sum(truth.values())} total"
        )
        if (os.cpu_count() or 1) == 1:
            print(
                "(single-core machine: workers cannot speed this up — the "
                "multicore performance claims are carried by the simulator)"
            )
    finally:
        os.unlink(path)


if __name__ == "__main__":
    main()
