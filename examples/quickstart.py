#!/usr/bin/env python3
"""Quickstart: offload a Word Count to a multicore smart-storage node.

Builds the paper's 5-node testbed (Table I), stages a dataset on the
McSD node, and runs the same job three ways:

1. the plain sequential baseline on the SD node,
2. original (non-partitioned) Phoenix on the SD node's two cores,
3. the full McSD framework — partition-enabled Phoenix invoked from the
   host through the smartFAM log-file channel.

Run:  python examples/quickstart.py

Pass ``--trace out.json`` to record a Chrome-trace of the whole run —
open it in Perfetto (https://ui.perfetto.dev) or summarize it with
``python tools/trace_view.py out.json``.
"""

from __future__ import annotations

import argparse

from repro.cluster import Testbed
from repro.core import DataJob, McSDProgram, McSDRuntime
from repro.phoenix import PhoenixRuntime
from repro.units import MB, fmt_time
from repro.workloads import text_input


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--trace",
        metavar="OUT.json",
        default=None,
        help="write a Chrome-trace (Perfetto-loadable) of the run",
    )
    args = parser.parse_args()

    size = MB(800)
    bed = Testbed(seed=7, trace=args.trace is not None)

    # Stage an 800 MB (declared) text corpus on the smart-storage node.
    dataset = text_input("/data/corpus.txt", size, seed=7)
    sd_view, _host_view, sd_path = bed.stage_on_sd("corpus.txt", dataset)
    print(f"staged {size / 1e6:.0f}MB corpus on {bed.sd.name} ({sd_path})")

    # 1+2) baselines, directly on the SD node
    phoenix = PhoenixRuntime(bed.sd, bed.config.phoenix)

    def baselines():
        seq = yield phoenix.run(make_wc(), sd_view, mode="sequential")
        par = yield phoenix.run(make_wc(), sd_view, mode="parallel")
        return seq, par

    seq, par = bed.run(baselines())

    # 3) the McSD way: the host offloads through smartFAM
    runtime = McSDRuntime(bed.cluster)
    program = McSDProgram(
        name="quickstart",
        sd_part=DataJob(app="wordcount", input_path=sd_path, input_size=size),
    )
    result = bed.run(runtime.submit(program))

    print(f"sequential on SD:        {fmt_time(seq.stats.elapsed)}")
    print(f"original Phoenix on SD:  {fmt_time(par.stats.elapsed)}")
    print(f"McSD (offload+partition): {fmt_time(result.makespan)}")
    print(
        f"speedup vs sequential: {seq.stats.elapsed / result.makespan:.2f}x, "
        f"vs original Phoenix: {par.stats.elapsed / result.makespan:.2f}x"
    )

    top = result.sd_result.output[:5]
    print("top 5 words:", [(k.decode(), v) for k, v in top])

    if args.trace:
        from repro.obs import export

        export.write_chrome(bed.sim.obs, args.trace)
        print(f"trace written to {args.trace} "
              f"({len(bed.sim.obs.spans)} spans; open in ui.perfetto.dev "
              f"or run: python tools/trace_view.py {args.trace})")


def make_wc():
    from repro.apps import make_wordcount_spec

    return make_wordcount_spec()


if __name__ == "__main__":
    main()
