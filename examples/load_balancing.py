#!/usr/bin/env python3
"""Load balancing between host and smart storage (the framework's knob).

The McSD framework "automatically handles computation offload, data
partitioning, and load balancing".  This example submits a burst of
data-intensive jobs under three placement policies and shows how the
adaptive policy sheds work back to the host once the SD node saturates.

Run:  python examples/load_balancing.py
"""

from __future__ import annotations

from repro.cluster import Testbed
from repro.core import (
    AdaptivePolicy,
    AlwaysOffloadPolicy,
    DataJob,
    HostOnlyPolicy,
    McSDProgram,
    McSDRuntime,
)
from repro.units import MB, fmt_time
from repro.workloads import text_input

N_JOBS = 4
SIZE = MB(400)


def burst(bed: Testbed, runtime: McSDRuntime, sd_path: str):
    """Submit N_JOBS concurrently; return (makespan, where-each-ran)."""

    def driver():
        t0 = bed.sim.now
        procs = [
            runtime.submit(
                McSDProgram(
                    name=f"job{i}",
                    sd_part=DataJob(
                        app="wordcount",
                        input_path=sd_path,
                        input_size=SIZE,
                        mode="parallel",
                    ),
                )
            )
            for i in range(N_JOBS)
        ]
        res = yield bed.sim.all_of(procs)
        wheres = [r.sd_result.where for r in res.values()]
        return bed.sim.now - t0, wheres

    return bed.run(driver())


def main() -> None:
    print(f"burst of {N_JOBS} x WordCount({SIZE / 1e6:.0f}MB), per policy:\n")
    for policy in (AlwaysOffloadPolicy(), HostOnlyPolicy(), AdaptivePolicy(tolerance=1.0)):
        bed = Testbed(seed=5)
        dataset = text_input("/data/burst.txt", SIZE, seed=5)
        _sd, _host, sd_path = bed.stage_on_sd("burst.txt", dataset)
        runtime = McSDRuntime(bed.cluster, policy=policy)
        makespan, wheres = burst(bed, runtime, sd_path)
        placement = ", ".join(
            f"{wheres.count(n)}x {n}" for n in sorted(set(wheres))
        )
        print(f"  {policy.name:15s} makespan {fmt_time(makespan):>10s}  ({placement})")
    print(
        "\nalways-offload funnels everything into the 2-core SD node; "
        "host-only pays NFS\nand host contention; adaptive splits the burst "
        "across both."
    )


if __name__ == "__main__":
    main()
