#!/usr/bin/env python3
"""Multi-application workload: the Section V-C scenario, end to end.

A computation-intensive Matrix Multiplication shares the cluster with a
data-intensive Word Count.  We run the pair under three frameworks —
everything-on-the-host, traditional single-core smart disk, and McSD —
and print the makespans, reproducing the Fig 9 story in miniature.

Run:  python examples/multiapp_offload.py
"""

from __future__ import annotations

from repro.cluster.scenario import run_pair_scenario
from repro.units import MB, fmt_time


def main() -> None:
    size = MB(1000)
    print(f"MM (n=3760) + WordCount({size / 1e6:.0f}MB), four frameworks:\n")

    rows = []
    for scenario, label in (
        ("host-only", "Host node only (data over NFS)"),
        ("trad-sd", "Traditional single-core SD"),
        ("mcsd-nopart", "McSD without Partition"),
        ("mcsd", "McSD (duo-core SD + 600MB partitions)"),
    ):
        r = run_pair_scenario(scenario, "wordcount", size)
        rows.append((label, r))
        print(f"  {label:42s} makespan {fmt_time(r.makespan)}")

    mcsd = rows[-1][1].makespan
    print("\nspeedup of McSD over each baseline:")
    for label, r in rows[:-1]:
        print(f"  vs {label:39s} {r.makespan / mcsd:.2f}x")
    print(
        "\n(the paper's Fig 9: ~2x over traditional SD at every size; the "
        "non-partitioned\n frameworks fall off a cliff once the working set "
        "outgrows the 2GB node memory)"
    )


if __name__ == "__main__":
    main()
