#!/usr/bin/env python3
"""Parallelism across multiple McSD nodes (Section VI future work #2).

Shards a 2 GB Word Count across a cluster with 1, 2 and 4 smart-storage
nodes; each node runs the partition-enabled module over its local shard
concurrently and the host merges the results (scatter-gather).  Also
shows the fault-tolerance mechanism kicking in when one storage node's
daemon dies mid-burst.

Run:  python examples/multi_mcsd.py
"""

from __future__ import annotations

from repro.cluster import Testbed
from repro.config import table1_cluster
from repro.core import (
    DataJob,
    FaultTolerantInvoker,
    ScatterGatherEngine,
    ScatterJob,
)
from repro.units import MB, fmt_time
from repro.workloads import text_input

SIZE = MB(2000)


def main() -> None:
    print(f"WordCount({SIZE / 1e6:.0f}MB) sharded across n smart-storage nodes:\n")
    base = None
    for n_sd in (1, 2, 4):
        bed = Testbed(config=table1_cluster(n_sd=n_sd, seed=8), seed=8)
        inp = text_input("/data/huge", SIZE, payload_bytes=16_000, seed=8)
        shards = bed.stage_shards("huge", inp)
        engine = ScatterGatherEngine(bed.cluster)

        def go(engine=engine, shards=shards):
            return (yield engine.run(ScatterJob(app="wordcount", shards=shards)))

        res = bed.run(go())
        base = base or res.elapsed
        total = sum(v for _, v in res.output)
        print(
            f"  {n_sd} SD node(s): {fmt_time(res.elapsed):>10s}  "
            f"speedup {base / res.elapsed:.2f}x  ({total} words, exact)"
        )

    # --- fault tolerance on top: kill one daemon, watch the failover
    print("\nnow with sd0's daemon crashing every attempt:")
    bed = Testbed(config=table1_cluster(n_sd=2, seed=8), seed=8)
    inp = text_input("/data/huge", MB(400), payload_bytes=8_000, seed=8)
    _sd, _h, sd_path = bed.stage_on_sd("huge", inp)
    bed.stage(bed.cluster.sd(1), sd_path, inp)  # replica on sd1
    bed.cluster.sd_daemons["sd0"].inject_module_crash("wordcount", 99)
    ft = FaultTolerantInvoker(bed.cluster, timeout=60.0, max_retries=1)
    job = DataJob(app="wordcount", input_path=sd_path, input_size=MB(400))

    def reliable():
        return (yield ft.run(job, replicas=["sd1"]))

    res = bed.run(reliable())
    trail = " -> ".join(f"{a.target}:{a.outcome}" for a in ft.history[0])
    print(f"  attempts: {trail}")
    print(f"  completed on {res.where} in {fmt_time(res.elapsed)}; results exact:",
          sum(v for _, v in res.output) == len(inp.payload_bytes.split()))


if __name__ == "__main__":
    main()
