#!/usr/bin/env python3
"""Out-of-core partitioning: process a dataset larger than node memory.

The original Phoenix runtime rejects inputs beyond ~75% of node memory
(Section IV-B / V-B: WC fails past 1.5GB on the 2GB testbed nodes).  The
partition-enabled runtime (Fig 6) carves the input into integrity-checked
fragments and streams them through MapReduce one at a time, then merges.

This example runs a 2GB Word Count on a 2GB node, shows the original
runtime failing, and sweeps fragment sizes to expose the trade-off the
automatic partitioner navigates.

Run:  python examples/out_of_core_partitioning.py
"""

from __future__ import annotations

from repro.cluster import Testbed
from repro.apps import make_wordcount_spec
from repro.errors import PhoenixMemoryError
from repro.phoenix import PhoenixRuntime
from repro.partition import ExtendedPhoenixRuntime
from repro.units import MB, fmt_time
from repro.workloads import text_input


def main() -> None:
    size = MB(2000)
    bed = Testbed(seed=3)
    dataset = text_input("/data/huge.txt", size, seed=3)
    sd_view, _host, _path = bed.stage_on_sd("huge.txt", dataset)
    spec = make_wordcount_spec()

    # 1) the original runtime cannot support this input
    phoenix = PhoenixRuntime(bed.sd, bed.config.phoenix)

    def try_original():
        yield phoenix.run(spec, sd_view, mode="parallel")

    try:
        bed.run(try_original())
        raise AssertionError("expected a memory failure")
    except PhoenixMemoryError as exc:
        print(f"original Phoenix on 2GB input: REFUSED ({exc})\n")

    # 2) partition-enabled runtime, sweeping fragment sizes
    print(f"partition-enabled Phoenix on the same {size / 1e6:.0f}MB input:")
    ext = ExtendedPhoenixRuntime(bed.sd, bed.config.phoenix)
    for frag in (MB(150), MB(300), MB(600), MB(1200), None):
        def run_one(frag=frag):
            res = yield ext.run(spec, sd_view, fragment_bytes=frag)
            return res

        res = bed.run(run_one())
        label = "auto" if frag is None else f"{frag / 1e6:.0f}MB"
        peak = max(s.peak_pressure for s in res.fragment_stats)
        print(
            f"  fragment {label:>6s}: {res.n_fragments:2d} fragments, "
            f"elapsed {fmt_time(res.elapsed)}, peak memory pressure {peak:.2f}"
        )
    print(
        "\nsmall fragments pay per-fragment overhead; big ones push the "
        "working set\ninto the paging region — the auto partitioner picks "
        "the clean middle."
    )


if __name__ == "__main__":
    main()
