#!/usr/bin/env python3
"""Chaos soak: the fault-injection acceptance gate.

Usage:
    python tools/chaos_soak.py [--quick] [--seed N] [--trace DIR]
                               [--dump-dir DIR]

Runs every benchmark twice through the simulated cluster — once clean,
once with the standard fault plan installed — and the real streaming
engine the same way, then asserts the robustness contract:

* **byte-identical output**: the chaos run's pickled output equals the
  fault-free baseline's, app by app (faults may cost time, never
  answers);
* **full plan coverage**: every rule in the plan actually fired (a gate
  that silently stopped injecting proves nothing);
* **reproducible injection**: a second chaos run with the same seed
  produces the identical injection signature sequence;
* **bounded recovery**: attempts/retries stay inside the configured
  budgets — no unbounded retry storms;
* **no leaks** (engine): no spill directories left on disk and no worker
  processes left running after the engine closes.

``--quick`` runs one simulated app and a smaller engine input (the CI
smoke configuration); the default soaks wordcount, stringmatch and
matmul.  ``--trace DIR`` exports one Chrome trace per case, which
``tools/trace_view.py`` renders with a reliability-counter section.
``--dump-dir DIR`` (default: the ``REPRO_BLACKBOX_DIR`` environment
variable) arms the flight recorder on every registry the soak creates;
when a check fails, each live recorder's ring is dumped to DIR as a
JSONL black box and the paths are printed with the failure summary.

Exit status 0 iff every check passes.
"""

from __future__ import annotations

import argparse
import dataclasses
import glob
import multiprocessing as mp
import os
import pickle
import sys
import tempfile

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for p in (_REPO_ROOT, os.path.join(_REPO_ROOT, "src")):
    if p not in sys.path:
        sys.path.insert(0, p)

from repro.apps.matmul import assemble_product, matmul_input  # noqa: E402
from repro.cluster import Testbed  # noqa: E402
from repro.config import table1_cluster  # noqa: E402
from repro.core import (  # noqa: E402
    DataJob,
    DistributedEngine,
    DistributedJob,
    FaultTolerantInvoker,
    SpeculationPolicy,
)
from repro.sched import ClusterScheduler  # noqa: E402
from repro.workloads import ArrivalProcess  # noqa: E402
from repro.exec import LocalMapReduce  # noqa: E402
from repro.exec.outofcore import install_signal_cleanup, live_spill_dirs  # noqa: E402
from repro.faults import (  # noqa: E402
    FaultInjector,
    FaultPlan,
    FaultRule,
    distributed_chaos_plan,
    recovery_chaos_plan,
    standard_engine_plan,
    standard_plan,
    tier_chaos_plan,
    transport_chaos_plan,
)
from repro.obs import Observability  # noqa: E402
from repro.tier import TieredStore, live_tier_dirs  # noqa: E402
from repro.obs import flight as _flight  # noqa: E402
from repro.obs.export import write_chrome  # noqa: E402
from repro.units import MB  # noqa: E402
from repro.workloads import text_input  # noqa: E402


# -- simulated cluster cases -------------------------------------------------

#: per-attempt deadline for the chaos invoker (simulated seconds)
SIM_TIMEOUT = 60.0
#: same-target retries before failover
SIM_RETRIES = 2


def _sim_job(app: str, seed: int, quick: bool):
    """A fresh testbed with the app's input staged on both SD nodes."""
    bed = Testbed(config=table1_cluster(n_sd=2, seed=seed), seed=seed)
    if app == "matmul":
        n = 256 if quick else 512
        inp = matmul_input("/data/mm", n, payload_n=32, seed=seed)
        _sd, _host, sd_path = bed.stage_on_sd("mm", inp)
        bed.stage(bed.cluster.sd(1), sd_path, inp)
        job = DataJob(
            app="matmul", input_path=sd_path, input_size=inp.size,
            mode="parallel", params={"n": n},
        )
    else:
        size = MB(50) if quick else MB(200)
        inp = text_input("/data/f", size, payload_bytes=6_000, seed=seed)
        _sd, _host, sd_path = bed.stage_on_sd("f", inp)
        bed.stage(bed.cluster.sd(1), sd_path, inp)
        job = DataJob(
            app=app, input_path=sd_path, input_size=size, mode="parallel"
        )
    return bed, job


def _canonical(app: str, output: object) -> bytes:
    """The byte-comparable form of a job's answer.

    matmul's raw output is one (row_start, block) entry per map task, and
    the task count follows the executing node's core count — a failover
    to the host legitimately changes the blocking.  The *answer* is the
    assembled product matrix, so byte-identity is asserted on that; the
    text apps' outputs are already canonical.
    """
    if app == "matmul":
        return pickle.dumps(assemble_product(output))
    return pickle.dumps(output)


def _run_sim_once(app: str, seed: int, quick: bool, chaos: bool):
    bed, job = _sim_job(app, seed, quick)
    injector = bed.sim.install_faults(standard_plan(seed)) if chaos else None
    ft = FaultTolerantInvoker(bed.cluster, timeout=SIM_TIMEOUT, max_retries=SIM_RETRIES)

    def go():
        return (yield ft.run(job, replicas=["sd1"]))

    result = bed.run(go())
    return _canonical(app, result.output), injector, ft, bed


def sim_case(app: str, seed: int, quick: bool, trace_dir: str | None) -> list:
    """All gate checks for one simulated app; returns (check, ok, note) rows."""
    baseline, _, _, _ = _run_sim_once(app, seed, quick, chaos=False)
    output, injector, ft, bed = _run_sim_once(app, seed, quick, chaos=True)
    output2, injector2, _, _ = _run_sim_once(app, seed, quick, chaos=True)

    plan = standard_plan(seed)
    fired = injector.fired_by_site()
    # every rule's exact site should have seen at least one injection
    missing = [r.site for r in plan.rules if fired.get(r.site, 0) == 0]
    # FT invoker budget: (retries+1) per target (primary + 1 replica), +1 host
    attempt_budget = (SIM_RETRIES + 1) * 2 + 1

    if trace_dir:
        write_chrome(
            bed.sim.obs,
            os.path.join(trace_dir, f"chaos-sim-{app}.json"),
            extra={"faults": injector.fired_by_site()},
        )
    return [
        ("output identical", output == baseline,
         f"{len(baseline)} bytes"),
        ("all rules fired", not missing,
         f"fired {fired}" + (f", missing {missing}" if missing else "")),
        ("injection reproducible",
         injector.signatures() == injector2.signatures() and output2 == baseline,
         f"{injector.injections} injections"),
        ("retries bounded", ft.total_attempts <= attempt_budget,
         f"{ft.total_attempts} attempts <= {attempt_budget}"),
    ]


# -- scheduler case ----------------------------------------------------------

#: per-attempt deadline while a daemon may be dead (simulated seconds)
SCHED_TIMEOUT = 10.0


def _run_sched_once(seed: int, quick: bool, kill: bool):
    """One served stream on a 2-SD cluster; optionally kill sd0 mid-stream."""
    n_jobs = 12 if quick else 24
    rate = 2.0
    bed = Testbed(config=table1_cluster(n_sd=2, seed=seed), seed=seed)
    inp = text_input("/data/s", MB(20), payload_bytes=6_000, seed=seed)
    _, sd_path = bed.stage_replicated("s", inp)
    sched = ClusterScheduler(
        bed.cluster,
        attempt_timeout=SCHED_TIMEOUT,
        per_node_limit=1,
        max_queue=n_jobs + 1,
        max_retries=2,
        cache=None,
    )

    def factory(i: int) -> DataJob:
        return DataJob(
            app="wordcount", input_path=sd_path, input_size=inp.size,
            mode="parallel",
        )

    stream = ArrivalProcess.poisson(factory, rate=rate, n=n_jobs, seed=seed)
    drive = stream.drive(sched)
    kill_at = 0.5 * n_jobs / rate  # mid-stream
    if kill:

        def killer():
            yield bed.sim.timeout(kill_at)
            bed.cluster.sd_daemons["sd0"].kill()

        bed.sim.spawn(killer(), name="chaos.kill-sd0")
    report = bed.run(drive)
    return report, sched, bed, kill_at


def sched_case(seed: int, quick: bool, trace_dir: str | None) -> list:
    """Kill one of two SD nodes mid-stream; admitted jobs still complete.

    The contract mirrors the admission semantics: the control plane may
    refuse work only at admission (AdmissionError), so once the stream is
    admitted a dead daemon can cost time (deadline + re-queue on the
    surviving node or the host) but never answers.
    """
    clean, clean_sched, _, _ = _run_sched_once(seed, quick, kill=False)
    chaos, chaos_sched, bed, kill_at = _run_sched_once(seed, quick, kill=True)

    baseline = pickle.dumps(clean.completed[0][2].output)
    mismatched = [
        i for i, (_, _, res) in enumerate(chaos.completed)
        if pickle.dumps(res.output) != baseline
    ]
    survivors = {
        rec.where for rec in chaos_sched.completed
        if rec.dispatched_at >= kill_at and rec.where != "sd0"
    }

    if trace_dir:
        write_chrome(
            bed.sim.obs,
            os.path.join(trace_dir, "chaos-sched.json"),
            extra={"stats": chaos_sched.stats()},
        )
    counters = bed.sim.obs.metrics.snapshot()["counters"]
    return [
        ("all admitted completed",
         not chaos.failed and chaos.admitted == len(chaos.completed),
         f"{len(chaos.completed)} completed, {len(chaos.failed)} failed, "
         f"{len(chaos.rejected)} rejected at admission"),
        ("outputs identical", not mismatched and len(chaos.completed) > 0,
         f"{len(chaos.completed)} outputs vs clean baseline"),
        ("dead node quarantined", "sd0" in chaos_sched.unhealthy,
         f"unhealthy={sorted(chaos_sched.unhealthy)}"),
        ("work re-routed", bool(survivors),
         f"post-kill completions on {sorted(survivors) or 'nothing'}"),
        ("recovery bounded",
         counters.get("sched.requeued", 0) <= chaos.admitted * 3,
         f"{int(counters.get('sched.requeued', 0))} requeues, "
         f"{int(counters.get('sched.attempt_failures', 0))} failed attempts"),
        ("clean run untouched",
         not clean.failed and not clean.rejected
         and not clean_sched.unhealthy,
         f"{len(clean.completed)} clean completions"),
    ]


# -- distributed case --------------------------------------------------------

#: per-attempt deadline while a shard's daemon may be dead (simulated s)
DIST_TIMEOUT = 5.0


def _dist_canonical(app: str, output: object) -> bytes:
    """Like :func:`_canonical`, tolerant of nested identity-merged pairs.

    A distributed matmul merge concatenates per-shard identity merges, so
    the (row_start, block) pairs may arrive one list level deeper than
    the single-node output; flatten before assembling the product.
    """
    if app != "matmul":
        return pickle.dumps(output)
    pairs: list = []

    def walk(x: object) -> None:
        if isinstance(x, tuple) and len(x) == 2:
            pairs.append(x)
        elif isinstance(x, list):
            for y in x:
                walk(y)

    walk(output)
    return pickle.dumps(assemble_product(pairs))


def _dist_job(app: str, seed: int, quick: bool):
    """A fresh 4-SD testbed with the input replicated on every node."""
    bed = Testbed(config=table1_cluster(n_sd=4, seed=seed), seed=seed)
    if app == "matmul":
        n = 256 if quick else 512
        inp = matmul_input("/data/dmm", n, payload_n=32, seed=seed)
        frag, params = None, {"n": n}
    else:
        size = MB(40) if quick else MB(100)
        inp = text_input("/data/df", size, payload_bytes=6_000, seed=seed)
        frag, params = (inp.size + 3) // 4, {}
    _, sd_path = bed.stage_replicated(f"d-{app}", inp)
    job = DistributedJob(
        app=app, input_path=sd_path, input_size=inp.size,
        fragment_bytes=frag, params=params,
    )
    return bed, job


def _stale_shuffle_dirs(bed, final_id: str) -> list:
    """Shuffle dirs on any SD node other than the committed attempt's."""
    stale = []
    for node in bed.cluster.sd_nodes:
        vfs = node.fs.vfs
        if not vfs.exists("/export/shuffle"):
            continue
        for name in vfs.listdir("/export/shuffle"):
            if name != final_id:
                stale.append(f"{node.name}:/export/shuffle/{name}")
    return stale


def dist_case(app: str, seed: int, quick: bool, trace_dir: str | None) -> list:
    """Kill one shard's SD node mid-shuffle; the job recovers in place.

    Three runs: a clean one (the byte-identity baseline, which also
    records when the map phase ends and which node hosts the merge), a
    kill run where the merge node's daemon dies just as the exchange
    begins (the engine must detect it by deadline and re-derive ONLY the
    dead daemon's work — its committed map artifact stays host-readable
    on the SD disk, so nothing is re-mapped: a partial restart, not a
    second attempt), and a shuffle-fault run under
    :func:`distributed_chaos_plan` (every transfer fault must be
    absorbed by the bounded in-place retry — no restart at all).
    """
    bed, job = _dist_job(app, seed, quick)
    eng = DistributedEngine(bed.cluster)
    clean = bed.run(eng.run(job, timeout=SIM_TIMEOUT))
    baseline = _dist_canonical(app, clean.output)
    victim = clean.merge_node
    kill_at = clean.timeline["map_done"] + 1e-3

    bed, job = _dist_job(app, seed, quick)
    eng = DistributedEngine(bed.cluster)

    def killer():
        yield bed.sim.timeout(kill_at)
        bed.cluster.sd_daemons[victim].kill()

    bed.sim.spawn(killer(), name=f"chaos.kill-{victim}")
    chaos = bed.run(eng.run(job, timeout=DIST_TIMEOUT))
    output = _dist_canonical(app, chaos.output)
    stale = _stale_shuffle_dirs(bed, chaos.job_id)

    bed2, job2 = _dist_job(app, seed, quick)
    injector = bed2.sim.install_faults(distributed_chaos_plan(seed))
    eng2 = DistributedEngine(bed2.cluster)
    absorbed = bed2.run(eng2.run(job2, timeout=SIM_TIMEOUT))
    fired = injector.fired_by_site()
    plan = distributed_chaos_plan(seed)

    if trace_dir:
        write_chrome(
            bed.sim.obs,
            os.path.join(trace_dir, f"chaos-dist-{app}.json"),
            extra={"killed": victim, "kill_at": kill_at},
        )
    return [
        ("output identical", output == baseline,
         f"{len(baseline)} bytes after killing {victim} at "
         f"t={kill_at:.3f}s"),
        ("partial restart, same attempt",
         chaos.attempts == 1 and eng.partial_restarts >= 1
         and eng.full_restarts == 0
         and chaos.merge_node != victim,
         f"{chaos.attempts} attempt(s), {eng.partial_restarts} partial / "
         f"{eng.full_restarts} full restarts, merge moved to "
         f"{chaos.merge_node}"),
        ("dead node's artifacts reused, no re-map",
         victim in chaos.shard_nodes
         and bed.sim.obs.metrics.snapshot()["counters"].get(
             "dist.invoke.map", 0) == chaos.n_shards,
         f"{chaos.n_shards} map invokes for {chaos.n_shards} shards, "
         f"artifacts on {list(chaos.shard_nodes)}"),
        ("recovery bounded", chaos.attempts <= eng.max_attempts,
         f"{chaos.attempts} attempts <= {eng.max_attempts}"),
        ("no shuffle dirs leaked", not stale, f"{stale or 'clean'}"),
        ("shuffle faults absorbed in place",
         eng2.restarts == 0
         and _dist_canonical(app, absorbed.output) == baseline
         and injector.injections >= len(plan.rules),
         f"fired {fired}, {eng2.restarts} restarts"),
    ]


def dist_kill_exchange_case(
    seed: int, quick: bool, trace_dir: str | None
) -> list:
    """Kill a reduce owner mid-exchange; replay reuses surviving artifacts.

    Two recovery modes over the same fault: the partial-restart engine
    must finish in ONE attempt with zero full restarts, and a corrupted
    write under :func:`recovery_chaos_plan` must be caught by the frame
    crc and repaired by rebuilding exactly one artifact (deduping every
    surviving transfer on replay).  The legacy engine
    (``partial_restart=False``) burns a whole attempt on the same kill —
    and must clean the failed attempt's shuffle dirs once the retry
    commits.
    """
    app = "wordcount"
    bed, job = _dist_job(app, seed, quick)
    eng = DistributedEngine(bed.cluster)
    clean = bed.run(eng.run(job, timeout=SIM_TIMEOUT))
    baseline = _dist_canonical(app, clean.output)
    victims = [
        n for n in clean.reduce_nodes.values() if n != clean.merge_node
    ]
    victim = victims[0] if victims else clean.merge_node
    kill_at = (
        clean.timeline["map_done"] + clean.timeline["exchange_done"]
    ) / 2

    def killer(bed, victim, at):
        def go():
            yield bed.sim.timeout(at)
            bed.cluster.sd_daemons[victim].kill()
        return go()

    bed, job = _dist_job(app, seed, quick)
    eng = DistributedEngine(bed.cluster)
    bed.sim.spawn(killer(bed, victim, kill_at), name=f"chaos.kill-{victim}")
    chaos = bed.run(eng.run(job, timeout=DIST_TIMEOUT))
    stale = _stale_shuffle_dirs(bed, chaos.job_id)

    # corrupted artifact: persistent on-disk damage, repaired in place
    bed2, job2 = _dist_job(app, seed, quick)
    injector = bed2.sim.install_faults(recovery_chaos_plan(seed))
    eng2 = DistributedEngine(bed2.cluster)
    repaired = bed2.run(eng2.run(job2, timeout=SIM_TIMEOUT))

    # legacy mode: the same kill costs a whole attempt, then cleanup
    bed3, job3 = _dist_job(app, seed, quick)
    eng3 = DistributedEngine(bed3.cluster, partial_restart=False)
    bed3.sim.spawn(killer(bed3, victim, kill_at), name=f"chaos.kill-{victim}")
    legacy = bed3.run(eng3.run(job3, timeout=DIST_TIMEOUT))
    legacy_stale = _stale_shuffle_dirs(bed3, legacy.job_id)

    if trace_dir:
        write_chrome(
            bed.sim.obs,
            os.path.join(trace_dir, "chaos-dist-kill-exchange.json"),
            extra={"killed": victim, "kill_at": kill_at},
        )
    return [
        ("output identical",
         _dist_canonical(app, chaos.output) == baseline,
         f"{len(baseline)} bytes after killing {victim} at "
         f"t={kill_at:.3f}s"),
        ("partial restart, same attempt",
         chaos.attempts == 1 and eng.partial_restarts >= 1
         and eng.full_restarts == 0
         and victim not in chaos.reduce_nodes.values()
         and chaos.merge_node != victim
         and victim in chaos.shard_nodes,
         f"{chaos.attempts} attempt(s), {eng.partial_restarts} partial "
         f"restarts, dead mapper's artifact reused, reduce moved to "
         f"{sorted(set(chaos.reduce_nodes.values()))}"),
        ("corrupt artifact repaired in place",
         _dist_canonical(app, repaired.output) == baseline
         and repaired.attempts == 1 and eng2.full_restarts == 0
         and eng2.partial_restarts >= 1
         and repaired.recovery["dedup_transfers"] >= 1
         and injector.fired_by_site().get("shuffle.artifact", 0) >= 1,
         f"{eng2.partial_restarts} partial restarts, "
         f"{repaired.recovery['dedup_transfers']} transfers deduped"),
        ("legacy mode still restarts whole job",
         _dist_canonical(app, legacy.output) == baseline
         and legacy.attempts == 2 and eng3.full_restarts == 1,
         f"{legacy.attempts} attempts, {eng3.full_restarts} full restarts"),
        ("no shuffle dirs leaked", not stale and not legacy_stale,
         f"{(stale + legacy_stale) or 'clean'}"),
    ]


def dist_straggler_case(seed: int, quick: bool, trace_dir: str | None) -> list:
    """Stall one map dispatch; speculation outruns the straggler."""
    app = "wordcount"
    bed, job = _dist_job(app, seed, quick)
    eng = DistributedEngine(bed.cluster)
    clean = bed.run(eng.run(job, timeout=SIM_TIMEOUT))
    baseline = _dist_canonical(app, clean.output)
    victim = clean.shard_nodes[0]
    stall = max(4.0 * clean.timeline["map_done"], 1.0)

    bed, job = _dist_job(app, seed, quick)
    bed.sim.install_faults(FaultPlan(rules=(
        FaultRule("fam.dispatch", action="delay", count=1, delay=stall,
                  where={"module": "dist_map", "node": victim}),
    ), seed=seed))
    eng = DistributedEngine(
        bed.cluster,
        speculation=SpeculationPolicy(multiplier=1.3, min_wait=0.02),
    )
    chaos = bed.run(eng.run(job, timeout=SIM_TIMEOUT))
    spec = chaos.recovery["speculation"]

    if trace_dir:
        write_chrome(
            bed.sim.obs,
            os.path.join(trace_dir, "chaos-dist-straggler.json"),
            extra={"victim": victim, "stall": stall},
        )
    return [
        ("output identical",
         _dist_canonical(app, chaos.output) == baseline,
         f"{len(baseline)} bytes with {victim} stalled {stall:.2f}s"),
        ("speculation launched and won",
         spec["launched"] >= 1 and spec["won"] >= 1,
         f"launched {spec['launched']}, won {spec['won']}, "
         f"cancelled {spec['cancelled']}"),
        ("no restarts", chaos.attempts == 1 and eng.restarts == 0,
         f"{chaos.attempts} attempt(s), {eng.restarts} restarts"),
        ("straggler off the critical path",
         chaos.elapsed < clean.elapsed + stall,
         f"{chaos.elapsed:.3f}s vs clean {clean.elapsed:.3f}s + "
         f"stall {stall:.2f}s"),
    ]


def sched_flaky_heartbeat_case(
    seed: int, quick: bool, trace_dir: str | None
) -> list:
    """Drop one node's heartbeats for a window; it must quarantine AND
    rejoin through probation, completing work again after the window.

    The daemon stays alive the whole time — only its pings vanish — so
    this is the failure detector's false-positive path: the node is
    pulled from dispatch on suspicion alone, then earns its way back in
    once beats resume, with every admitted job still completing
    byte-identically.
    """
    n_jobs = 20
    rate = 2.0
    drop_window = (3.0, 9.0)
    bed = Testbed(config=table1_cluster(n_sd=2, seed=seed), seed=seed)
    inp = text_input("/data/s", MB(20), payload_bytes=6_000, seed=seed)
    _, sd_path = bed.stage_replicated("s", inp)
    bed.sim.install_faults(FaultPlan(rules=(
        FaultRule("heartbeat.drop", action="drop",
                  where={"node": "sd0"}, window=drop_window),
    ), seed=seed))
    sched = ClusterScheduler(
        bed.cluster,
        attempt_timeout=SCHED_TIMEOUT,
        per_node_limit=1,
        max_queue=n_jobs + 1,
        cache=None,
        heartbeat=True,
    )

    def factory(i: int) -> DataJob:
        return DataJob(
            app="wordcount", input_path=sd_path, input_size=inp.size,
            mode="parallel",
        )

    stream = ArrivalProcess.poisson(factory, rate=rate, n=n_jobs, seed=seed)

    def scenario():
        report = yield stream.drive(sched)
        # the stream may drain before the probation window opens: wait for
        # beats to resume, then hand the rejoining node its canary job
        for _ in range(80):
            if sched.health.state["sd0"] != "quarantined":
                break
            yield bed.sim.timeout(0.25)
        canary = factory(-1)
        canary = dataclasses.replace(canary, sd_node="sd0")
        yield sched.submit(canary)
        return report

    report = bed.run(scenario())

    baseline = pickle.dumps(report.completed[0][2].output)
    mismatched = [
        i for i, (_, _, res) in enumerate(report.completed)
        if pickle.dumps(res.output) != baseline
    ]
    counters = bed.sim.obs.metrics.snapshot()["counters"]
    rejoined_work = [
        rec for rec in sched.completed
        if rec.where == "sd0" and rec.dispatched_at >= drop_window[1]
    ]

    if trace_dir:
        write_chrome(
            bed.sim.obs,
            os.path.join(trace_dir, "chaos-sched-flaky-heartbeat.json"),
            extra={"stats": sched.stats()},
        )
    return [
        ("all admitted completed",
         not report.failed and report.admitted == len(report.completed),
         f"{len(report.completed)} completed, {len(report.failed)} failed"),
        ("outputs identical", not mismatched and len(report.completed) > 0,
         f"{len(report.completed)} outputs vs first completion"),
        ("flaky node quarantined",
         counters.get("node.quarantined", 0) >= 1,
         f"{int(counters.get('node.quarantined', 0))} quarantines, "
         f"{int(counters.get('node.suspected', 0))} suspicions"),
        ("node rejoined via probation",
         counters.get("node.probation", 0) >= 1
         and counters.get("node.rejoined", 0) >= 1,
         f"{int(counters.get('node.probation', 0))} probations, "
         f"{int(counters.get('node.rejoined', 0))} rejoins"),
        ("rejoined node completed work",
         bool(rejoined_work),
         f"{len(rejoined_work)} completions on sd0 after "
         f"t={drop_window[1]:.1f}s"),
        ("ends healthy", sched.stats()["node_states"].get("sd0") == "healthy",
         f"states {sched.stats()['node_states']}"),
    ]


# -- real-engine case --------------------------------------------------------


def _wc_map(data, emit, params):
    # module-level: crosses the multiprocessing pickle boundary
    for token in data.split():
        emit(token, 1)


def _wc_combine(a, b):
    return a + b


def _make_engine_input(tmpdir: str, quick: bool) -> str:
    words = [f"word{i:04d}".encode() for i in range(500)]
    repeats = 30_000 if quick else 120_000
    blob = b" ".join(words[(i * 7) % len(words)] for i in range(repeats))
    path = os.path.join(tmpdir, "chaos-input.txt")
    with open(path, "wb") as f:
        f.write(blob)
    return path


def _run_engine_once(path: str, seed: int, chaos: bool, trace: bool):
    obs = Observability(enabled=trace)
    engine = LocalMapReduce(
        _wc_map,
        combine_fn=_wc_combine,
        n_workers=2,
        memory_budget=128 * 1024,
        obs=obs,
        faults=standard_engine_plan(seed) if chaos else None,
    )
    try:
        result = engine.run(path, chunk_bytes=32 * 1024)
    finally:
        engine.close()
    return pickle.dumps(result.output), engine, result


def engine_case(seed: int, quick: bool, trace_dir: str | None) -> list:
    """All gate checks for the real out-of-core engine under chaos."""
    install_signal_cleanup()  # SIGTERM must not leak spill dirs either
    with tempfile.TemporaryDirectory(prefix="chaos-soak-") as tmpdir:
        path = _make_engine_input(tmpdir, quick)
        baseline, _, base_res = _run_engine_once(path, seed, chaos=False, trace=False)
        output, engine, res = _run_engine_once(
            path, seed, chaos=True, trace=bool(trace_dir)
        )
        output2, engine2, _ = _run_engine_once(path, seed, chaos=True, trace=False)

        fired = engine.faults.fired_by_site()
        plan = standard_engine_plan(seed)
        missing = [r.site for r in plan.rules if fired.get(r.site, 0) == 0]
        counters = engine.obs.metrics.snapshot()["counters"]
        leftover = live_spill_dirs() + glob.glob(
            os.path.join(tempfile.gettempdir(), "localmr-spill-*")
        )
        children = mp.active_children()

        if trace_dir:
            write_chrome(
                engine.obs,
                os.path.join(trace_dir, "chaos-engine.json"),
                extra={"faults": fired},
            )
        return [
            ("output identical", output == baseline,
             f"{len(baseline)} bytes, {base_res.n_fragments} fragments"),
            ("all rules fired", not missing,
             f"fired {fired}" + (f", missing {missing}" if missing else "")),
            ("worker respawned", engine.pool.respawns >= 1,
             f"{engine.pool.respawns} respawns"),
            ("fragment recomputed", counters.get("localmr.recompute", 0) >= 1,
             f"{counters.get('localmr.recompute', 0)} recomputes"),
            ("injection reproducible",
             engine.faults.signatures() == engine2.faults.signatures()
             and output2 == baseline,
             f"{engine.faults.injections} injections"),
            ("retries bounded",
             engine.pool.redispatches <= engine.pool.max_task_retries
             * (res.n_chunks + 1),
             f"{engine.pool.redispatches} redispatches"),
            ("no spill dirs leaked", not leftover, f"{leftover or 'clean'}"),
            ("no worker processes leaked", not children,
             f"{[c.pid for c in children] or 'clean'}"),
        ]


# -- transport case ----------------------------------------------------------


def _run_transport_once(path: str, seed: int, plan=None):
    """One shm-transport run; returns output bytes, engine, result, and the
    shm segment name the run used (None when shm was unavailable)."""
    obs = Observability(enabled=False)
    engine = LocalMapReduce(
        _wc_map,
        combine_fn=_wc_combine,
        n_workers=2,
        obs=obs,
        faults=plan,
        transport="shm",
    )
    try:
        result = engine.run(path, chunk_bytes=32 * 1024)
        transport = engine.pool.ensure_transport()
        shm_name = transport.shm_name if transport.name == "shm" else None
    finally:
        engine.close()
    return pickle.dumps(result.output), engine, result, shm_name


def transport_case(seed: int, quick: bool, trace_dir: str | None) -> list:
    """Kill a worker mid-slot-write, corrupt a frame after its crc.

    The ring's recovery contract: a worker dead with half a frame in its
    slot costs a respawn and a re-dispatch (the slot is released when the
    doomed future is consumed, then simply overwritten); a corrupt frame
    is caught by the parent's crc verify as a retryable
    ``TransportCorruptionError``.  Either way the answer is byte-identical
    to the fault-free run and the shm segment is unlinked at close.

    Skip-ok: where POSIX shared memory is unavailable the transport
    degrades to pickle and the ``transport.slot`` site is dormant — the
    case reports the skip instead of asserting coverage it cannot get.
    """
    with tempfile.TemporaryDirectory(prefix="chaos-soak-") as tmpdir:
        path = _make_engine_input(tmpdir, quick)
        baseline, _, base_res, base_shm = _run_transport_once(path, seed)
        if base_shm is None or base_res.transport != "shm":
            return [("shm transport available", True,
                     "skipped: shm unavailable here, ring degraded to pickle")]
        plan = transport_chaos_plan(seed)
        output, engine, res, shm_name = _run_transport_once(path, seed, plan)
        output2, engine2, _, _ = _run_transport_once(path, seed, plan)
        # the crc check needs a corrupt-only run: in the combined plan the
        # kill can break the pool before the corrupted frame is consumed,
        # discarding it as a doomed future without ever reaching the
        # parent's verify.  A single corrupt rule has no such race.
        corrupt_plan = FaultPlan(
            rules=(FaultRule("transport.slot", action="corrupt", count=1,
                             where={"index": 0}),),
            seed=seed,
        )
        coutput, cengine, _, _ = _run_transport_once(path, seed, corrupt_plan)
        crc_rejections = int(
            cengine.obs.metrics.snapshot()["counters"].get("transport.corrupt", 0)
        )

        fired = engine.faults.fired_by_site()
        actions = sorted(sig[2] for sig in engine.faults.signatures())
        children = mp.active_children()
        segment_gone = not os.path.exists(os.path.join("/dev/shm", shm_name))
        return [
            ("output identical", output == baseline,
             f"{len(baseline)} bytes over transport={res.transport}"),
            ("all rules fired",
             fired.get("transport.slot", 0) >= len(plan.rules)
             and actions == ["corrupt", "kill"],
             f"fired {fired}, actions {actions}"),
            ("worker respawned", engine.pool.respawns >= 1,
             f"{engine.pool.respawns} respawns"),
            ("corrupt frame caught",
             crc_rejections >= 1 and coutput == baseline,
             f"{crc_rejections} crc rejections, output "
             f"{'identical' if coutput == baseline else 'DIVERGED'}"),
            ("injection reproducible",
             engine.faults.signatures() == engine2.faults.signatures()
             and output2 == baseline,
             f"{engine.faults.injections} injections"),
            ("retries bounded",
             engine.pool.redispatches
             <= engine.pool.max_task_retries * (res.n_chunks + 1),
             f"{engine.pool.redispatches} redispatches"),
            ("shm segment unlinked", segment_gone,
             f"/dev/shm/{shm_name} {'gone' if segment_gone else 'LEAKED'}"),
            ("no worker processes leaked", not children,
             f"{[c.pid for c in children] or 'clean'}"),
        ]


# -- tier case ---------------------------------------------------------------

#: chaos tier sized against the ~16 KB runs the wordcount input spills:
#: one run of mem (every admit demotes its predecessor) and seven runs
#: of SSD for the 8-run workload (capacity eviction fires, but enough
#: runs stay resident that every tier.read rule reaches its firing
#: index during the merge's warm reads)
_TIER_CHAOS_MEM = 20 * 1024
_TIER_CHAOS_SSD = 112 * 1024
#: smaller fragments than the engine case -> ~6 runs even in --quick,
#: enough warm reads for every tier.read rule to reach its firing index
_TIER_CHAOS_BUDGET = 48 * 1024
_TIER_CHAOS_CHUNK = 16 * 1024
#: each disruption class (lost run, degraded read, corrupt read) can
#: cost one merge attempt, so the stacked plan needs a deeper budget
#: than the engine default
_TIER_CHAOS_RETRIES = 4


def _run_tier_once(path: str, seed: int, chaos: bool, trace: bool,
                   background: bool = False):
    """One out-of-core run through a deliberately tiny burst buffer.

    The store and the engine share one injector, so ``tier.*`` and
    engine-side sites draw from the same plan.  ``background`` enables
    the real write-back drain thread; the deterministic (synchronous)
    variant is what the coverage and reproducibility checks run on,
    because a background drain interleaves its fault decisions with the
    engine thread's and the injection order stops being a pure function
    of the seed.
    """
    obs = Observability(enabled=trace)
    inj = FaultInjector(tier_chaos_plan(seed), obs=obs) if chaos else None
    store = TieredStore(
        _TIER_CHAOS_MEM, _TIER_CHAOS_SSD,
        obs=obs, faults=inj, writeback=background, name="chaos-tier",
    )
    engine = LocalMapReduce(
        _wc_map,
        combine_fn=_wc_combine,
        n_workers=2,
        memory_budget=_TIER_CHAOS_BUDGET,
        obs=obs,
        faults=inj,
        tier=store,
        readahead=1,
        spill_retries=_TIER_CHAOS_RETRIES,
    )
    tier_dir = store.ssd_dir
    try:
        result = engine.run(path, chunk_bytes=_TIER_CHAOS_CHUNK)
    finally:
        engine.close()
        store.close()
    return pickle.dumps(result.output), engine, result, tier_dir


def tier_kill_writeback_case(seed: int, quick: bool, trace_dir: str | None) -> list:
    """Kill write-backs, degrade and corrupt warm reads, wedge an eviction.

    The burst buffer's contract under fire: every entry the tier loses
    (dropped write-back, degraded read, capacity eviction racing the
    merge) degrades to a recompute from the durable input file, and a
    corrupted warm read is caught by the spill framing's crc — so the
    output stays byte-identical to a tier-less run and no tier directory
    survives ``close()``.  Loss costs time, never answers.
    """
    install_signal_cleanup()
    with tempfile.TemporaryDirectory(prefix="chaos-soak-") as tmpdir:
        path = _make_engine_input(tmpdir, quick)
        baseline, _, base_res, _ = _run_tier_once(
            path, seed, chaos=False, trace=False,
        )
        output, engine, res, tier_dir = _run_tier_once(
            path, seed, chaos=True, trace=bool(trace_dir),
        )
        output2, engine2, _, _ = _run_tier_once(
            path, seed, chaos=True, trace=False,
        )
        # the real background drain thread, gated on the answer and the
        # leak check only (its injection interleaving is not seeded)
        output_bg, _, _, tier_dir_bg = _run_tier_once(
            path, seed, chaos=True, trace=False, background=True,
        )

        fired = engine.faults.fired_by_site()
        plan = tier_chaos_plan(seed)
        want = {(r.site, r.action) for r in plan.rules}
        actions = {(sig[1], sig[2]) for sig in engine.faults.signatures()}
        missing = sorted(f"{s}:{a}" for s, a in want - actions)
        counters = engine.obs.metrics.snapshot()["counters"]
        leftover_tiers = live_tier_dirs() + [
            d for d in (tier_dir, tier_dir_bg) if os.path.isdir(d)
        ]
        leftover_spills = live_spill_dirs() + glob.glob(
            os.path.join(tempfile.gettempdir(), "localmr-spill-*")
        )

        if trace_dir:
            write_chrome(
                engine.obs,
                os.path.join(trace_dir, "chaos-tier.json"),
                extra={"faults": fired},
            )
        return [
            ("output identical", output == baseline,
             f"{len(baseline)} bytes, {res.n_fragments} runs through the tier"),
            ("background drain identical", output_bg == baseline,
             "write-back thread on"),
            ("all rules fired", not missing,
             f"fired {fired}" + (f", missing {missing}" if missing else "")),
            ("lost write-back recomputed",
             counters.get("tier.writeback.lost", 0) >= 1
             and counters.get("tier.spill.lost", 0) >= 1
             and counters.get("localmr.recompute", 0) >= 1,
             f"{int(counters.get('tier.writeback.lost', 0))} lost, "
             f"{int(counters.get('tier.spill.lost', 0))} found by sweep, "
             f"{int(counters.get('localmr.recompute', 0))} recomputes"),
            ("eviction pressure exercised",
             counters.get("tier.evict.stuck", 0) >= 1
             and counters.get("tier.demote", 0) >= 1,
             f"{int(counters.get('tier.evict.stuck', 0))} wedged, "
             f"{int(counters.get('tier.evict.capacity', 0))} evicted, "
             f"{int(counters.get('tier.demote', 0))} demoted"),
            ("injection reproducible",
             engine.faults.signatures() == engine2.faults.signatures()
             and output2 == baseline,
             f"{engine.faults.injections} injections"),
            ("retries bounded",
             counters.get("retry.spill_merge", 0) <= _TIER_CHAOS_RETRIES,
             f"{int(counters.get('retry.spill_merge', 0))} merge retries "
             f"(budget {_TIER_CHAOS_RETRIES})"),
            ("no tier dirs leaked", not leftover_tiers,
             f"{leftover_tiers or 'clean'}"),
            ("no spill dirs leaked", not leftover_spills,
             f"{leftover_spills or 'clean'}"),
        ]


# -- driver ------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="CI smoke: one sim app, smaller engine input")
    ap.add_argument("--seed", type=int, default=7, help="fault plan seed")
    ap.add_argument("--trace", default=None, metavar="DIR",
                    help="export one Chrome trace per case into DIR")
    ap.add_argument("--dump-dir", default=os.environ.get("REPRO_BLACKBOX_DIR"),
                    metavar="DIR",
                    help="dump flight-recorder black boxes here on failure")
    ap.add_argument("--only", default=None, metavar="SUBSTR",
                    help="run only cases whose name contains SUBSTR")
    args = ap.parse_args(argv)

    if args.trace:
        os.makedirs(args.trace, exist_ok=True)
    if args.dump_dir:
        # arm the recorder on every registry the cases create (the
        # testbeds build their own; the default covers them all)
        _flight.install_default()

    apps = ["wordcount"] if args.quick else ["wordcount", "stringmatch", "matmul"]
    cases = [
        (f"sim:{app}", lambda app=app: sim_case(app, args.seed, args.quick, args.trace))
        for app in apps
    ]
    cases.append(("sched:kill-sd0",
                  lambda: sched_case(args.seed, args.quick, args.trace)))
    cases += [
        (f"dist:kill-shard:{app}",
         lambda app=app: dist_case(app, args.seed, args.quick, args.trace))
        for app in apps
    ]
    cases.append(("dist:kill-exchange",
                  lambda: dist_kill_exchange_case(
                      args.seed, args.quick, args.trace)))
    cases.append(("dist:straggler",
                  lambda: dist_straggler_case(
                      args.seed, args.quick, args.trace)))
    cases.append(("sched:flaky-heartbeat",
                  lambda: sched_flaky_heartbeat_case(
                      args.seed, args.quick, args.trace)))
    cases.append(("engine:wordcount",
                  lambda: engine_case(args.seed, args.quick, args.trace)))
    cases.append(("transport:kill-midslot",
                  lambda: transport_case(args.seed, args.quick, args.trace)))
    cases.append(("tier:kill-writeback",
                  lambda: tier_kill_writeback_case(
                      args.seed, args.quick, args.trace)))
    if args.only:
        cases = [(name, run) for name, run in cases if args.only in name]
        if not cases:
            print(f"chaos soak: no case matches --only {args.only!r}")
            return 2

    failures = 0
    dumped: list[str] = []
    for name, run in cases:
        print(f"== {name}")
        case_failed = []
        for check, ok, note in run():
            status = "ok  " if ok else "FAIL"
            print(f"  [{status}] {check:<28} {note}")
            if not ok:
                failures += 1
                case_failed.append(check)
        if case_failed and args.dump_dir:
            dumped += _flight.dump_live(
                args.dump_dir,
                reason=f"chaos check failed: {name}: {', '.join(case_failed)}",
            )
    print()
    if failures:
        msg = f"chaos soak: {failures} check(s) FAILED"
        if dumped:
            msg += "\nblack boxes:\n" + "\n".join(f"  {p}" for p in dumped)
        print(msg)
        return 1
    print("chaos soak: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
