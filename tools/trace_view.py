#!/usr/bin/env python3
"""Per-phase breakdown tables from an exported trace file.

Usage:
    python tools/trace_view.py TRACE.json [--root NAME] [--group name|cat]
                               [--tree] [--unit s|ms|us] [--max-depth N]

Reads either export format (Chrome-trace/Perfetto JSON or JSONL, see
:mod:`repro.obs.export`) and prints:

* the default view — the longest top-level span (the job) and a table of
  its direct children grouped by name: count, total, mean, percent of the
  job, plus the fraction of the job the phases cover;
* ``--root NAME`` — same table for a named span instead;
* ``--group cat`` — one table over *all* spans grouped by category
  (phoenix / smartfam / nfs / ...), useful for cross-cutting cost like
  NFS transfers;
* ``--tree`` — the indented span hierarchy with durations;
* a reliability section (injected faults, retries, failovers from the
  ``fault.*`` / ``retry.*`` / ``failover.*`` / ``pool.*`` counters)
  whenever the trace recorded any — chaos-soak traces always do.

Times are primary-clock seconds: simulated seconds for simulator traces,
wall seconds for real-engine and benchmark traces.
"""

from __future__ import annotations

import argparse
import os
import sys

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for p in (_REPO_ROOT, os.path.join(_REPO_ROOT, "src")):
    if p not in sys.path:
        sys.path.insert(0, p)

from repro.obs.export import (  # noqa: E402
    format_breakdown,
    load_metrics,
    load_spans,
    phase_breakdown,
)

#: counter prefixes that make up the reliability section
_RELIABILITY_PREFIXES = ("fault.", "retry.", "failover.", "pool.")


def group_by_cat(spans: list[dict], unit: str) -> str:
    """One table over all spans grouped by category."""
    scale = {"s": 1.0, "ms": 1e3, "us": 1e6}[unit]
    cats: dict[str, dict] = {}
    for s in spans:
        row = cats.setdefault(
            s.get("cat") or "(none)", {"count": 0, "total": 0.0}
        )
        row["count"] += 1
        row["total"] += s["dur"]
    header = f"{'category':<16} {'spans':>7} {'total':>14}"
    lines = [header, "-" * len(header)]
    for cat, row in sorted(cats.items(), key=lambda kv: -kv[1]["total"]):
        lines.append(
            f"{cat:<16} {row['count']:>7} {row['total'] * scale:>13.6g}{unit}"
        )
    return "\n".join(lines)


def tree_view(spans: list[dict], unit: str, max_depth: int) -> str:
    """The indented span hierarchy."""
    scale = {"s": 1.0, "ms": 1e3, "us": 1e6}[unit]
    by_parent: dict[object, list[dict]] = {}
    for s in spans:
        by_parent.setdefault(s.get("parent_id"), []).append(s)
    for kids in by_parent.values():
        kids.sort(key=lambda s: s["t0"])
    lines: list[str] = []

    def walk(span: dict, depth: int) -> None:
        if depth > max_depth:
            return
        indent = "  " * depth
        extra = ""
        attrs = span.get("attrs") or {}
        if attrs:
            keys = [k for k in ("module", "app", "seq", "bytes") if k in attrs]
            if keys:
                extra = " (" + ", ".join(f"{k}={attrs[k]}" for k in keys) + ")"
        lines.append(
            f"{indent}{span['name']:<{max(1, 40 - 2 * depth)}} "
            f"{span['dur'] * scale:>12.6g}{unit}  [{span.get('track', '')}]"
            f"{extra}"
        )
        for child in by_parent.get(span["id"], []):
            walk(child, depth + 1)

    for root in by_parent.get(None, []):
        walk(root, 0)
    return "\n".join(lines)


def reliability_view(metrics: dict) -> str:
    """The fault/retry/failover counter table ("" when the run was calm)."""
    counters = metrics.get("counters") or {}
    rows = sorted(
        (name, value)
        for name, value in counters.items()
        if name.startswith(_RELIABILITY_PREFIXES)
    )
    if not rows:
        return ""
    width = max(len(name) for name, _ in rows)
    lines = ["reliability counters", "-" * max(20, width + 8)]
    lines += [f"{name:<{width}} {value:>7}" for name, value in rows]
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("trace", help="trace file (Chrome JSON or JSONL)")
    ap.add_argument("--root", default=None, help="break down this named span")
    ap.add_argument(
        "--group", choices=("name", "cat"), default="name",
        help="group the root's children by name (default) or all spans by cat",
    )
    ap.add_argument("--tree", action="store_true", help="print the span tree")
    ap.add_argument("--unit", choices=("s", "ms", "us"), default="s")
    ap.add_argument("--max-depth", type=int, default=6)
    args = ap.parse_args(argv)

    spans = load_spans(args.trace)
    if not spans:
        print("no spans in trace", file=sys.stderr)
        return 1
    print(f"{len(spans)} spans from {args.trace}\n")

    reliability = reliability_view(load_metrics(args.trace))
    if args.tree:
        print(tree_view(spans, args.unit, args.max_depth))
    elif args.group == "cat":
        print(group_by_cat(spans, args.unit))
    else:
        breakdown = phase_breakdown(spans, root_name=args.root)
        print(format_breakdown(breakdown, time_unit=args.unit))
    if reliability:
        print("\n" + reliability)
    return 0


if __name__ == "__main__":
    sys.exit(main())
