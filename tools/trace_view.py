#!/usr/bin/env python3
"""Per-phase breakdown tables from an exported trace file.

Usage:
    python tools/trace_view.py TRACE.json [--root NAME] [--group name|cat]
                               [--tree] [--unit s|ms|us] [--max-depth N]
    python tools/trace_view.py critpath TRACE.json [--root NAME]
                               [--containment] [--unit s|ms|us]

Reads either export format (Chrome-trace/Perfetto JSON or JSONL, see
:mod:`repro.obs.export`) and prints:

* the default view — the longest top-level span (the job) and a table of
  its direct children grouped by name: count, total, mean, percent of the
  job, plus the fraction of the job the phases cover;
* ``--root NAME`` — same table for a named span instead;
* ``--group cat`` — one table over *all* spans grouped by category
  (phoenix / smartfam / nfs / ...), useful for cross-cutting cost like
  NFS transfers;
* ``--tree`` — the indented span hierarchy with durations;
* ``critpath`` (leading view selector) — the critical path through the
  root span with per-edge slack and a by-name rollup
  (:mod:`repro.obs.critpath`); ``--containment`` links spans by interval
  containment across tracks instead of parent ids — the right mode for
  scheduler traces whose ``sched:jN`` and node tracks carry no cross-track
  links;
* a reliability section (injected faults, retries, failovers from the
  ``fault.*`` / ``retry.*`` / ``failover.*`` / ``pool.*`` counters)
  whenever the trace recorded any — chaos-soak traces always do;
* a scheduler section (queue depth over time from the
  ``sched.queue_depth`` series, admissions/rejections, per-tenant
  completions, cache hit rate, and latency percentiles from the
  ``sched.*`` counters and histograms) whenever the trace came from a
  run served through ``ClusterScheduler``;
* a distributed section (``shuffle.bytes`` / ``shuffle.partitions`` /
  ``shuffle.transfers`` and the ``dist.*`` invoke/restart counters)
  whenever the trace came from a ``DistributedEngine`` run — the
  ``shuffle.exchange`` leg itself lands on the job's ``dist:*`` track,
  so ``critpath --containment --root dist.job`` shows the exchange on
  the critical path when it dominates;
* a tier section (burst-buffer hit-rate table across the cache
  hierarchy's levels, promotion/demotion and eviction-by-cause counters,
  write-back volume/losses, and the prefetch-win breakdown — how many
  prefetched blocks a later read actually consumed) whenever the run
  touched a tier (``tier.*`` counters present);
* a recovery section (partial vs full restart counters, speculation
  launches and win rate, node quarantine/probation/rejoin transitions,
  and per-node suspicion sparklines from the ``node.suspicion.<name>``
  series) whenever the run exercised the failure-recovery machinery.

Times are primary-clock seconds: simulated seconds for simulator traces,
wall seconds for real-engine and benchmark traces.
"""

from __future__ import annotations

import argparse
import os
import sys

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for p in (_REPO_ROOT, os.path.join(_REPO_ROOT, "src")):
    if p not in sys.path:
        sys.path.insert(0, p)

from repro.obs.critpath import (  # noqa: E402
    critical_path,
    format_critical_path,
    job_critical_path,
)
from repro.obs.export import (  # noqa: E402
    format_breakdown,
    load_metrics,
    load_run_id,
    load_series,
    load_spans,
    phase_breakdown,
)

#: counter prefixes that make up the reliability section
_RELIABILITY_PREFIXES = ("fault.", "retry.", "failover.", "pool.")


def group_by_cat(spans: list[dict], unit: str) -> str:
    """One table over all spans grouped by category."""
    scale = {"s": 1.0, "ms": 1e3, "us": 1e6}[unit]
    cats: dict[str, dict] = {}
    for s in spans:
        row = cats.setdefault(
            s.get("cat") or "(none)", {"count": 0, "total": 0.0}
        )
        row["count"] += 1
        row["total"] += s["dur"]
    header = f"{'category':<16} {'spans':>7} {'total':>14}"
    lines = [header, "-" * len(header)]
    for cat, row in sorted(cats.items(), key=lambda kv: -kv[1]["total"]):
        lines.append(
            f"{cat:<16} {row['count']:>7} {row['total'] * scale:>13.6g}{unit}"
        )
    return "\n".join(lines)


def tree_view(spans: list[dict], unit: str, max_depth: int) -> str:
    """The indented span hierarchy."""
    scale = {"s": 1.0, "ms": 1e3, "us": 1e6}[unit]
    by_parent: dict[object, list[dict]] = {}
    for s in spans:
        by_parent.setdefault(s.get("parent_id"), []).append(s)
    for kids in by_parent.values():
        kids.sort(key=lambda s: s["t0"])
    lines: list[str] = []

    def walk(span: dict, depth: int) -> None:
        if depth > max_depth:
            return
        indent = "  " * depth
        extra = ""
        attrs = span.get("attrs") or {}
        if attrs:
            keys = [k for k in ("module", "app", "seq", "bytes") if k in attrs]
            if keys:
                extra = " (" + ", ".join(f"{k}={attrs[k]}" for k in keys) + ")"
        lines.append(
            f"{indent}{span['name']:<{max(1, 40 - 2 * depth)}} "
            f"{span['dur'] * scale:>12.6g}{unit}  [{span.get('track', '')}]"
            f"{extra}"
        )
        for child in by_parent.get(span["id"], []):
            walk(child, depth + 1)

    for root in by_parent.get(None, []):
        walk(root, 0)
    return "\n".join(lines)


def reliability_view(metrics: dict) -> str:
    """The fault/retry/failover counter table ("" when the run was calm)."""
    counters = metrics.get("counters") or {}
    rows = sorted(
        (name, value)
        for name, value in counters.items()
        if name.startswith(_RELIABILITY_PREFIXES)
    )
    if not rows:
        return ""
    width = max(len(name) for name, _ in rows)
    lines = ["reliability counters", "-" * max(20, width + 8)]
    lines += [f"{name:<{width}} {value:>7}" for name, value in rows]
    return "\n".join(lines)


def distributed_view(metrics: dict) -> str:
    """The shuffle/dist counter table ("" when no distributed run)."""
    counters = metrics.get("counters") or {}
    rows = sorted(
        (name, value)
        for name, value in counters.items()
        if name.startswith(("shuffle.", "dist."))
    )
    if not rows:
        return ""
    width = max(len(name) for name, _ in rows)
    lines = ["distributed shuffle", "-" * max(20, width + 10)]
    for name, value in rows:
        unit = " B" if name == "shuffle.bytes" else ""
        lines.append(f"{name:<{width}} {int(value):>9}{unit}")
    return "\n".join(lines)


def tier_view(metrics: dict) -> str:
    """The burst-buffer section ("" when no tier was in the path).

    Three blocks: the hit table (where reads were answered), the
    lifecycle counters (promotions, demotions, evictions by cause,
    write-back traffic and losses, warm-run reuse), and the prefetch-win
    breakdown (issued vs actually consumed by a later read).
    """
    counters = metrics.get("counters") or {}
    if not any(k.startswith("tier.") for k in counters):
        return ""

    def c(name: str) -> int:
        return int(counters.get(name, 0))

    lines = ["burst-buffer tier", "-" * 24]

    hit_mem, hit_ssd, miss = c("tier.hit.mem"), c("tier.hit.ssd"), c("tier.miss")
    lookups = hit_mem + hit_ssd + miss
    if lookups:
        lines.append(f"{'level':<12} {'hits':>8} {'share':>7}")
        for label, n in (("mem", hit_mem), ("ssd", hit_ssd), ("miss -> disk", miss)):
            lines.append(f"{label:<12} {n:>8} {n / lookups:>6.0%}")
        lines.append(
            f"hit rate: {(hit_mem + hit_ssd) / lookups:.0%} over {lookups} lookups"
        )
    hb, mb = c("tier.bytes.hit"), c("tier.bytes.miss")
    if hb or mb:
        lines.append(f"bytes: {hb} from tier, {mb} from disk")

    lifecycle = [
        ("tier.promote", "promotions (ssd -> mem)"),
        ("tier.demote", "demotions (mem -> ssd)"),
        ("tier.evict.capacity", "evictions: capacity"),
        ("tier.evict.invalidation", "evictions: invalidation"),
        ("tier.evict.stuck", "evictions: stuck (faulted)"),
        ("tier.writeback.bytes", "write-back bytes drained"),
        ("tier.writeback.retry", "write-back retries"),
        ("tier.writeback.lost", "write-back entries lost"),
        ("tier.read.degraded", "reads degraded to disk"),
        ("tier.read.corrupted", "reads corrupted (crc-caught)"),
        ("tier.spill.reuse", "warm spill runs reused"),
        ("tier.spill.lost", "spill runs recomputed (lost)"),
    ]
    rows = [(label, c(name)) for name, label in lifecycle if c(name)]
    if rows:
        width = max(len(label) for label, _ in rows)
        lines += [f"{label:<{width}} {value:>9}" for label, value in rows]

    issued = c("tier.prefetch.issued")
    if issued:
        won = c("tier.prefetch.hit")
        lines.append(
            f"prefetch: {issued} issued ({c('tier.prefetch.bytes')} B), "
            f"{won} consumed by reads"
            + (f" ({won / issued:.0%} win rate)" if won else "")
        )
        if c("tier.prefetch.failed"):
            lines.append(f"prefetch failures: {c('tier.prefetch.failed')}")
    return "\n".join(lines)


def _sparkline(
    label: str,
    times: list[float],
    values: list[float],
    width: int = 48,
    peak_fmt=int,
) -> str:
    """A time series as a fixed-width text sparkline."""
    if not values:
        return ""
    blocks = " ▁▂▃▄▅▆▇█"
    t0, t1 = times[0], times[-1]
    span = max(t1 - t0, 1e-12)
    # bucket by time, keeping each bucket's max (bursts matter)
    buckets = [0.0] * width
    for t, v in zip(times, values):
        i = min(width - 1, int((t - t0) / span * width))
        buckets[i] = max(buckets[i], v)
    peak = max(max(buckets), 1e-12)
    line = "".join(blocks[int(b / peak * (len(blocks) - 1))] for b in buckets)
    return (
        f"{label}  [{line}]  peak {peak_fmt(peak)} "
        f"({t0:.6g}s .. {t1:.6g}s)"
    )


def _depth_sparkline(times: list[float], values: list[float], width: int = 48) -> str:
    """Queue depth over time as a fixed-width text sparkline."""
    return _sparkline(
        "queue depth", times, values, width, peak_fmt=lambda p: int(max(p, 1.0))
    )


def scheduler_view(metrics: dict, series: dict) -> str:
    """The control-plane section ("" when the run was not scheduled)."""
    counters = metrics.get("counters") or {}
    sched = {k: v for k, v in counters.items() if k.startswith("sched.")}
    if not sched:
        return ""
    lines = ["scheduler", "-" * 24]

    depth = series.get("sched.queue_depth") or {}
    spark = _depth_sparkline(
        list(depth.get("times") or []), list(depth.get("values") or [])
    )
    if spark:
        lines.append(spark)

    def c(name: str) -> int:
        return int(counters.get(name, 0))

    lines.append(
        f"admitted {c('sched.admitted')}  rejected {c('sched.rejected')}  "
        f"dispatched {c('sched.dispatched')}  completed {c('sched.completed')}  "
        f"requeued {c('sched.requeued')}  failed {c('sched.failed')}"
    )
    hits, misses = c("sched.cache.hit"), c("sched.cache.miss")
    if hits or misses:
        rate = hits / max(1, hits + misses)
        lines.append(f"cache: {hits} hits / {misses} misses ({rate:.0%} hit rate)")

    tenants = sorted(
        name.split(".")[2]
        for name in sched
        if name.startswith("sched.tenant.") and name.endswith(".completed")
    )
    for tenant in tenants:
        lines.append(
            f"tenant {tenant}: {c(f'sched.tenant.{tenant}.completed')} jobs, "
            f"{int(counters.get(f'sched.tenant.{tenant}.work', 0))} bytes"
        )

    hists = metrics.get("histograms") or {}
    for name in ("sched.latency.queue", "sched.latency.run", "sched.latency.total"):
        h = hists.get(name)
        if h and h.get("count"):
            lines.append(
                f"{name}: p50 {h['p50']:.6g}s  p95 {h['p95']:.6g}s  "
                f"p99 {h['p99']:.6g}s  (n={h['count']})"
            )
    return "\n".join(lines)


#: counters that make up the recovery section, in display order
_RECOVERY_COUNTERS = (
    "dist.restart.partial",
    "dist.restart.full",
    "dist.transfer.dedup",
    "spec.launched",
    "spec.won",
    "spec.cancelled",
    "node.suspected",
    "node.quarantined",
    "node.probation",
    "node.rejoined",
)


def recovery_view(metrics: dict, series: dict) -> str:
    """The failure-recovery section ("" when the run never recovered).

    Partial/full restart and speculation counters from the distributed
    engine, node state-machine transitions from the heartbeat tracker,
    and a per-node suspicion sparkline from the ``node.suspicion.<name>``
    sample series.
    """
    counters = metrics.get("counters") or {}
    rows = [
        (name, int(counters[name]))
        for name in _RECOVERY_COUNTERS
        if counters.get(name)
    ]
    suspicion = sorted(
        (name.split(".", 2)[2], s)
        for name, s in (series or {}).items()
        if name.startswith("node.suspicion.")
    )
    if not rows and not suspicion:
        return ""
    lines = ["recovery", "-" * 24]
    if rows:
        width = max(len(name) for name, _ in rows)
        lines += [f"{name:<{width}} {value:>7}" for name, value in rows]
    launched, won = counters.get("spec.launched", 0), counters.get("spec.won", 0)
    if launched:
        lines.append(f"speculation win rate: {won / launched:.0%} ({int(won)}/{int(launched)})")
    for node, s in suspicion:
        spark = _sparkline(
            f"phi {node:<6}",
            list(s.get("times") or []),
            list(s.get("values") or []),
            peak_fmt=lambda p: f"{p:.2g}",
        )
        if spark:
            lines.append(spark)
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # leading view selector: "critpath TRACE" (extensible to other views)
    view = "breakdown"
    if argv and argv[0] == "critpath":
        view = argv.pop(0)
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("trace", help="trace file (Chrome JSON or JSONL)")
    ap.add_argument("--root", default=None, help="break down this named span")
    ap.add_argument(
        "--group", choices=("name", "cat"), default="name",
        help="group the root's children by name (default) or all spans by cat",
    )
    ap.add_argument("--tree", action="store_true", help="print the span tree")
    ap.add_argument(
        "--containment", action="store_true",
        help="critpath: link spans by interval containment across tracks",
    )
    ap.add_argument("--unit", choices=("s", "ms", "us"), default="s")
    ap.add_argument("--max-depth", type=int, default=6)
    args = ap.parse_args(argv)

    spans = load_spans(args.trace)
    if not spans:
        print("no spans in trace", file=sys.stderr)
        return 1
    run_id = load_run_id(args.trace)
    provenance = f" (run {run_id})" if run_id else ""
    print(f"{len(spans)} spans from {args.trace}{provenance}\n")

    metrics = load_metrics(args.trace)
    series = load_series(args.trace)
    reliability = reliability_view(metrics)
    scheduler = scheduler_view(metrics, series)
    distributed = distributed_view(metrics)
    tier = tier_view(metrics)
    recovery = recovery_view(metrics, series)
    if view == "critpath":
        if args.containment:
            cp = job_critical_path(
                spans, root_name=args.root or "job"
            )
        else:
            cp = critical_path(spans, root_name=args.root)
        print(format_critical_path(cp, time_unit=args.unit))
    elif args.tree:
        print(tree_view(spans, args.unit, args.max_depth))
    elif args.group == "cat":
        print(group_by_cat(spans, args.unit))
    else:
        breakdown = phase_breakdown(spans, root_name=args.root)
        print(format_breakdown(breakdown, time_unit=args.unit))
    if reliability:
        print("\n" + reliability)
    if scheduler:
        print("\n" + scheduler)
    if distributed:
        print("\n" + distributed)
    if tier:
        print("\n" + tier)
    if recovery:
        print("\n" + recovery)
    return 0


if __name__ == "__main__":
    sys.exit(main())
