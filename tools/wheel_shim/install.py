"""Install the offline `wheel` shim into the active site-packages.

Usage: python tools/wheel_shim/install.py

Copies the shim package and writes a .dist-info with the
``distutils.commands`` entry point so setuptools can discover the
``bdist_wheel`` command.  Skips installation if a real `wheel` is present.
"""

from __future__ import annotations

import os
import shutil
import site
import sys

HERE = os.path.dirname(os.path.abspath(__file__))


def main() -> int:
    # The script's own directory is on sys.path and contains the shim source;
    # drop it so we only detect a genuinely installed `wheel`.
    sys.path = [p for p in sys.path if os.path.abspath(p or os.getcwd()) != HERE]
    try:
        import wheel  # noqa: F401

        print(f"a `wheel` package is already installed ({wheel.__file__}); nothing to do")
        return 0
    except ImportError:
        pass

    target = site.getsitepackages()[0]
    pkg_dst = os.path.join(target, "wheel")
    if os.path.exists(pkg_dst):
        shutil.rmtree(pkg_dst)
    shutil.copytree(os.path.join(HERE, "wheel"), pkg_dst)

    dist_info = os.path.join(target, "wheel-0.43.0+mcsd.shim.dist-info")
    os.makedirs(dist_info, exist_ok=True)
    with open(os.path.join(dist_info, "METADATA"), "w") as f:
        f.write(
            "Metadata-Version: 2.1\n"
            "Name: wheel\n"
            "Version: 0.43.0+mcsd.shim\n"
            "Summary: offline shim of the wheel package (McSD repro sandbox)\n"
        )
    with open(os.path.join(dist_info, "entry_points.txt"), "w") as f:
        f.write("[distutils.commands]\nbdist_wheel = wheel.bdist_wheel:bdist_wheel\n")
    with open(os.path.join(dist_info, "INSTALLER"), "w") as f:
        f.write("wheel-shim-install\n")
    with open(os.path.join(dist_info, "RECORD"), "w") as f:
        for root, _dirs, files in os.walk(pkg_dst):
            for name in sorted(files):
                rel = os.path.relpath(os.path.join(root, name), target)
                f.write(f"{rel},,\n")
        for name in ("METADATA", "entry_points.txt", "INSTALLER", "RECORD"):
            f.write(f"{os.path.relpath(os.path.join(dist_info, name), target)},,\n")
    print(f"installed wheel shim into {target}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
