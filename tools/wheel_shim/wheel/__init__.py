"""Minimal offline shim of the `wheel` package.

This sandbox has no network access and no `wheel` distribution, but pip's
PEP 517/660 paths through setuptools 65.x require `wheel.wheelfile.WheelFile`
and the `bdist_wheel` distutils command.  This shim implements just enough
of both for `pip install .` and `pip install -e .` to work.

It is NOT part of the McSD reproduction library; see tools/wheel_shim/install.py.
"""

__version__ = "0.43.0+mcsd.shim"
