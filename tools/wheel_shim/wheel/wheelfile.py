"""WheelFile: a ZipFile that maintains the RECORD manifest (PEP 427)."""

from __future__ import annotations

import base64
import hashlib
import os
import re
import stat
import time
from zipfile import ZIP_DEFLATED, ZipFile, ZipInfo

_WHEEL_NAME_RE = re.compile(
    r"^(?P<namever>(?P<name>[^\s-]+?)-(?P<ver>[^\s-]+?))"
    r"(-(?P<build>\d[^\s-]*))?-(?P<pyver>[^\s-]+?)"
    r"-(?P<abi>[^\s-]+?)-(?P<plat>[^\s-]+?)\.whl$"
)


def _urlsafe_b64(data: bytes) -> str:
    return base64.urlsafe_b64encode(data).rstrip(b"=").decode("ascii")


class WheelFile(ZipFile):
    """Write-mode zip that records sha256 digests and emits RECORD on close."""

    def __init__(self, file, mode="r", compression=ZIP_DEFLATED):
        basename = os.path.basename(str(file))
        match = _WHEEL_NAME_RE.match(basename)
        if not match:
            raise ValueError(f"bad wheel filename: {basename!r}")
        self.parsed_filename = match
        self.dist_info_path = f"{match.group('namever')}.dist-info"
        self.record_path = f"{self.dist_info_path}/RECORD"
        self._file_hashes: dict[str, tuple[str, str] | tuple[None, None]] = {}
        self._file_sizes: dict[str, int] = {}
        ZipFile.__init__(self, file, mode, compression=compression, allowZip64=True)

    # -- writing ------------------------------------------------------------

    def write(self, filename, arcname=None, compress_type=None):
        with open(filename, "rb") as f:
            st = os.fstat(f.fileno())
            data = f.read()
        zinfo = ZipInfo(
            arcname or filename, date_time=time.localtime(st.st_mtime)[0:6]
        )
        zinfo.external_attr = (stat.S_IMODE(st.st_mode) | stat.S_IFMT(st.st_mode)) << 16
        zinfo.compress_type = compress_type or self.compression
        self.writestr(zinfo, data, compress_type)

    def writestr(self, zinfo_or_arcname, data, compress_type=None):
        if isinstance(data, str):
            data = data.encode("utf-8")
        ZipFile.writestr(self, zinfo_or_arcname, data, compress_type)
        fname = (
            zinfo_or_arcname.filename
            if isinstance(zinfo_or_arcname, ZipInfo)
            else zinfo_or_arcname
        )
        if fname != self.record_path:
            self._file_hashes[fname] = (
                "sha256",
                _urlsafe_b64(hashlib.sha256(data).digest()),
            )
            self._file_sizes[fname] = len(data)

    def write_files(self, base_dir):
        """Add every regular file under ``base_dir`` (deterministic order)."""
        deferred = []
        for root, dirnames, filenames in os.walk(base_dir):
            dirnames.sort()
            for name in sorted(filenames):
                path = os.path.normpath(os.path.join(root, name))
                if not os.path.isfile(path):
                    continue
                arcname = os.path.relpath(path, base_dir).replace(os.path.sep, "/")
                if arcname == self.record_path:
                    continue
                if arcname.startswith(self.dist_info_path):
                    deferred.append((path, arcname))
                else:
                    self.write(path, arcname)
        for path, arcname in sorted(deferred):
            self.write(path, arcname)

    def close(self):
        if self.fp is not None and self.mode == "w" and self._file_hashes:
            rows = []
            for fname in self._file_hashes:
                algo, digest = self._file_hashes[fname]
                hash_field = f"{algo}={digest}" if algo else ""
                rows.append(f"{fname},{hash_field},{self._file_sizes.get(fname, '')}")
            rows.append(f"{self.record_path},,")
            record = "\n".join(rows) + "\n"
            zinfo = ZipInfo(self.record_path, date_time=time.localtime()[0:6])
            zinfo.compress_type = self.compression
            zinfo.external_attr = (0o664 | stat.S_IFREG) << 16
            ZipFile.writestr(self, zinfo, record.encode("utf-8"))
        ZipFile.close(self)
