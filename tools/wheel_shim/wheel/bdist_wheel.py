"""A minimal bdist_wheel distutils command (pure-Python wheels only)."""

from __future__ import annotations

import os
import shutil
import sys
import sysconfig

from distutils import log
from distutils.core import Command

from .wheelfile import WheelFile

WHEEL_TEMPLATE = """\
Wheel-Version: 1.0
Generator: wheel-shim ({version})
Root-Is-Purelib: {purelib}
{tags}"""


def _python_tag() -> str:
    return f"py{sys.version_info[0]}"


class bdist_wheel(Command):
    description = "create a wheel distribution (pure-Python shim)"

    user_options = [
        ("bdist-dir=", "b", "temporary directory for creating the distribution"),
        ("dist-dir=", "d", "directory to put final built distributions in"),
        ("keep-temp", "k", "keep the pseudo-installation tree"),
        ("plat-name=", "p", "platform name to embed in generated filenames"),
        ("universal", None, "make a universal wheel (deprecated no-op)"),
        ("python-tag=", None, "Python implementation compatibility tag"),
        ("build-number=", None, "build tag"),
        ("py-limited-api=", None, "Python abiN tag for the wheel"),
        ("compression=", None, "zipfile compression"),
        ("owner=", "u", "Owner name used when creating a tar file"),
        ("group=", "g", "Group name used when creating a tar file"),
        ("skip-build", None, "skip rebuilding everything"),
        ("relative", None, "build the archive using relative paths"),
    ]

    boolean_options = ["keep-temp", "skip-build", "relative", "universal"]

    def initialize_options(self):
        self.bdist_dir = None
        self.dist_dir = None
        self.keep_temp = False
        self.plat_name = None
        self.universal = False
        self.python_tag = _python_tag()
        self.build_number = None
        self.py_limited_api = None
        self.compression = "deflated"
        self.owner = None
        self.group = None
        self.skip_build = False
        self.relative = False

    def finalize_options(self):
        if self.bdist_dir is None:
            bdist_base = self.get_finalized_command("bdist").bdist_base
            self.bdist_dir = os.path.join(bdist_base, "wheel")
        if self.dist_dir is None:
            self.dist_dir = "dist"
        self.root_is_pure = not (
            self.distribution.has_ext_modules() or self.distribution.has_c_libraries()
        )
        if not self.root_is_pure:
            raise RuntimeError(
                "wheel-shim only supports pure-Python distributions"
            )

    # -- API used by setuptools dist_info / editable_wheel --------------------

    def get_tag(self):
        """(python_tag, abi_tag, platform_tag) for a pure wheel."""
        return (self.python_tag, "none", "any")

    def wheel_dist_name(self):
        name = self.distribution.get_name().replace("-", "_")
        version = self.distribution.get_version().replace("-", "_")
        components = [name, version]
        if self.build_number:
            components.append(self.build_number)
        return "-".join(components)

    def write_wheelfile(self, wheelfile_base, generator=None):
        from . import __version__

        tags = "Tag: {}-{}-{}\n".format(*self.get_tag())
        content = WHEEL_TEMPLATE.format(
            version=__version__,
            purelib="true" if self.root_is_pure else "false",
            tags=tags,
        )
        path = os.path.join(wheelfile_base, "WHEEL")
        with open(path, "w", encoding="utf-8") as f:
            f.write(content)

    def egg2dist(self, egginfo_path, distinfo_path):
        """Convert an .egg-info directory into a .dist-info directory."""
        if os.path.exists(distinfo_path):
            shutil.rmtree(distinfo_path)
        os.makedirs(distinfo_path, exist_ok=True)
        pkginfo = os.path.join(egginfo_path, "PKG-INFO")
        if os.path.exists(pkginfo):
            shutil.copy(pkginfo, os.path.join(distinfo_path, "METADATA"))
        for extra in ("entry_points.txt", "top_level.txt"):
            src = os.path.join(egginfo_path, extra)
            if os.path.exists(src):
                shutil.copy(src, os.path.join(distinfo_path, extra))
        self.write_wheelfile(distinfo_path)

    # -- build ----------------------------------------------------------------

    def run(self):
        build_scripts = self.reinitialize_command("build_scripts")
        build_scripts.executable = "python"
        build_scripts.force = True

        if not self.skip_build:
            self.run_command("build")

        install = self.reinitialize_command("install", reinit_subcommands=True)
        install.root = self.bdist_dir
        install.compile = False
        install.skip_build = self.skip_build
        install.warn_dir = False

        install_scripts = self.reinitialize_command("install_scripts")
        install_scripts.no_ep = True

        # Pure-python: everything installs under purelib.
        basedir_observed = os.path.join(self.bdist_dir, "_fake_prefix")
        install.install_purelib = basedir_observed
        install.install_platlib = basedir_observed
        install.install_lib = basedir_observed
        install.install_headers = os.path.join(basedir_observed, "_headers")
        install.install_scripts = os.path.join(basedir_observed + "-data", "scripts")
        install.install_data = basedir_observed + "-data"

        log.info("installing to %s", self.bdist_dir)
        self.run_command("install")

        impl_tag, abi_tag, plat_tag = self.get_tag()
        archive_basename = f"{self.wheel_dist_name()}-{impl_tag}-{abi_tag}-{plat_tag}"
        if not os.path.exists(self.dist_dir):
            os.makedirs(self.dist_dir)

        # Build the dist-info next to the installed tree.
        self.egg_info_dir = self._locate_egg_info()
        distinfo_dirname = "{}-{}.dist-info".format(
            self.distribution.get_name().replace("-", "_"),
            self.distribution.get_version(),
        )
        distinfo_path = os.path.join(basedir_observed, distinfo_dirname)
        self.egg2dist(self.egg_info_dir, distinfo_path)

        wheel_path = os.path.join(self.dist_dir, archive_basename + ".whl")
        with WheelFile(wheel_path, "w") as wf:
            wf.write_files(basedir_observed)

        # Let pip find the result through distribution.dist_files.
        getattr(self.distribution, "dist_files", []).append(
            ("bdist_wheel", f"{sys.version_info[0]}.{sys.version_info[1]}", wheel_path)
        )

        if not self.keep_temp:
            shutil.rmtree(self.bdist_dir, ignore_errors=True)

    def _locate_egg_info(self):
        ei_cmd = self.get_finalized_command("egg_info")
        ei_cmd.run()
        return ei_cmd.egg_info
