#!/usr/bin/env python3
"""Perf gates: shuffle pipeline, the real engine, or the serving scheduler.

Usage:  python tools/perf_gate.py [--quick] [--repeats N] [--out PATH]
        python tools/perf_gate.py [--quick] --real [--start-method M]
        python tools/perf_gate.py [--quick] --serving
        python tools/perf_gate.py [--quick] --distributed
        python tools/perf_gate.py [--quick] --tier

Default mode runs the microbenchmark grid from
``benchmarks/bench_shuffle.py`` (engines x workloads x sizes), verifies on
every case that the new pipeline's output is byte-identical to the frozen
seed shuffle, prints a table, and writes the results to
``BENCH_shuffle.json`` at the repo root.

``--real`` instead runs the real-machine engine suite from
``benchmarks/bench_real_engine.py`` — streaming engine vs the frozen
pre-streaming barrier engine (gated >= 2.0x with byte-identical outputs
and an absolute MB/s throughput floor), the shm-vs-pickle transport
comparison (shm must not lose beyond timer tolerance where available),
the out-of-core fragment mode (byte-identical, multi-fragment), and the
peak-RSS bound probe — and writes ``BENCH_real_engine.json``.  The real
gates hold in quick mode too (they gate architecture, not microbenchmark
noise).

Default (shuffle) mode also runs the transport round-trip microbench
from ``benchmarks/bench_transport.py`` (quick mode included) — reported
in the payload, correctness-asserted, not speed-gated.

``--serving`` runs the cluster-scheduler serving suite from
``benchmarks/bench_serving.py`` (open-loop Poisson stream through
``ClusterScheduler``) and writes ``BENCH_serving.json``.  Three gates,
all held in quick mode too because they run in deterministic simulated
time: 2-SD throughput >= 1.5x 1-SD at equal offered load, weighted
fair-share completed-work ratio within 20% of the configured weights,
and result-cache hit/invalidate behaviour.

``--tier`` runs the burst-buffer tier suite from
``benchmarks/bench_tier.py`` and writes ``BENCH_tier.json``.  Two gates,
both held in quick mode: a warm out-of-core rerun through a populated
:class:`~repro.tier.store.TieredStore` must beat the cold run >= 1.3x
with byte-identical output (real wall-clock, ample margin), and the
simulated duo SD with one fragment of readahead must beat the identical
no-readahead tier in deterministic simulated seconds with a nonzero
prefetch-hit byte count.

``--distributed`` runs the distributed single-job suite from
``benchmarks/bench_distributed.py`` (one job sharded across N SD
replicas through ``DistributedEngine``) and writes
``BENCH_distributed.json``.  Gates, all held in quick mode too because
they run in deterministic simulated time: wordcount scaling >= 1.6x at
2 shards and >= 2.5x at 4 over the 1-shard distributed run, width-1
overhead within 5% of the plain single-node engine, every distributed
output (wordcount/stringmatch/matmul x 1/2/4 shards) byte-identical to
the single-node run, partial-restart recovery after a mid-exchange node
kill <= 0.5x the whole-job restart's recovery time at 4 shards, and a
quarantined node rejoining through probation under a heartbeat-enabled
scheduler.

Exit status:
    0  all outputs match (and every applicable perf gate holds)
    1  any case produced output differing from the reference pipeline
    2  outputs match but a gated case fell below its required speedup
       (shuffle: full mode only; real: both modes, including the RSS bound)

``--quick`` runs the smallest sizes with one timing repeat — a
seconds-long smoke for CI; shuffle speedups are then reported but not
gated, since microbenchmark timings at that size are noise-dominated.

``--dump-dir DIR`` (default: the ``REPRO_BLACKBOX_DIR`` environment
variable) arms the flight recorder on every registry the benchmarks
create; a failing gate dumps each live recorder's ring into DIR as a
JSONL black box and prints the paths with the failure message.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for p in (_REPO_ROOT, os.path.join(_REPO_ROOT, "src")):
    if p not in sys.path:
        sys.path.insert(0, p)

from benchmarks.bench_shuffle import QUICK_SIZES, SIZES, run_suite  # noqa: E402
from repro.obs import Observability  # noqa: E402
from repro.obs import flight as _flight  # noqa: E402
from repro.obs.export import (  # noqa: E402
    environment_provenance,
    phase_breakdown,
    write_chrome,
)

#: full-mode gate: (engine, workload, n_pairs) -> minimum speedup
GATES = {
    ("phoenix", "wordcount", 100_000): 2.0,
    ("localmr", "wordcount", 100_000): 2.0,
}


def print_table(results: list[dict]) -> None:
    header = f"{'engine':>8} {'workload':>10} {'pairs':>8} {'keys':>7} " \
             f"{'seed (s)':>10} {'new (s)':>10} {'speedup':>8}  match"
    print(header)
    print("-" * len(header))
    for r in results:
        print(
            f"{r['engine']:>8} {r['workload']:>10} {r['n_pairs']:>8} "
            f"{r['distinct_keys']:>7} {r['seed_s']:>10.6f} {r['new_s']:>10.6f} "
            f"{r['speedup']:>7.2f}x  {'ok' if r['match'] else 'MISMATCH'}"
        )


def run_real_gate(args) -> int:
    """The ``--real`` path: real-engine suite -> BENCH_real_engine.json."""
    from benchmarks.bench_real_engine import (
        STREAMING_GATE,
        THROUGHPUT_FLOOR_MB_S,
        run_real_suite,
    )

    t0 = time.perf_counter()
    payload = run_real_suite(quick=args.quick, start_method=args.start_method)
    if payload["all_match"] and not payload["gate_ok"]:
        # correctness held but a perf gate missed: one retry absorbs a
        # transient load spike (the margins sit well clear of the gates
        # on an idle machine); a real regression fails both runs
        payload = run_real_suite(quick=args.quick, start_method=args.start_method)
        payload["retried"] = True
    elapsed = time.perf_counter() - t0
    payload["elapsed_s"] = round(elapsed, 3)
    payload["environment"] = environment_provenance()

    out = args.out or os.path.join(_REPO_ROOT, "BENCH_real_engine.json")
    with open(out, "w") as f:
        json.dump(payload, f, indent=2)
        f.write("\n")

    rss = payload["rss"]
    tr = payload["transports"]
    print(
        f"real engine: seed {payload['seed_s']:.3f}s vs streaming "
        f"{payload['streaming_s']:.3f}s => {payload['speedup']:.2f}x "
        f"(gate >= {STREAMING_GATE}x) over {payload['workload']['n_jobs']} jobs"
    )
    print(
        f"throughput: {payload['throughput_mb_s']:.1f} MB/s "
        f"(floor {THROUGHPUT_FLOOR_MB_S} MB/s)"
    )
    if tr["compared"]:
        print(
            f"transport: shm {tr['shm_s']:.3f}s vs pickle {tr['pickle_s']:.3f}s "
            f"=> {tr['shm_speedup_over_pickle']:.2f}x "
            f"(gated: shm within {payload['gates']['shm_vs_pickle_tolerance']}x "
            "of pickle)"
        )
    else:
        print(
            f"transport: resolved to {tr['resolved']} (no shm here); "
            "shm-vs-pickle comparison skipped"
        )
    print(
        f"out-of-core: {payload['outofcore']['n_fragments']} fragments, "
        f"{payload['outofcore']['spilled_bytes']} spilled bytes, "
        f"{payload['outofcore']['speedup_vs_seed']:.2f}x vs seed (not gated)"
    )
    print(
        f"peak RSS: out-of-core +{rss['outofcore_extra_kib']}KiB <= bound "
        f"{rss['bound_kib']}KiB; in-memory +{rss['memory_mode_extra_kib']}KiB"
    )
    cp = payload["critpath"]
    cp_top = cp["by_name"][0] if cp["by_name"] else {"name": "?", "pct": 0}
    print(
        f"critpath: {cp['covered']:.1%} of one traced job's "
        f"{cp['wall_s']:.3f}s covered; top: {cp_top['name']} "
        f"{cp_top['pct']:.0f}%"
    )
    print(f"wrote {out} ({elapsed:.1f}s)")

    if not payload["all_match"] or not rss["outputs_match"]:
        print(
            "FAIL: real-engine outputs differ across "
            "seed/streaming/out-of-core", file=sys.stderr,
        )
        return 1
    if payload["speedup"] < STREAMING_GATE:
        print(
            f"GATE: streaming speedup {payload['speedup']:.2f}x < "
            f"required {STREAMING_GATE}x", file=sys.stderr,
        )
        return 2
    if payload["throughput_mb_s"] < THROUGHPUT_FLOOR_MB_S:
        print(
            f"GATE: streaming throughput {payload['throughput_mb_s']:.1f} MB/s "
            f"< floor {THROUGHPUT_FLOOR_MB_S} MB/s", file=sys.stderr,
        )
        return 2
    if not tr["within_tolerance"]:
        print(
            f"GATE: shm transport {tr['shm_s']:.3f}s lost to pickle "
            f"{tr['pickle_s']:.3f}s beyond tolerance", file=sys.stderr,
        )
        return 2
    if not rss["bounded"]:
        print(
            f"GATE: out-of-core peak RSS +{rss['outofcore_extra_kib']}KiB "
            f"not bounded (bound {rss['bound_kib']}KiB, in-memory "
            f"+{rss['memory_mode_extra_kib']}KiB)", file=sys.stderr,
        )
        return 2
    if not cp["covered_ok"]:
        print(
            f"GATE: critical path covers {cp['covered']:.1%} < 90% of the "
            f"traced job (spans escaped the tree)", file=sys.stderr,
        )
        return 2
    print(
        "real-engine outputs match; streaming, throughput, transport, "
        "RSS and critpath gates hold"
    )
    return 0


def run_serving_gate(args) -> int:
    """The ``--serving`` path: scheduler suite -> BENCH_serving.json."""
    from benchmarks.bench_serving import (
        FAIRNESS_TOLERANCE,
        THROUGHPUT_GATE,
        run_serving_suite,
    )

    t0 = time.perf_counter()
    payload = run_serving_suite(quick=args.quick)
    elapsed = time.perf_counter() - t0
    payload["elapsed_s"] = round(elapsed, 3)
    payload["environment"] = environment_provenance()

    out = args.out or os.path.join(_REPO_ROOT, "BENCH_serving.json")
    with open(out, "w") as f:
        json.dump(payload, f, indent=2)
        f.write("\n")

    tput = payload["throughput"]
    fair = payload["fairness"]
    cache = payload["cache"]
    print(
        f"serving: 1-SD {tput['single']['jobs_per_sec']:.3f} vs 2-SD "
        f"{tput['dual']['jobs_per_sec']:.3f} jobs/s => {tput['ratio']:.2f}x "
        f"(gate >= {THROUGHPUT_GATE}x); 2-SD p95 "
        f"{tput['dual']['latency']['p95_s']:.2f}s"
    )
    print(
        f"fairness: completed-work ratio {fair['got_ratio']:.2f} vs weights "
        f"{fair['want_ratio']:.1f} (deviation {fair['deviation']:.1%} <= "
        f"{FAIRNESS_TOLERANCE:.0%}, saturated={fair['saturated_at_horizon']})"
    )
    print(
        f"cache: {cache['hits']} hits / {cache['misses']} misses, "
        f"{cache['invalidations']} invalidations"
    )
    critpath = payload["critpath"]
    top = critpath["by_name"][0] if critpath["by_name"] else {"name": "?", "pct": 0}
    print(
        f"critpath: {critpath['covered']:.1%} of {critpath['wall_s']:.2f}s "
        f"wall covered (gate >= {critpath['coverage_gate']:.0%}); "
        f"top: {top['name']} {top['pct']:.0f}%; "
        f"health {'ok' if critpath['health']['healthy'] else 'DEGRADED'}, "
        f"worst burn {critpath['health']['worst_burn_rate']:.2f}"
    )
    print(f"wrote {out} ({elapsed:.1f}s)")

    if not cache["outputs_consistent"]:
        print("FAIL: cached results differ from recomputed ones", file=sys.stderr)
        return 1
    failures = []
    if not tput["gate_ok"]:
        failures.append(
            f"throughput ratio {tput['ratio']:.2f}x < {THROUGHPUT_GATE}x"
        )
    if not fair["gate_ok"]:
        failures.append(
            f"fairness deviation {fair['deviation']:.1%} > "
            f"{FAIRNESS_TOLERANCE:.0%} (or horizon drained the queue)"
        )
    if not cache["gate_ok"]:
        failures.append("cache hit/invalidate behaviour off")
    if not critpath["gate_ok"]:
        failures.append(
            f"critical path covers {critpath['covered']:.1%} < "
            f"{critpath['coverage_gate']:.0%} of wall time (or SLO health "
            f"degraded)"
        )
    if failures:
        for msg in failures:
            print(f"GATE: {msg}", file=sys.stderr)
        return 2
    print("serving gates hold: scaling, fairness, cache, critpath")
    return 0


def run_distributed_gate(args) -> int:
    """The ``--distributed`` path: sharded-job suite -> BENCH_distributed.json."""
    from benchmarks.bench_distributed import (
        RECOVERY_GATE,
        SCALE_GATES,
        WIDTH1_OVERHEAD_GATE,
        run_distributed_suite,
    )

    t0 = time.perf_counter()
    payload = run_distributed_suite(quick=args.quick)
    elapsed = time.perf_counter() - t0
    payload["elapsed_s"] = round(elapsed, 3)
    payload["environment"] = environment_provenance()

    out = args.out or os.path.join(_REPO_ROOT, "BENCH_distributed.json")
    with open(out, "w") as f:
        json.dump(payload, f, indent=2)
        f.write("\n")

    scaling = payload["scaling"]
    for r in scaling["runs"]:
        gate = f"(gate >= {r['gate']}x)" if r["gate"] else "(baseline)"
        print(
            f"distributed x{r['n_shards']}: {r['elapsed_s']:.3f}s sim => "
            f"{r['speedup_vs_x1']:.2f}x {gate}; shuffle "
            f"{r['shuffle_bytes']} B / {r['shuffle_transfers']} transfers, "
            f"merge@{r['merge_node']}"
        )
    print(
        f"width-1 overhead: {scaling['width1_overhead']:.1%} over single-node "
        f"{scaling['single_node_s']:.3f}s (gate <= "
        f"{WIDTH1_OVERHEAD_GATE:.0%})"
    )
    ident = payload["identity"]
    bad = [r for r in ident["rows"] if not r["identical"]]
    print(
        f"identity: {len(ident['rows']) - len(bad)}/{len(ident['rows'])} "
        "app x width outputs byte-identical to single-node"
    )
    rec = payload["recovery"]
    print(
        f"recovery: killed {rec['killed']} at t={rec['kill_at_s']}s; partial "
        f"restart {rec['partial']['recovery_s']}s vs whole-job "
        f"{rec['whole_job']['recovery_s']}s => {rec['recovery_ratio']:.2f}x "
        f"(gate <= {RECOVERY_GATE}x), outputs "
        f"{'identical' if rec['all_identical'] else 'DIFFER'}"
    )
    rj = rec["rejoin"]
    print(
        f"rejoin: {rj['node']} quarantined at t={rj['quarantined_at_s']}s, "
        f"probation at t={rj['probation_at_s']}s, canary served at "
        f"t={rj['canary_done_at_s']}s, ends {rj['final_state']}"
    )
    print(f"wrote {out} ({elapsed:.1f}s)")

    if not payload["all_identical"]:
        for r in bad:
            print(
                f"FAIL: {r['app']} x{r['n_shards']}: distributed output "
                "differs from single-node", file=sys.stderr,
            )
        for r in scaling["runs"]:
            if not r["identical"]:
                print(
                    f"FAIL: wordcount x{r['n_shards']} (scaling case): "
                    "distributed output differs from single-node",
                    file=sys.stderr,
                )
        return 1
    failures = []
    for r in scaling["runs"]:
        if r["gate"] and r["speedup_vs_x1"] < r["gate"]:
            failures.append(
                f"x{r['n_shards']} speedup {r['speedup_vs_x1']:.2f}x < "
                f"{r['gate']}x"
            )
    if scaling["width1_overhead"] > WIDTH1_OVERHEAD_GATE:
        failures.append(
            f"width-1 overhead {scaling['width1_overhead']:.1%} > "
            f"{WIDTH1_OVERHEAD_GATE:.0%}"
        )
    if rec["recovery_ratio"] > RECOVERY_GATE:
        failures.append(
            f"partial-restart recovery {rec['recovery_ratio']:.2f}x of "
            f"whole-job restart > {RECOVERY_GATE}x"
        )
    if not (
        rec["partial"]["attempts"] == 1
        and rec["partial"]["full_restarts"] == 0
        and rec["whole_job"]["full_restarts"] >= 1
    ):
        failures.append(
            "recovery case off-contract: partial mode must finish in one "
            "attempt with zero full restarts; legacy mode must burn one"
        )
    if not rj["gate_ok"]:
        failures.append(
            f"quarantined node failed to rejoin (ends {rj['final_state']!r})"
        )
    if failures:
        for msg in failures:
            print(f"GATE: {msg}", file=sys.stderr)
        return 2
    print(
        f"distributed gates hold: >= {SCALE_GATES[2]}x at 2 shards, "
        f">= {SCALE_GATES[4]}x at 4, recovery <= {RECOVERY_GATE}x whole-job "
        "restart with node rejoin, outputs byte-identical"
    )
    return 0


def run_tier_gate(args) -> int:
    """The ``--tier`` path: burst-buffer suite -> BENCH_tier.json."""
    from benchmarks.bench_tier import PREFETCH_GATE, WARM_GATE, run_tier_suite

    t0 = time.perf_counter()
    payload = run_tier_suite(quick=args.quick)
    if payload["real"]["outputs_match"] and not payload["real"]["gate_ok"]:
        # correctness held but the wall-clock gate missed: one retry
        # absorbs a transient load spike (the warm margin is ~8-10x
        # against a 1.3x gate); a real regression fails both runs
        payload = run_tier_suite(quick=args.quick)
        payload["retried"] = True
    elapsed = time.perf_counter() - t0
    payload["elapsed_s"] = round(elapsed, 3)
    payload["environment"] = environment_provenance()

    out = args.out or os.path.join(_REPO_ROOT, "BENCH_tier.json")
    with open(out, "w") as f:
        json.dump(payload, f, indent=2)
        f.write("\n")

    r, s = payload["real"], payload["sim"]
    print(
        f"tier (real): cold {r['cold_s']:.3f}s vs warm {r['warm_s']:.3f}s "
        f"=> {r['warm_speedup']:.2f}x (gate >= {WARM_GATE}x); "
        f"{r['runs_reused_warm']} runs reused over 2 warm passes"
    )
    print(
        f"tier (sim): no-readahead {s['no_readahead_s']:.2f}s vs readahead "
        f"{s['readahead_s']:.2f}s => {s['prefetch_speedup']:.2f}x "
        f"(gate >= {PREFETCH_GATE}x); "
        f"{s['prefetch_hit_bytes'] / 1e6:.0f}MB served from prefetched blocks"
    )
    print(f"wrote {out} ({elapsed:.1f}s)")

    if not (r["outputs_match"] and s["outputs_match"]):
        print(
            "FAIL: tiered outputs differ from the tier-less reference",
            file=sys.stderr,
        )
        return 1
    failures = []
    if r["warm_speedup"] < WARM_GATE:
        failures.append(
            f"warm-tier speedup {r['warm_speedup']:.2f}x < {WARM_GATE}x"
        )
    if not r["gate_ok"]:
        if r["tier_dir_leaked"]:
            failures.append("tier directory leaked after close")
        if r["runs_reused_warm"] < 2 * r["n_runs"]:
            failures.append(
                f"warm passes reused {r['runs_reused_warm']} runs, "
                f"expected {2 * r['n_runs']}"
            )
    if s["prefetch_speedup"] < PREFETCH_GATE:
        failures.append(
            f"readahead speedup {s['prefetch_speedup']:.2f}x < "
            f"{PREFETCH_GATE}x"
        )
    if s["prefetch_hit_bytes"] <= 0:
        failures.append("no bytes served from prefetched blocks")
    if failures:
        for msg in failures:
            print(f"GATE: {msg}", file=sys.stderr)
        return 2
    print("tier gates hold: warm reuse, readahead overlap, byte identity")
    return 0


def _maybe_dump(rc: int, args) -> int:
    """On gate failure with ``--dump-dir``, write black boxes; passthrough rc."""
    if rc != 0 and args.dump_dir:
        paths = _flight.dump_live(
            args.dump_dir, reason=f"perf gate failed (exit {rc})"
        )
        for p in paths:
            print(f"black box: {p}", file=sys.stderr)
    return rc


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--quick", action="store_true",
        help="smallest size only, one repeat: fast correctness smoke",
    )
    ap.add_argument(
        "--real", action="store_true",
        help="gate the real execution engine instead of the shuffle grid",
    )
    ap.add_argument(
        "--serving", action="store_true",
        help="gate the cluster scheduler's serving suite instead",
    )
    ap.add_argument(
        "--distributed", action="store_true",
        help="gate the distributed single-job (sharded) suite instead",
    )
    ap.add_argument(
        "--tier", action="store_true",
        help="gate the burst-buffer tier suite instead",
    )
    ap.add_argument(
        "--start-method", default=None,
        choices=("fork", "forkserver", "spawn"),
        help="(--real only) multiprocessing start method for the engine",
    )
    ap.add_argument(
        "--repeats", type=int, default=None,
        help="timing repeats per case (best-of; default 1 quick / 3 full)",
    )
    ap.add_argument(
        "--out", default=None,
        help="where to write the JSON results (default: repo root)",
    )
    ap.add_argument(
        "--trace", metavar="OUT.json", default=None,
        help="also write a Chrome-trace (Perfetto-loadable) of the bench run",
    )
    ap.add_argument(
        "--dump-dir", default=os.environ.get("REPRO_BLACKBOX_DIR"),
        metavar="DIR",
        help="dump flight-recorder black boxes here when a gate fails",
    )
    args = ap.parse_args(argv)

    if sum((args.real, args.serving, args.distributed, args.tier)) > 1:
        ap.error(
            "--real, --serving, --distributed and --tier are mutually exclusive"
        )
    if args.dump_dir:
        _flight.install_default()
    if args.real:
        return _maybe_dump(run_real_gate(args), args)
    if args.serving:
        return _maybe_dump(run_serving_gate(args), args)
    if args.distributed:
        return _maybe_dump(run_distributed_gate(args), args)
    if args.tier:
        return _maybe_dump(run_tier_gate(args), args)
    if args.out is None:
        args.out = os.path.join(_REPO_ROOT, "BENCH_shuffle.json")

    sizes = QUICK_SIZES if args.quick else SIZES
    repeats = args.repeats if args.repeats is not None else (1 if args.quick else 3)
    if repeats < 1:
        ap.error(f"--repeats must be >= 1 (got {repeats})")

    # Spans are always on here: a handful per case, and they give the
    # JSON payload its per-phase breakdown.
    obs = Observability(enabled=True)
    t0 = time.perf_counter()
    results = run_suite(sizes=sizes, repeats=repeats, obs=obs)
    from benchmarks.bench_transport import run_transport_suite

    transport_results = run_transport_suite()
    elapsed = time.perf_counter() - t0

    print_table(results)
    for tr in transport_results:
        if tr["shm_available"]:
            print(
                f"transport {tr['payload_bytes']:>7}B: pickle "
                f"{tr['pickle_us_per_round']:>7.1f}us vs shm "
                f"{tr['shm_us_per_round']:>7.1f}us per round trip "
                f"({tr['shm_speedup_over_pickle']:.2f}x, not gated)"
            )
        else:
            print(
                f"transport {tr['payload_bytes']:>7}B: shm unavailable; "
                f"pickle {tr['pickle_us_per_round']:.1f}us per round trip"
            )

    mismatches = [r for r in results if not r["match"]]
    gate_failures = []
    if not args.quick:
        for r in results:
            need = GATES.get((r["engine"], r["workload"], r["n_pairs"]))
            if need is not None and r["speedup"] < need:
                gate_failures.append((r, need))

    from repro.obs.export import span_dicts

    breakdown = phase_breakdown(span_dicts(obs), root_name="bench.suite")
    payload = {
        "benchmark": "shuffle pipeline: seed vs sort-once/merge-after",
        "mode": "quick" if args.quick else "full",
        "repeats": repeats,
        "elapsed_s": round(elapsed, 3),
        "environment": environment_provenance(),
        "gates": {f"{e}/{w}/{n}": need for (e, w, n), need in GATES.items()},
        "all_match": not mismatches,
        "gate_ok": not gate_failures,
        "breakdown": breakdown,
        "results": results,
        "transport": transport_results,
    }
    with open(args.out, "w") as f:
        json.dump(payload, f, indent=2)
        f.write("\n")
    print(f"\nwrote {args.out} ({len(results)} cases in {elapsed:.1f}s)")
    if args.trace:
        write_chrome(obs, args.trace, extra={"benchmark": payload["benchmark"]})
        print(f"wrote trace {args.trace} ({len(obs.spans)} spans)")

    if mismatches:
        for r in mismatches:
            print(
                f"FAIL: {r['engine']}/{r['workload']}/{r['n_pairs']}: "
                "new shuffle output differs from seed pipeline",
                file=sys.stderr,
            )
        return _maybe_dump(1, args)
    if gate_failures:
        for r, need in gate_failures:
            print(
                f"GATE: {r['engine']}/{r['workload']}/{r['n_pairs']}: "
                f"speedup {r['speedup']:.2f}x < required {need:.1f}x",
                file=sys.stderr,
            )
        return _maybe_dump(2, args)
    print("all outputs match" + ("" if args.quick else "; all perf gates hold"))
    return 0


if __name__ == "__main__":
    sys.exit(main())
