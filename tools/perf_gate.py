#!/usr/bin/env python3
"""Perf gate for the shuffle pipeline: seed reference vs sort-once/merge-after.

Usage:  python tools/perf_gate.py [--quick] [--repeats N] [--out PATH]

Runs the microbenchmark grid from ``benchmarks/bench_shuffle.py`` (engines x
workloads x sizes), verifies on every case that the new pipeline's output is
byte-identical to the frozen seed shuffle, prints a table, and writes the
results to ``BENCH_shuffle.json`` at the repo root.

Exit status:
    0  all outputs match (and, in full mode, the wordcount-100k gate holds)
    1  any case produced output differing from the seed pipeline
    2  full mode only: outputs match but a gated case fell below the
       required speedup (>= 2x on the 100k-pair wordcount shuffle for both
       engines)

``--quick`` runs only the smallest size (10k pairs) with one timing repeat —
a seconds-long correctness smoke for CI; speedups are reported but not gated,
since microbenchmark timings at that size are noise-dominated.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for p in (_REPO_ROOT, os.path.join(_REPO_ROOT, "src")):
    if p not in sys.path:
        sys.path.insert(0, p)

from benchmarks.bench_shuffle import QUICK_SIZES, SIZES, run_suite  # noqa: E402
from repro.obs import Observability  # noqa: E402
from repro.obs.export import (  # noqa: E402
    environment_provenance,
    phase_breakdown,
    write_chrome,
)

#: full-mode gate: (engine, workload, n_pairs) -> minimum speedup
GATES = {
    ("phoenix", "wordcount", 100_000): 2.0,
    ("localmr", "wordcount", 100_000): 2.0,
}


def print_table(results: list[dict]) -> None:
    header = f"{'engine':>8} {'workload':>10} {'pairs':>8} {'keys':>7} " \
             f"{'seed (s)':>10} {'new (s)':>10} {'speedup':>8}  match"
    print(header)
    print("-" * len(header))
    for r in results:
        print(
            f"{r['engine']:>8} {r['workload']:>10} {r['n_pairs']:>8} "
            f"{r['distinct_keys']:>7} {r['seed_s']:>10.6f} {r['new_s']:>10.6f} "
            f"{r['speedup']:>7.2f}x  {'ok' if r['match'] else 'MISMATCH'}"
        )


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--quick", action="store_true",
        help="smallest size only, one repeat: fast correctness smoke",
    )
    ap.add_argument(
        "--repeats", type=int, default=None,
        help="timing repeats per case (best-of; default 1 quick / 3 full)",
    )
    ap.add_argument(
        "--out", default=os.path.join(_REPO_ROOT, "BENCH_shuffle.json"),
        help="where to write the JSON results (default: repo root)",
    )
    ap.add_argument(
        "--trace", metavar="OUT.json", default=None,
        help="also write a Chrome-trace (Perfetto-loadable) of the bench run",
    )
    args = ap.parse_args(argv)

    sizes = QUICK_SIZES if args.quick else SIZES
    repeats = args.repeats if args.repeats is not None else (1 if args.quick else 3)
    if repeats < 1:
        ap.error(f"--repeats must be >= 1 (got {repeats})")

    # Spans are always on here: a handful per case, and they give the
    # JSON payload its per-phase breakdown.
    obs = Observability(enabled=True)
    t0 = time.perf_counter()
    results = run_suite(sizes=sizes, repeats=repeats, obs=obs)
    elapsed = time.perf_counter() - t0

    print_table(results)

    mismatches = [r for r in results if not r["match"]]
    gate_failures = []
    if not args.quick:
        for r in results:
            need = GATES.get((r["engine"], r["workload"], r["n_pairs"]))
            if need is not None and r["speedup"] < need:
                gate_failures.append((r, need))

    from repro.obs.export import span_dicts

    breakdown = phase_breakdown(span_dicts(obs), root_name="bench.suite")
    payload = {
        "benchmark": "shuffle pipeline: seed vs sort-once/merge-after",
        "mode": "quick" if args.quick else "full",
        "repeats": repeats,
        "elapsed_s": round(elapsed, 3),
        "environment": environment_provenance(),
        "gates": {f"{e}/{w}/{n}": need for (e, w, n), need in GATES.items()},
        "all_match": not mismatches,
        "gate_ok": not gate_failures,
        "breakdown": breakdown,
        "results": results,
    }
    with open(args.out, "w") as f:
        json.dump(payload, f, indent=2)
        f.write("\n")
    print(f"\nwrote {args.out} ({len(results)} cases in {elapsed:.1f}s)")
    if args.trace:
        write_chrome(obs, args.trace, extra={"benchmark": payload["benchmark"]})
        print(f"wrote trace {args.trace} ({len(obs.spans)} spans)")

    if mismatches:
        for r in mismatches:
            print(
                f"FAIL: {r['engine']}/{r['workload']}/{r['n_pairs']}: "
                "new shuffle output differs from seed pipeline",
                file=sys.stderr,
            )
        return 1
    if gate_failures:
        for r, need in gate_failures:
            print(
                f"GATE: {r['engine']}/{r['workload']}/{r['n_pairs']}: "
                f"speedup {r['speedup']:.2f}x < required {need:.1f}x",
                file=sys.stderr,
            )
        return 2
    print("all outputs match" + ("" if args.quick else "; all perf gates hold"))
    return 0


if __name__ == "__main__":
    sys.exit(main())
