#!/usr/bin/env python3
"""Compare two benchmark payloads metric by metric.

Usage:
    python tools/bench_diff.py OLD.json NEW.json [--threshold PCT] [--gate]
    python tools/bench_diff.py --git BENCH_real_engine.json [...]

Flattens every numeric leaf of both JSON documents into dotted paths
(``workload.bytes``, ``gates.speedup.measured``, ``slo.t0.burn_rate``,
...) and prints one row per path: old value, new value, absolute delta,
percent change.  Paths present on only one side are listed separately —
a new metric is news, not noise.

``--git FILE`` diffs the committed version of FILE (``git show
HEAD:FILE``) against the working-tree copy — the one-liner for "did my
change move the benchmarks?".

By default the report is **non-gating**: every comparison exits 0, and
rows whose magnitude of change exceeds ``--threshold`` percent (default
10) are merely flagged ``!``.  CI runs it as a visibility step so
regressions show up in the log without double-gating what
``tools/perf_gate.py`` already enforces.  Pass ``--gate`` to exit 1 when
any flagged row's change is a *regression* (the metric moved against its
direction: throughput down, latency up).
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys

__all__ = ["flatten", "diff_payloads", "format_diff", "main"]

#: path substrings whose metrics are better when SMALLER (latency-like);
#: everything else is treated as better-bigger (throughput-like)
_SMALLER_IS_BETTER = (
    "latency", "elapsed", "seconds", "wall", "p50", "p95", "p99",
    "overhead", "dropped", "failed", "rejected", "spilled", "rss",
    "burn_rate", "queue_depth", "slot_wait", "respawn",
)

#: volatile leaves that only ever differ (timestamps, host facts)
_IGNORE_SUBSTRINGS = ("environment.", "dumped_at", "run_id", "argv")


def flatten(doc: object, prefix: str = "") -> dict[str, float]:
    """Every numeric leaf of ``doc`` as ``{dotted.path: value}``.

    Booleans count as numeric (``True`` -> 1.0) so gate verdicts diff
    like everything else; strings and nulls are skipped.  List elements
    get their index as a path component.
    """
    out: dict[str, float] = {}
    if isinstance(doc, bool):
        out[prefix] = 1.0 if doc else 0.0
    elif isinstance(doc, (int, float)):
        out[prefix] = float(doc)
    elif isinstance(doc, dict):
        for key, value in doc.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            out.update(flatten(value, path))
    elif isinstance(doc, list):
        for i, value in enumerate(doc):
            path = f"{prefix}.{i}" if prefix else str(i)
            out.update(flatten(value, path))
    return out


def _is_regression(path: str, old: float, new: float) -> bool:
    lower = path.lower()
    smaller_better = any(s in lower for s in _SMALLER_IS_BETTER)
    return new > old if smaller_better else new < old


def diff_payloads(
    old: object, new: object, threshold_pct: float = 10.0
) -> dict:
    """Structured diff: changed/added/removed metric paths.

    Each changed row is ``(path, old, new, delta, pct, flagged,
    regression)`` — ``flagged`` when ``|pct|`` exceeds the threshold (or
    the value moved to/from zero), ``regression`` when the flagged move
    goes against the metric's good direction.
    """
    a = {
        k: v for k, v in flatten(old).items()
        if not any(s in k for s in _IGNORE_SUBSTRINGS)
    }
    b = {
        k: v for k, v in flatten(new).items()
        if not any(s in k for s in _IGNORE_SUBSTRINGS)
    }
    changed = []
    same = 0
    for path in sorted(a.keys() & b.keys()):
        va, vb = a[path], b[path]
        if va == vb:
            same += 1
            continue
        delta = vb - va
        pct = (delta / abs(va) * 100.0) if va else float("inf")
        flagged = abs(pct) > threshold_pct
        changed.append(
            (
                path, va, vb, delta, pct, flagged,
                flagged and _is_regression(path, va, vb),
            )
        )
    return {
        "changed": changed,
        "added": sorted(b.keys() - a.keys()),
        "removed": sorted(a.keys() - b.keys()),
        "unchanged": same,
        "threshold_pct": threshold_pct,
    }


def format_diff(diff: dict, all_rows: bool = False) -> str:
    """Render a :func:`diff_payloads` result as an aligned report."""
    lines = []
    rows = diff["changed"] if all_rows else [
        r for r in diff["changed"] if r[5]
    ]
    shown_note = "" if all_rows else (
        f" over {diff['threshold_pct']:g}% shown"
        f" ({len(diff['changed'])} changed total)"
    )
    lines.append(
        f"{len(diff['changed'])} changed, {diff['unchanged']} unchanged, "
        f"{len(diff['added'])} added, {len(diff['removed'])} removed"
        + shown_note
    )
    if rows:
        width = max(len(r[0]) for r in rows)
        lines.append("")
        lines.append(
            f"{'metric':<{width}} {'old':>14} {'new':>14} {'Δ%':>9}"
        )
        lines.append("-" * (width + 41))
        for path, va, vb, _delta, pct, flagged, regression in rows:
            mark = "!" if regression else ("*" if flagged else " ")
            pct_s = f"{pct:+.1f}%" if pct != float("inf") else "(new≠0)"
            lines.append(
                f"{path:<{width}} {va:>14.6g} {vb:>14.6g} {pct_s:>9} {mark}"
            )
        if any(r[6] for r in rows):
            lines.append("")
            lines.append("! = regression beyond threshold, * = large move")
    for label, paths in (("added", diff["added"]), ("removed", diff["removed"])):
        if paths:
            lines.append("")
            lines.append(f"{label}:")
            lines.extend(f"  {p}" for p in paths)
    return "\n".join(lines)


def _load(path: str) -> object:
    with open(path) as f:
        return json.load(f)


def _load_git_head(path: str) -> object:
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    rel = os.path.relpath(os.path.abspath(path), repo_root)
    out = subprocess.run(
        ["git", "show", f"HEAD:{rel}"],
        cwd=repo_root, capture_output=True, text=True,
    )
    if out.returncode != 0:
        raise SystemExit(
            f"git show HEAD:{rel} failed: {out.stderr.strip()}"
        )
    return json.loads(out.stdout)


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("old", help="baseline payload (or FILE with --git)")
    ap.add_argument("new", nargs="?", default=None, help="candidate payload")
    ap.add_argument(
        "--git", action="store_true",
        help="diff HEAD's copy of OLD against the working-tree copy",
    )
    ap.add_argument(
        "--threshold", type=float, default=10.0,
        help="flag rows whose |change| exceeds this percent (default 10)",
    )
    ap.add_argument(
        "--all", action="store_true", help="print every changed row",
    )
    ap.add_argument(
        "--gate", action="store_true",
        help="exit 1 when a flagged row is a regression (default: report only)",
    )
    args = ap.parse_args(argv)

    if args.git:
        if args.new is not None:
            ap.error("--git takes one FILE, not two")
        old_doc = _load_git_head(args.old)
        new_doc = _load(args.old)
        old_name, new_name = f"HEAD:{args.old}", args.old
    else:
        if args.new is None:
            ap.error("two payload files required (or --git FILE)")
        old_doc, new_doc = _load(args.old), _load(args.new)
        old_name, new_name = args.old, args.new

    diff = diff_payloads(old_doc, new_doc, threshold_pct=args.threshold)
    print(f"bench diff: {old_name} -> {new_name}")
    print(format_diff(diff, all_rows=args.all))
    if args.gate and any(r[6] for r in diff["changed"]):
        print("\nGATE: regression beyond threshold", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
