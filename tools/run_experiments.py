#!/usr/bin/env python3
"""Run every paper experiment and (re)generate EXPERIMENTS.md.

Usage:  python tools/run_experiments.py [output.md]

This is the canonical paper-vs-measured record.  The same sweeps run
under ``pytest benchmarks/ --benchmark-only`` with shape assertions; this
script renders them into the repository's EXPERIMENTS.md.
"""

from __future__ import annotations

import sys
import time

from repro.analysis.metrics import speedup
from repro.cluster.scenario import run_pair_scenario, run_single_app
from repro.units import MB
from repro.workloads import FIG8A_SIZES, FIG8BC_SIZES, FIG9_SIZES, size_label


def fmt(v, digits=2):
    if v is None:
        return "n/s"
    return f"{v:.{digits}f}"


def md_table(headers, rows):
    out = ["| " + " | ".join(headers) + " |", "|" + "---|" * len(headers)]
    for row in rows:
        out.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(out)


def fig8a():
    lines = ["## Fig 8(a) — single-application speedups (500M–1.25G)\n"]
    rows_seq, rows_par = [], []
    for app, tag in (("wordcount", "WC"), ("stringmatch", "SM")):
        for platform in ("quad", "duo"):
            vs_seq, vs_par = [], []
            for size in FIG8A_SIZES:
                part = run_single_app(app, size, platform, "partitioned").elapsed
                seq = run_single_app(app, size, platform, "sequential").elapsed
                par = run_single_app(app, size, platform, "parallel").elapsed
                vs_seq.append(speedup(seq, part))
                vs_par.append(speedup(par, part))
            rows_seq.append([f"{platform.capitalize()}, {tag}"] + [fmt(v) for v in vs_seq])
            rows_par.append([f"{platform.capitalize()}, {tag}"] + [fmt(v) for v in vs_par])
    labels = [size_label(s) for s in FIG8A_SIZES]
    lines.append("**Partition-enabled vs sequential** (paper: ~2x on duo, quad tops out ≈4.5):\n")
    lines.append(md_table(["series"] + labels, rows_seq))
    lines.append("\n**Partition-enabled vs original Phoenix** (paper: partitioned ≈1/6 of traditional at huge sizes):\n")
    lines.append(md_table(["series"] + labels, rows_par))
    lines.append(
        "\n*Measured vs paper*: duo speedups vs sequential hold at ~1.9–2.0x "
        "(paper: \"a 2X speedup, which proves the fully utilization of "
        "duo-core\"); quad reaches ~3.7x (paper's axis tops at 4.5). The "
        "vs-original ratio grows from parity at 500M to ~5.8–6.1x at 1.25G "
        "(paper: \"only 1/6 of the traditional one\").\n"
    )
    return "\n".join(lines)


def growth(app, fig, paper_note):
    lines = [f"## Fig {fig} — {app} elapsed-time growth curves, 500M–2G (seconds)\n"]
    labels = [size_label(s) for s in FIG8BC_SIZES]
    rows = []
    for platform in ("duo", "quad"):
        for approach, name in (("parallel", "traditional"), ("partitioned", "partitioned")):
            ys = [run_single_app(app, s, platform, approach).elapsed for s in FIG8BC_SIZES]
            rows.append([f"{platform} {name}"] + [fmt(y, 1) for y in ys])
    rows.append(
        ["duo sequential"]
        + [fmt(run_single_app(app, s, "duo", "sequential").elapsed, 1) for s in FIG8BC_SIZES]
    )
    lines.append(md_table(["series"] + labels, rows))
    lines.append(f"\n*Measured vs paper*: {paper_note}\n")
    return "\n".join(lines)


def pair(app, fig, paper_note):
    lines = [f"## Fig {fig} — MM/{app} multi-application speedups\n"]
    labels = [size_label(s) for s in FIG9_SIZES]
    base = [run_pair_scenario("mcsd", app, s).makespan for s in FIG9_SIZES]
    rows = []
    for scenario, name in (
        ("host-only", "(a) Host node only"),
        ("trad-sd", "(b) Traditional SD"),
        ("mcsd-nopart", "(c) McSD w/o Partition"),
        ("host-part", "(+) Host with Partition"),
    ):
        ys = [run_pair_scenario(scenario, app, s).makespan for s in FIG9_SIZES]
        rows.append([name] + [fmt(speedup(y, b)) for y, b in zip(ys, base)])
    rows.append(["McSD makespan (s)"] + [fmt(b, 1) for b in base])
    lines.append(md_table(["speedup of McSD over"] + labels, rows))
    lines.append(f"\n*Measured vs paper*: {paper_note}\n")
    return "\n".join(lines)


def _export_csv(csv_dir: str) -> None:
    """Drop per-figure CSVs (raw elapsed seconds) under ``csv_dir``."""
    from repro.analysis import Series, write_series_csv

    labels = [size_label(s) for s in FIG8BC_SIZES]
    xs = [s / MB(1) for s in FIG8BC_SIZES]
    for app, name in (("wordcount", "fig8b"), ("stringmatch", "fig8c")):
        series = []
        for platform in ("duo", "quad"):
            for approach in ("parallel", "partitioned", "sequential"):
                ys = [
                    run_single_app(app, s, platform, approach).elapsed
                    for s in FIG8BC_SIZES
                ]
                series.append(Series(f"{platform}-{approach}", xs, ys))
        path = write_series_csv(f"{csv_dir}/{name}.csv", series, labels)
        print(f"wrote {path}")
    plabels = [size_label(s) for s in FIG9_SIZES]
    pxs = [s / MB(1) for s in FIG9_SIZES]
    for app, name in (("wordcount", "fig9"), ("stringmatch", "fig10")):
        series = []
        for scenario in ("host-only", "host-part", "trad-sd", "mcsd-nopart", "mcsd"):
            ys = [run_pair_scenario(scenario, app, s).makespan for s in FIG9_SIZES]
            series.append(Series(scenario, pxs, ys))
        path = write_series_csv(f"{csv_dir}/{name}.csv", series, plabels)
        print(f"wrote {path}")


HEADER = """# EXPERIMENTS — paper vs. measured

Generated by `python tools/run_experiments.py` (deterministic simulation;
identical on every run).  Shape assertions for every row live in
`benchmarks/` and run under `pytest benchmarks/ --benchmark-only`.

**Reading guide.** The testbed is a calibrated simulation of the paper's
5-node cluster (see DESIGN.md §2/§5), so *shapes* — who wins, where the
crossovers sit, what fails — are the reproduction target; absolute seconds
are model outputs, not wall-clock measurements of 2008 hardware.  `n/s` =
not supported (memory overflow), matching the paper's truncated curves.

## Table I — testbed configuration

Reproduced exactly in `repro.config.table1_cluster()`: one Core2 Quad
Q9400 host, one Core2 Duo E4400 smart-storage node, three Celeron 450
compute nodes, 2 GB memory each, one 1000 Mbps switch.  Verified by
`benchmarks/bench_table1.py`.
"""

FOOTER = """## Known deviations from the paper

1. **Fig 9 past-threshold multipliers.** The paper reports the
   non-partitioned frameworks costing "16 to 18 times more" than McSD at
   the largest sizes (and quotes 6.8x / 17.4x averages).  Our memory model
   is calibrated so the *single-application* Fig 8(b) ratio hits the
   paper's ~6x at 1.25G; the same paging curve then yields ~5–6x (not
   16–18x) for the multi-application cells, because both figures share one
   mechanism.  The two numbers cannot both come out of a single consistent
   paging model — `bench_ablation_sensitivity.py` makes this concrete: a
   penalty coefficient large enough to reach ~12-18x in the pair scenario
   pushes the Fig 8(b) single-application ratio to ~12x as well,
   contradicting the paper's own "1/6".  The crossover location, the
   explosive nonlinearity, and the ~2x-vs-traditional-SD band all
   reproduce under every setting of the knob (the sensitivity ablation's
   point), and we kept Fig 8(b)'s quantitative anchor since the paper
   states it most precisely.
2. **Sequential-baseline footprint.** The paper's Fig 9(b) shows the
   traditional (sequential) SD staying flat across sizes, implying the
   sequential scan does not page; we model it with a ~1.05x streaming
   footprint accordingly.
3. **Absolute times** are calibrated to Phoenix-era per-core throughputs
   (WC ≈ 17 MB/s/core at 2 GHz, SM ≈ 36 MB/s/core) and a 120 MB/s SATA
   disk; the paper does not publish absolute elapsed times for most
   points, so calibration targeted the stated ratios.
4. **The Host-with-Partition variant** (mentioned in the Fig 9 caption but
   not plotted by the paper) comes out *faster* than McSD at large sizes
   in our model: once partitioning removes the memory wall, the idle quad
   host out-muscles the duo SD even paying GbE NFS reads.  This is a real
   property of the architecture — offload pays when the host is busy or
   the wire is slow — and is why the framework ships an adaptive
   placement policy (`repro.core.AdaptivePolicy`); see also the network
   ablation.

## Future-work experiments (Section VI)

| Claim | Where | Result |
|---|---|---|
| Ethernet -> Infiniband upgrade | `bench_ablation_network.py` | host-only improves with bandwidth; McSD insensitive; advantage shrinks but persists |
| Parallelism across multiple McSDs | `bench_ablation_multisd.py` | 1.95x / 3.76x on 2 / 4 SD nodes (94–98 % efficiency) |
| Fault tolerance mechanism | `tests/core/test_failover.py` | deadline + retry + replica/host failover, exact results preserved |
| Module extensibility (database ops) | `examples/custom_module.py` | SELECT/GROUP-BY preloaded and offloaded like the built-ins |
"""


def main() -> int:
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    csv_dir = None
    for a in sys.argv[1:]:
        if a.startswith("--csv"):
            csv_dir = a.split("=", 1)[1] if "=" in a else "results"
    out_path = args[0] if args else "EXPERIMENTS.md"
    t0 = time.time()
    if csv_dir:
        _export_csv(csv_dir)
    parts = [HEADER]
    print("Fig 8(a)...")
    parts.append(fig8a())
    print("Fig 8(b)...")
    parts.append(
        growth(
            "wordcount",
            "8(b)",
            "partitioned curves grow linearly; traditional bends hard past "
            "~750M and dies (n/s) beyond 1.5G — both exactly the paper's "
            "story. The duo 1.25G traditional/partitioned ratio lands at "
            "~5.8x against the paper's ~6x.",
        )
    )
    print("Fig 8(c)...")
    parts.append(
        growth(
            "stringmatch",
            "8(c)",
            "SM (2x footprint) bends later and gentler than WC (3x): "
            "partitioning mostly extends the supportable range, the paper's "
            "point (2) in Section V-B.",
        )
    )
    print("Fig 9...")
    parts.append(
        pair(
            "wordcount",
            "9",
            "~1.9x over traditional SD at every size (paper: \"averagely "
            "improves the overall performance by 2X\"); parity below the "
            "memory threshold and an explosive jump at 1G/1.25G for the "
            "non-partitioned baselines (see Known deviations #1 for the "
            "multiplier).",
        )
    )
    print("Fig 10...")
    parts.append(
        pair(
            "stringmatch",
            "10",
            "every comparison stays in the ~1–2.2x band and the traditional-"
            "SD column approaches 2x — the paper's \"averagely 2X speedup\" "
            "for the less data-intensive pair, with no MM/WC-style blow-up.",
        )
    )
    parts.append(FOOTER)
    content = "\n".join(parts)
    with open(out_path, "w") as f:
        f.write(content)
    print(f"wrote {out_path} in {time.time() - t0:.0f}s real")
    return 0


if __name__ == "__main__":
    sys.exit(main())
