"""Ablation: SMB background traffic ("routine work") interference.

The paper runs the Sandia Micro Benchmark "among all the nodes except the
McSD smart-storage node" to emulate routine cluster work during the
measurements.  This ablation sweeps the SMB intensity — off, the paper's
level (64 KB messages every ~20 ms), and a 100x-heavier storm — for McSD
and for Host-only.

Finding (and assertion): at the paper's level neither framework moves by
more than a fraction of a percent — both are CPU/memory-bound, which is
why the paper could run SMB throughout without caveats.  Even a
link-saturating storm barely matters, because the NFS input read overlaps
the map phase; interference only shows when the wire becomes the critical
path.
"""

from __future__ import annotations

from benchmarks.conftest import once
from repro.analysis.report import banner, render_table
from repro.cluster.scenario import run_pair_scenario
from repro.units import KB, MB, msec

SIZE = MB(750)

LEVELS = (
    ("off", None),
    ("paper", {"message_bytes": KB(64), "interval": msec(20)}),
    ("storm", {"message_bytes": MB(2), "interval": msec(5)}),
)


def bench_smb_interference(benchmark):
    def sweep():
        out = {}
        for scenario in ("mcsd", "host-only"):
            for label, params in LEVELS:
                r = run_pair_scenario(
                    scenario,
                    "wordcount",
                    SIZE,
                    with_smb=params is not None,
                    smb_params=params,
                )
                out[(scenario, label)] = r.makespan
        return out

    res = once(benchmark, sweep)
    rows = []
    for scenario in ("mcsd", "host-only"):
        off = res[(scenario, "off")]
        rows.append(
            [
                scenario,
                off,
                res[(scenario, "paper")],
                res[(scenario, "storm")],
                (res[(scenario, "storm")] - off) / off * 100.0,
            ]
        )
    print(banner(f"ABLATION - SMB routine-work interference, MM/WC at {SIZE / 1e6:.0f}MB"))
    print(
        render_table(
            ["scenario", "off (s)", "paper SMB (s)", "SMB storm (s)", "storm slowdown %"],
            rows,
        )
    )

    for scenario in ("mcsd", "host-only"):
        off = res[(scenario, "off")]
        paper = res[(scenario, "paper")]
        storm = res[(scenario, "storm")]
        # the paper's level is noise (< 1%): SMB does not taint Figs 8-10.
        # (Deltas this small are dominated by smartFAM poll-grid alignment,
        # so we bound magnitude rather than demand monotonicity.)
        assert abs(paper - off) / off < 0.01, (scenario, off, paper)
        # even a saturating storm stays < 10%: both frameworks are
        # compute/memory-bound at these sizes, not wire-bound
        assert abs(storm - off) / off < 0.10, (scenario, off, storm)
    print(
        "routine work at the paper's intensity is measurement noise; the "
        "evaluation's signal comes from cores and memory, not the wire"
    )
