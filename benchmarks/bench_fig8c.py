"""Fig 8(c): String Match elapsed-time growth curves on Duo and Quad.

Same sweep as Fig 8(b) for the lighter, map-only String Match.  SM's
footprint is ~2x (vs WC's 3x), so its traditional curve bends later and
less violently — the paper's point (2): "for the applications that are
not very data-intensive, the Partition model can only enhance their
supportability of data-size range."
"""

from __future__ import annotations

from benchmarks.conftest import once
from repro.analysis.metrics import Series
from repro.analysis.report import banner
from repro.cluster.scenario import run_single_app
from repro.units import MB
from repro.workloads import FIG8BC_SIZES

from benchmarks.bench_fig8b import check_growth_shapes, growth_sweep, print_growth

APP = "stringmatch"


def bench_fig8c_stringmatch_growth(benchmark):
    results = once(benchmark, lambda: growth_sweep(APP))
    print_growth(results, APP, "8(c)")
    check_growth_shapes(results, APP, min_superlinearity=1.5)

    # SM bends less than WC at the same size: its 1.25G trad/part ratio is
    # well below WC's ~6x (the "supportability, not speed" point).
    xs = [s / MB(1) for s in FIG8BC_SIZES]
    ratio_sm = results[("duo", "parallel")][3] / results[("duo", "partitioned")][3]
    print(f"duo 1.25G traditional/partitioned = {ratio_sm:.2f}x (WC was ~6x)")
    assert ratio_sm < 4.0
    # but supportability is extended identically: beyond 1.5G only the
    # partitioned runtime works
    assert results[("duo", "parallel")][-1] is None
    assert results[("duo", "partitioned")][-1] is not None
