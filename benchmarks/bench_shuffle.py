"""Shuffle microbenchmarks: seed pipeline vs sort-once/merge-after.

This is the perf-gate workload (see ``tools/perf_gate.py``): it times the
intermediate-data path *only* — from per-worker combiner maps to the final
output — for both engines' shapes, on wordcount-shaped (Zipf keys, heavy
repeats) and matmul-shaped ((i, j) tuple keys, mostly distinct) key
distributions.  The "seed" side runs the frozen reference in
:mod:`repro.phoenix.seed_shuffle`; the "new" side runs the very helpers
the engines use (:func:`repro.phoenix.sort.shuffle_parallel` and
:func:`~repro.phoenix.sort.local_merge_maps`).  Outputs are compared for
byte-identity on every run — a benchmark that computes the wrong answer
fails instead of reporting a number.

Run standalone via ``python tools/perf_gate.py`` (writes
``BENCH_shuffle.json``) or under pytest-benchmark with
``pytest benchmarks/bench_shuffle.py --benchmark-only``.
"""

from __future__ import annotations

import operator
import time
import typing as _t

from repro.obs import Observability
from repro.phoenix.seed_shuffle import (
    seed_local_merge_runs,
    seed_local_worker_run,
    seed_shuffle_parallel,
)
from repro.phoenix.sort import local_merge_maps, shuffle_parallel
from repro.workloads import zipf_corpus

#: shared no-op sink for untraced runs (span sites cost one branch)
_DISABLED_OBS = Observability(enabled=False)

#: worker/bucket counts: Phoenix default pool shape (4 tasks/core, quad)
N_MAPS = 16
N_BUCKETS = 4

SIZES = (10_000, 100_000, 500_000)
QUICK_SIZES = (10_000,)
ENGINES = ("phoenix", "localmr")
WORKLOADS = ("wordcount", "matmul")


def _sum_reduce(key: object, values: list, params: dict) -> object:
    return sum(values)


def wordcount_maps(n_pairs: int, n_maps: int = N_MAPS, seed: int = 0) -> list[dict]:
    """Per-worker combiner maps for ``n_pairs`` Zipf word emissions.

    Mirrors a combine-enabled wordcount map phase: contiguous corpus
    slices per worker, each worker folding (word, 1) emissions into
    running counts.
    """
    corpus = zipf_corpus(n_pairs * 8, seed=seed)
    words = corpus.split()[:n_pairs]
    per_map = max(1, len(words) // n_maps)
    maps: list[dict] = []
    for w in range(n_maps):
        acc: dict[object, int] = {}
        for word in words[w * per_map : (w + 1) * per_map if w < n_maps - 1 else len(words)]:
            acc[word] = acc.get(word, 0) + 1
        maps.append(acc)
    return maps


def matmul_maps(n_pairs: int, n_maps: int = N_MAPS, seed: int = 0) -> list[dict]:
    """Per-worker combiner maps with matmul-shaped keys.

    Block matrix multiply emits ((i, j), partial) once per k-block: keys
    are (row, col) tuples, each repeated ``k_blocks`` times across
    workers — the mostly-distinct-keys regime, opposite of wordcount.
    """
    k_blocks = 4
    cells = max(1, n_pairs // k_blocks)
    side = max(1, int(cells**0.5))
    maps = [dict() for _ in range(n_maps)]
    emitted = 0
    for kb in range(k_blocks):
        for i in range(side):
            if emitted >= n_pairs:
                break
            acc = maps[(kb * side + i) % n_maps]
            for j in range(side):
                if emitted >= n_pairs:
                    break
                key = (i, j)
                partial = (i * 31 + j * 17 + kb * 7 + seed) % 1000
                acc[key] = acc.get(key, 0) + partial
                emitted += 1
    return maps


def make_maps(workload: str, n_pairs: int, seed: int = 0) -> list[dict]:
    """Combiner maps for one named workload shape."""
    if workload == "wordcount":
        return wordcount_maps(n_pairs, seed=seed)
    if workload == "matmul":
        return matmul_maps(n_pairs, seed=seed)
    raise ValueError(f"unknown workload {workload!r}")


def _case_flags(workload: str) -> tuple[_t.Callable, _t.Callable, bool]:
    """(combine_fn, reduce_fn, sort_output) per workload shape."""
    if workload == "wordcount":
        return operator.add, _sum_reduce, True
    return operator.add, _sum_reduce, False


def run_seed(engine: str, workload: str, maps: list[dict]) -> list:
    """One pass through the frozen seed shuffle."""
    combine_fn, reduce_fn, sort_output = _case_flags(workload)
    if engine == "phoenix":
        return seed_shuffle_parallel(
            maps, combine_fn, reduce_fn, True, sort_output, N_BUCKETS, {}
        )
    runs = [seed_local_worker_run(m) for m in maps]
    return seed_local_merge_runs(runs, combine_fn, reduce_fn, sort_output, {})


def run_new(engine: str, workload: str, maps: list[dict]) -> list:
    """One pass through the sort-once/merge-after shuffle."""
    combine_fn, reduce_fn, sort_output = _case_flags(workload)
    if engine == "phoenix":
        return shuffle_parallel(
            maps, combine_fn, reduce_fn, True, sort_output, N_BUCKETS, {}
        )
    return local_merge_maps(maps, combine_fn, reduce_fn, sort_output, {})


def _best_of(fn: _t.Callable[[], object], repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_case(
    engine: str,
    workload: str,
    n_pairs: int,
    repeats: int = 3,
    seed: int = 0,
    obs: Observability | None = None,
) -> dict:
    """Time seed vs new shuffle on one case; verify identical outputs.

    Pass an enabled :class:`~repro.obs.registry.Observability` to record
    the case as a span tree (``bench.case`` with ``bench.seed``/
    ``bench.new`` children covering the timed repeats).
    """
    obs = obs or _DISABLED_OBS
    with obs.span(
        "bench.case", cat="bench", track="bench",
        engine=engine, workload=workload, n_pairs=n_pairs,
    ) as case_sp:
        maps = make_maps(workload, n_pairs, seed=seed)
        seed_out = run_seed(engine, workload, maps)
        new_out = run_new(engine, workload, maps)
        match = seed_out == new_out
        with obs.span("bench.seed", cat="bench", track="bench", repeats=repeats):
            seed_s = _best_of(lambda: run_seed(engine, workload, maps), repeats)
        with obs.span("bench.new", cat="bench", track="bench", repeats=repeats):
            new_s = _best_of(lambda: run_new(engine, workload, maps), repeats)
        case_sp.set(seed_s=seed_s, new_s=new_s, match=match)
    return {
        "engine": engine,
        "workload": workload,
        "n_pairs": n_pairs,
        "distinct_keys": len({k for m in maps for k in m}),
        "seed_s": round(seed_s, 6),
        "new_s": round(new_s, 6),
        "speedup": round(seed_s / new_s, 3) if new_s > 0 else float("inf"),
        "match": match,
    }


def run_suite(
    sizes: _t.Sequence[int] = SIZES,
    repeats: int = 3,
    obs: Observability | None = None,
) -> list[dict]:
    """The full microbenchmark grid: engines x workloads x sizes."""
    obs = obs or _DISABLED_OBS
    with obs.span("bench.suite", cat="bench", track="bench", repeats=repeats):
        return [
            run_case(engine, workload, n, repeats=repeats, obs=obs)
            for engine in ENGINES
            for workload in WORKLOADS
            for n in sizes
        ]


# -- pytest-benchmark entry ---------------------------------------------------


def bench_shuffle_pipeline(benchmark):
    """100k-pair wordcount shuffle (both engines) under pytest-benchmark."""
    from benchmarks.conftest import once
    from repro.analysis.report import banner

    results = once(
        benchmark, lambda: run_suite(sizes=(100_000,), repeats=1)
    )
    print(banner("SHUFFLE - seed pipeline vs sort-once/merge-after"))
    for r in results:
        print(
            f"{r['engine']:>8} {r['workload']:>10} {r['n_pairs']:>8} pairs | "
            f"seed {r['seed_s']:.3f}s -> new {r['new_s']:.3f}s "
            f"({r['speedup']:.2f}x) match={r['match']}"
        )
    assert all(r["match"] for r in results)
