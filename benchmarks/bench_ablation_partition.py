"""Ablation: fragment-size sweep (why ~600 MB / auto-sizing works).

Section IV-C: the partition size is "manually filled in by the programmer
or automatically determined by the runtime system.  In order to achieve a
better performance, the empirical data ... may be required."  This sweep
is that empirical data: elapsed time and peak memory pressure of a 2 GB
Word Count across fragment sizes, exposing the trade-off the automatic
partitioner navigates — per-fragment overhead on the left, paging on the
right, with the auto choice inside the flat valley.
"""

from __future__ import annotations

from benchmarks.conftest import once
from repro.analysis.report import banner, render_table
from repro.cluster import Testbed
from repro.apps import make_wordcount_spec
from repro.partition import ExtendedPhoenixRuntime
from repro.units import MB
from repro.workloads import text_input

SIZE = MB(2000)
FRAGMENTS = (MB(75), MB(150), MB(300), MB(450), MB(600), MB(900), MB(1200), None)


def _sweep():
    out = []
    for frag in FRAGMENTS:
        bed = Testbed(seed=1)
        inp = text_input("/data/huge", SIZE, payload_bytes=20_000, seed=1)
        sd_view, _h, _p = bed.stage_on_sd("huge", inp)
        ext = ExtendedPhoenixRuntime(bed.sd, bed.config.phoenix)

        def run_one(frag=frag, ext=ext, sd_view=sd_view, bed=bed):
            res = yield ext.run(make_wordcount_spec(), sd_view, fragment_bytes=frag)
            return res

        res = bed.run(run_one())
        peak = max(s.peak_pressure for s in res.fragment_stats)
        out.append((frag, res.n_fragments, res.elapsed, peak))
    return out


def bench_partition_size_sweep(benchmark):
    rows = once(benchmark, _sweep)
    print(banner(f"ABLATION - fragment size sweep, WordCount {SIZE / 1e6:.0f}MB on the duo SD"))
    print(
        render_table(
            ["fragment", "n_frags", "elapsed (s)", "peak pressure"],
            [
                ["auto" if f is None else f"{f / 1e6:.0f}MB", n, e, p]
                for f, n, e, p in rows
            ],
        )
    )
    by_frag = {f: (n, e, p) for f, n, e, p in rows}
    auto_elapsed = by_frag[None][1]
    best = min(e for _, e, _ in by_frag.values())
    worst = max(e for _, e, _ in by_frag.values())
    print(
        f"auto choice within {auto_elapsed / best:.3f}x of the best sweep point; "
        f"worst (thrashing) point {worst / best:.2f}x"
    )

    # the auto partitioner lands in the valley
    assert auto_elapsed <= 1.05 * best
    # oversized fragments pay the paging penalty hard
    assert by_frag[MB(1200)][1] > 2.5 * best
    assert by_frag[MB(1200)][2] > 1.0  # actively swapping
    # small fragments stay clean but pay measurable per-fragment overhead
    assert by_frag[MB(75)][2] < 0.3
    assert by_frag[MB(75)][1] >= by_frag[MB(300)][1]
