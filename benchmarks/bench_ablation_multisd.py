"""Ablation: parallelism across multiple McSD nodes (Section VI #2).

"Perhaps the most exciting future work lies in exploring ... the
parallelisms among multiple McSD smart disks."  We shard a 2 GB Word
Count across 1, 2 and 4 smart-storage nodes and scatter-gather it: every
node runs the partition-enabled module over its local shard concurrently,
and the host merges.

Expected shape: near-linear scaling in SD count (the shards are
independent and the gather phase moves only aggregates), with efficiency
dipping as per-node work shrinks toward the offload/partition overheads.
"""

from __future__ import annotations

from benchmarks.conftest import once
from repro.analysis.report import banner, render_table
from repro.cluster import Testbed
from repro.config import table1_cluster
from repro.core import ScatterGatherEngine, ScatterJob
from repro.units import MB
from repro.workloads import text_input

SIZE = MB(2000)
SD_COUNTS = (1, 2, 4)


def _run(n_sd: int) -> float:
    bed = Testbed(config=table1_cluster(n_sd=n_sd, seed=3), seed=3)
    inp = text_input("/data/huge", SIZE, payload_bytes=16_000, seed=3)
    shards = bed.stage_shards("huge", inp)
    engine = ScatterGatherEngine(bed.cluster)

    def go():
        res = yield engine.run(ScatterJob(app="wordcount", shards=shards))
        return res

    res = bed.run(go())
    # the merged word count must be exact regardless of sharding
    assert sum(v for _, v in res.output) == len(inp.payload_bytes.split())
    return res.elapsed


def bench_multi_mcsd_scaling(benchmark):
    def sweep():
        return {n: _run(n) for n in SD_COUNTS}

    times = once(benchmark, sweep)
    base = times[1]
    rows = [
        [n, times[n], base / times[n], (base / times[n]) / n * 100.0]
        for n in SD_COUNTS
    ]
    print(banner(f"ABLATION - multi-McSD scatter-gather, WordCount {SIZE / 1e6:.0f}MB"))
    print(render_table(["SD nodes", "elapsed (s)", "speedup", "efficiency %"], rows))

    sp2, sp4 = base / times[2], base / times[4]
    print(f"scaling: 2 nodes {sp2:.2f}x, 4 nodes {sp4:.2f}x")
    # near-linear scaling with mild efficiency loss
    assert 1.7 <= sp2 <= 2.05
    assert 3.2 <= sp4 <= 4.1
