"""Serving benchmark: an open-loop job stream against the cluster scheduler.

Three cases, all in simulated time (deterministic, seconds of wall clock):

* **throughput** — the same saturating Poisson stream offered to a 1-SD
  and a 2-SD cluster.  Jobs carry no ``sd_node`` and the input is
  replicated, so the scheduler is free to spread; the gate demands the
  2-SD cluster sustain >= 1.5x the 1-SD jobs/sec at equal offered load.
* **fairness** — two tenants with weights 2:1 submit equal backlogs to a
  single serial SD node; the run stops at a fixed horizon *while both
  still have backlog* (a drained queue would make every policy look
  fair), and the completed-work ratio must sit within 20% of 2.
* **cache** — one job repeated: every submission after the first must be
  a cache hit, and a rewrite of the input must invalidate.
* **critpath** — one traced job end to end: the containment critical
  path over the recorded spans (the paper's dispatch/compute/return
  attribution, recovered mechanically) must cover >= 90% of the job's
  wall time, and the scheduler's SLO health snapshot rides along.

``run_serving_suite`` returns the JSON payload for
``tools/perf_gate.py --serving`` (gates: throughput ratio, fairness band,
cache behaviour, critical-path coverage — all architectural, so they
hold in ``--quick`` too).
"""

from __future__ import annotations

import typing as _t

from repro.cluster.testbed import Testbed
from repro.core.job import DataJob
from repro.core.loadbalance import AlwaysOffloadPolicy
from repro.obs import SLOPolicy, job_critical_path
from repro.obs.export import span_dicts
from repro.sched import ClusterScheduler, FairShareOrdering
from repro.units import MB
from repro.workloads import ArrivalProcess, text_input

__all__ = [
    "THROUGHPUT_GATE",
    "FAIRNESS_TOLERANCE",
    "CRITPATH_COVERAGE_GATE",
    "run_serving_suite",
]

#: 2-SD must sustain at least this multiple of the 1-SD jobs/sec
THROUGHPUT_GATE = 1.5
#: completed-work ratio may deviate from the weight ratio by this fraction
FAIRNESS_TOLERANCE = 0.20
#: the critical path's exclusive segments must cover this much wall time
CRITPATH_COVERAGE_GATE = 0.90

#: generous per-attempt deadline — nothing dies in this benchmark
_TIMEOUT = 3600.0


def _quantile(sorted_vals: _t.Sequence[float], q: float) -> float:
    if not sorted_vals:
        return 0.0
    idx = min(len(sorted_vals) - 1, int(round(q * (len(sorted_vals) - 1))))
    return sorted_vals[idx]


def _latency_summary(totals: list[float]) -> dict:
    s = sorted(totals)
    return {
        "n": len(s),
        "p50_s": round(_quantile(s, 0.50), 4),
        "p95_s": round(_quantile(s, 0.95), 4),
        "p99_s": round(_quantile(s, 0.99), 4),
        "mean_s": round(sum(s) / len(s), 4) if s else 0.0,
    }


# -- throughput -------------------------------------------------------------


def _serve_stream(
    n_sd: int, size: int, n_jobs: int, rate: float, seed: int
) -> dict:
    tb = Testbed(n_sd=n_sd)
    inp = text_input("/data/serve.txt", size, seed=1)
    _, sd_path = tb.stage_replicated("serve.txt", inp)

    def factory(i: int) -> DataJob:
        return DataJob(app="wordcount", input_path=sd_path, input_size=inp.size)

    sched = ClusterScheduler(
        tb.cluster,
        policy=AlwaysOffloadPolicy(),
        attempt_timeout=_TIMEOUT,
        per_node_limit=1,
        max_queue=n_jobs + 1,
        cache=None,
    )
    stream = ArrivalProcess.poisson(factory, rate=rate, n=n_jobs, seed=seed)
    report = tb.run(stream.drive(sched))
    assert not report.failed and not report.rejected, "clean stream expected"
    per_node: dict[str, int] = {}
    for rec in sched.completed:
        per_node[rec.where] = per_node.get(rec.where, 0) + 1
    return {
        "n_sd": n_sd,
        "offered_rate": rate,
        "n_jobs": n_jobs,
        "completed": len(report.completed),
        "jobs_per_sec": round(report.throughput, 4),
        "span_s": round(report.span, 3),
        "per_node": per_node,
        "latency": _latency_summary([r.total for r in sched.completed]),
    }


def throughput_case(quick: bool = False) -> dict:
    """Same offered load, 1 vs 2 SD nodes; the scaling gate."""
    if quick:
        size, n_jobs, rate = MB(20), 16, 5.0
    else:
        size, n_jobs, rate = MB(100), 40, 1.0
    single = _serve_stream(1, size, n_jobs, rate, seed=11)
    dual = _serve_stream(2, size, n_jobs, rate, seed=11)
    ratio = (
        dual["jobs_per_sec"] / single["jobs_per_sec"]
        if single["jobs_per_sec"] > 0 else 0.0
    )
    return {
        "input_mb": size // MB(1),
        "single": single,
        "dual": dual,
        "ratio": round(ratio, 3),
        "gate": THROUGHPUT_GATE,
        "gate_ok": ratio >= THROUGHPUT_GATE,
    }


# -- fairness ---------------------------------------------------------------


def fairness_case(quick: bool = False) -> dict:
    """Weighted fair share under saturation, measured at a horizon.

    Both tenants submit identical backlogs at t=0 to one serial SD node.
    The simulation stops while both still have queued jobs — only then is
    the completed-work ratio the *scheduler's* choice rather than the
    workload's.
    """
    weights = {"gold": 2.0, "silver": 1.0}
    per_tenant = 12 if quick else 30
    size = MB(20)

    tb = Testbed(n_sd=1)
    inp = text_input("/data/fair.txt", size, seed=2)
    _, sd_path = tb.stage_replicated("fair.txt", inp)
    sched = ClusterScheduler(
        tb.cluster,
        policy=AlwaysOffloadPolicy(),
        ordering=FairShareOrdering(weights),
        attempt_timeout=_TIMEOUT,
        per_node_limit=1,
        max_queue=2 * per_tenant + 2,
        cache=None,
    )
    # calibrate: one probe job's measured service time sets the horizon
    probe = sched.submit(DataJob(
        app="wordcount", input_path=sd_path, input_size=inp.size,
        tenant="probe",
    ))
    tb.sim.run(until=probe)
    service = sched.completed[0].service
    trace = []
    t0 = tb.sim.now
    for i in range(per_tenant):
        for tenant in ("gold", "silver"):
            trace.append((t0, DataJob(
                app="wordcount", input_path=sd_path, input_size=inp.size,
                tenant=tenant,
            )))
    stream = ArrivalProcess.from_trace(trace)
    stream.drive(sched)

    # advance until exactly half the backlog has completed, so both
    # tenants still have queued jobs when we measure (a drained queue
    # would make every ordering look like the submission ratio)
    total = 2 * per_tenant
    step = max(0.05, service / 4)
    for _ in range(100 * total):
        if len(sched.completed) - 1 >= total // 2:
            break
        tb.sim.run(until=tb.sim.now + step)
    horizon = tb.sim.now - t0

    work = {t: 0 for t in weights}
    for rec in sched.completed:
        if rec.tenant in weights:
            work[rec.tenant] = work.get(rec.tenant, 0) + rec.job.input_size
    still_queued = {t: 0 for t in weights}
    for entry in sched.queue:
        still_queued[entry.tenant] = still_queued.get(entry.tenant, 0) + 1
    saturated = all(v > 0 for v in still_queued.values())

    want = weights["gold"] / weights["silver"]
    got = (work["gold"] / work["silver"]) if work["silver"] else float("inf")
    deviation = abs(got - want) / want
    return {
        "weights": weights,
        "per_tenant_jobs": per_tenant,
        "horizon_s": round(horizon, 2),
        "completed_work": work,
        "still_queued": still_queued,
        "saturated_at_horizon": saturated,
        "want_ratio": want,
        "got_ratio": round(got, 3),
        "deviation": round(deviation, 3),
        "tolerance": FAIRNESS_TOLERANCE,
        "gate_ok": saturated and deviation <= FAIRNESS_TOLERANCE,
    }


# -- cache ------------------------------------------------------------------


def cache_case(quick: bool = False) -> dict:
    """Repeat-submission memoization and write invalidation."""
    repeats = 4 if quick else 8
    size = MB(20)
    tb = Testbed(n_sd=1)
    inp = text_input("/data/cached.txt", size, seed=3)
    _, sd_path = tb.stage_replicated("cached.txt", inp)
    sched = ClusterScheduler(
        tb.cluster, policy=AlwaysOffloadPolicy(), attempt_timeout=_TIMEOUT,
    )
    job = DataJob(app="wordcount", input_path=sd_path, input_size=inp.size)
    outputs = []
    for _ in range(repeats):
        ev = sched.submit(job)
        tb.sim.run(until=ev)
        outputs.append(ev.value.output)
    hits_before = sched.cache.hits
    # rewrite the input: the next submission must miss and recompute
    tb.stage(tb.sd, sd_path, text_input("/data/cached.txt", size, seed=3))
    ev = sched.submit(job)
    tb.sim.run(until=ev)
    outputs.append(ev.value.output)
    consistent = all(o == outputs[0] for o in outputs)
    return {
        "repeats": repeats,
        "hits": sched.cache.hits,
        "misses": sched.cache.misses,
        "invalidations": sched.cache.invalidations,
        "hit_rate": round(hits_before / max(1, repeats), 3),
        "outputs_consistent": consistent,
        "gate_ok": (
            consistent
            and hits_before == repeats - 1
            and sched.cache.hits == hits_before  # post-rewrite was a miss
            and sched.cache.invalidations >= 1
        ),
    }


# -- critical path ----------------------------------------------------------


def critpath_case(quick: bool = False) -> dict:
    """One traced job: containment critical path + SLO health snapshot.

    A single job keeps the containment tree unambiguous (concurrent jobs
    would interleave their node-track spans under one synthetic root).
    The gate is coverage: the path's exclusive segments must account for
    >= 90% of the job's recorded wall time — spans escaping the tree,
    not the walk, are what would break it.
    """
    size = MB(20) if quick else MB(50)
    tb = Testbed(n_sd=1, trace=True)
    inp = text_input("/data/critpath.txt", size, seed=5)
    _, sd_path = tb.stage_replicated("critpath.txt", inp)
    sched = ClusterScheduler(
        tb.cluster,
        policy=AlwaysOffloadPolicy(),
        attempt_timeout=_TIMEOUT,
        cache=None,
        slo=SLOPolicy(tenant="*", target_s=_TIMEOUT, error_budget=0.05),
    )
    ev = sched.submit(DataJob(
        app="wordcount", input_path=sd_path, input_size=inp.size,
    ))
    tb.sim.run(until=ev)
    spans = span_dicts(tb.sim.obs)
    cp = job_critical_path(spans, root_name="job")
    health = sched.health_report()
    path = [
        {
            "name": seg["name"],
            "track": seg["track"],
            "self_s": round(seg["self"], 6),
            "slack_s": round(seg["slack"], 6),
            "depth": seg["depth"],
        }
        for seg in cp["path"]
    ]
    by_name = [
        {
            "name": row["name"],
            "count": row["count"],
            "self_s": round(row["self"], 6),
            "pct": round(row["pct"], 2),
        }
        for row in cp["by_name"]
    ]
    return {
        "input_mb": size // MB(1),
        "spans_recorded": len(spans),
        "wall_s": round(cp["wall"], 6),
        "covered": round(cp["covered"], 4),
        "path": path,
        "by_name": by_name,
        "health": health.to_dict(),
        "coverage_gate": CRITPATH_COVERAGE_GATE,
        "gate_ok": (
            cp["covered"] >= CRITPATH_COVERAGE_GATE and health.healthy
        ),
    }


# -- suite ------------------------------------------------------------------


def run_serving_suite(quick: bool = False) -> dict:
    """All four cases; the ``BENCH_serving.json`` payload."""
    throughput = throughput_case(quick)
    fairness = fairness_case(quick)
    cache = cache_case(quick)
    critpath = critpath_case(quick)
    return {
        "benchmark": "serving: open-loop job stream through ClusterScheduler",
        "mode": "quick" if quick else "full",
        "throughput": throughput,
        "fairness": fairness,
        "cache": cache,
        "critpath": critpath,
        "gate_ok": (
            throughput["gate_ok"] and fairness["gate_ok"]
            and cache["gate_ok"] and critpath["gate_ok"]
        ),
    }


if __name__ == "__main__":
    import json

    payload = run_serving_suite(quick=True)
    print(json.dumps(payload, indent=2))
