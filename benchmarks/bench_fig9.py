"""Fig 9: speedups of the MM + Word-Count multi-application pair.

"We defined the performance speedup to be the ratio of the elapsed time
without the optimization technique to that with the McSD technique."
Three comparisons, one per subfigure:

* (a) Host Node Only      - both programs on the host, data over NFS;
* (b) Traditional SD      - single-core SD runs WC sequentially;
* (c) McSD without Partition - duo SD runs original (non-partitioned) WC.

Paper bands:
* vs traditional SD: ~2x on average, flat across sizes ("compared with the
  traditional smart storage, our McSD improves the overall performance by
  2x");
* vs host-only / vs non-partitioned: only slight improvement at 500M/750M
  (below the memory threshold), then a nonlinear jump at 1G/1.25G (the
  paper reports 6.8x and 17.4x averages past the threshold; the exact
  multiplier depends on the paging model — see EXPERIMENTS.md — but the
  crossover location and explosive growth are the reproduced shape).
"""

from __future__ import annotations

from benchmarks.conftest import once
from repro.analysis.metrics import Series, speedup
from repro.analysis.report import banner, render_series_table
from repro.cluster.scenario import run_pair_scenario
from repro.units import MB
from repro.workloads import FIG9_SIZES, size_label

DATA_APP = "wordcount"
BASELINES = ("host-only", "trad-sd", "mcsd-nopart")
#: the Fig 9 caption's extra variant: partitioning enabled on the host
EXTRA = ("host-part",)


def pair_sweep(data_app: str):
    out = {}
    for scenario in BASELINES + EXTRA + ("mcsd",):
        out[scenario] = [
            run_pair_scenario(scenario, data_app, size).makespan
            for size in FIG9_SIZES
        ]
    return out


def print_pair(results, data_app: str, figure: str):
    xs = [s / MB(1) for s in FIG9_SIZES]
    labels = [size_label(s) for s in FIG9_SIZES]
    sp = {
        sc: [speedup(b, m) for b, m in zip(results[sc], results["mcsd"])]
        for sc in BASELINES + EXTRA
    }
    series = [
        Series("(a) Host only", xs, sp["host-only"]),
        Series("(b) Trad SD", xs, sp["trad-sd"]),
        Series("(c) McSD no-part", xs, sp["mcsd-nopart"]),
        Series("(+) Host-part", xs, sp["host-part"]),
    ]
    print(banner(f"FIG {figure} - MM/{data_app}: speedup of McSD over each baseline"))
    print(render_series_table(series, labels))
    mk = Series("mcsd makespan", xs, results["mcsd"])
    print(
        "McSD makespans (s): "
        + ", ".join(f"{l}={v:.1f}" for l, v in zip(labels, results["mcsd"]))
    )
    return sp


def bench_fig9_mm_wordcount(benchmark):
    results = once(benchmark, lambda: pair_sweep(DATA_APP))
    sp = print_pair(results, DATA_APP, "9")

    trad = sp["trad-sd"]
    host_only = sp["host-only"]
    nopart = sp["mcsd-nopart"]
    print(
        f"paper: ~2x vs trad SD | measured mean {sum(trad) / len(trad):.2f}x; "
        f"past-threshold host-only {host_only[2]:.1f}/{host_only[3]:.1f}x, "
        f"no-part {nopart[2]:.1f}/{nopart[3]:.1f}x"
    )

    # ~2x over traditional single-core SD, roughly flat
    assert all(1.6 <= v <= 2.4 for v in trad), trad
    # below the threshold: only slight improvement
    assert host_only[0] < 1.5 and nopart[0] < 1.3
    # past the threshold: the nonlinear jump
    assert host_only[3] > 3.5
    assert nopart[3] > 4.5
    # monotone growth of the non-partitioned penalties
    assert nopart == sorted(nopart)
    # the Host-part variant: partitioning rescues the host path from the
    # memory wall, so it stays far below the non-partitioned host-only line
    host_part = sp["host-part"]
    assert all(hp <= ho + 1e-9 for hp, ho in zip(host_part, host_only))
    assert host_part[3] < 0.55 * host_only[3]
