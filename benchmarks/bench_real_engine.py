"""Real-machine benchmark: the multiprocessing mini-Phoenix over real files.

Unlike every other bench (whose *simulated* seconds carry the result and
whose pytest-benchmark numbers only measure the simulator), here the
wall-clock IS the measurement: `repro.exec.LocalMapReduce` counts words in
a real file with real OS processes.  On a multicore machine the parallel
run beats the serial one; on a single-core CI box it cannot — which is
reported honestly, and is precisely why the paper's multicore performance
claims are carried by the calibrated simulation (DESIGN.md §2).
"""

from __future__ import annotations

import operator
import os
import tempfile
from collections import Counter

from benchmarks.conftest import once
from repro.analysis.report import banner
from repro.apps.wordcount import wc_map, wc_reduce
from repro.exec import LocalMapReduce
from repro.workloads import zipf_corpus

PAYLOAD = 3_000_000  # ~3 MB of real text


def bench_real_wordcount(benchmark):
    data = zipf_corpus(PAYLOAD, seed=1)
    with tempfile.NamedTemporaryFile(suffix=".txt", delete=False) as f:
        f.write(data)
        path = f.name
    try:
        engine = LocalMapReduce(
            map_fn=wc_map,
            reduce_fn=wc_reduce,
            combine_fn=operator.add,
            sort_output=True,
        )

        def run_parallel():
            return engine.run(path)

        res = once(benchmark, run_parallel)
        serial = engine.run(path, parallel=False)
        truth = Counter(data.split())

        print(banner("REAL MACHINE - multiprocessing mini-Phoenix, WordCount"))
        cores = os.cpu_count() or 1
        print(
            f"{len(data) / 1e6:.1f}MB file | {cores} core(s) | "
            f"parallel {res.elapsed:.3f}s ({res.n_workers} workers, "
            f"{res.n_chunks} chunks) vs serial {serial.elapsed:.3f}s "
            f"=> {serial.elapsed / res.elapsed:.2f}x"
        )
        # correctness is unconditional
        assert dict(res.output) == dict(truth)
        assert res.output == serial.output
        # honesty clause: only claim a speedup where the hardware has one
        if cores >= 2 and res.n_workers >= 2:
            assert res.elapsed < serial.elapsed * 1.10
        else:
            print(
                "single-core machine: no parallel speedup possible; "
                "the simulator carries the multicore claims"
            )
    finally:
        os.unlink(path)
