"""Real-machine benchmark: streaming engine vs the frozen barrier path.

Unlike every other bench (whose *simulated* seconds carry the result and
whose pytest-benchmark numbers only measure the simulator), here the
wall-clock IS the measurement: real OS processes count words in real
files.  Three claims are measured:

* **Streaming speedup** — ``n_jobs`` back-to-back wordcount jobs on the
  streaming engine (persistent pool, mmap reads, batched IPC through the
  shared-memory slot transport, cached chunk plans, overlapped
  incremental scalar-fold merge) against the frozen pre-PR barrier
  engine (:class:`repro.exec.seed_engine.SeedLocalMapReduce`: fresh pool
  + open/seek/read + per-chunk result pickles + merge-after-barrier, per
  job).  Gated at >= 2.0x by ``tools/perf_gate.py --real``; outputs must
  be byte-identical.  The workload uses a fine-grained chunk plan
  (Phoenix-style task pool, several chunks per worker per batch) — the
  regime where the seed's per-chunk IPC and per-job pool costs bite.
  Both engines get one untimed warmup job first: the streaming engine's
  pool creation happens once per *process* (that is the architecture
  being measured), while the seed's warmup buys it nothing because it
  forks a fresh pool per job — also the architecture being measured.
  An absolute **throughput floor** (input MB/s through the streaming
  engine) guards against the ratio staying healthy while both sides
  regress together.
* **Transport comparison** — the same streaming job sequence on the
  pickle transport vs the shared-memory ring.  Where shm is available
  the ring must not lose to the pipe (small tolerance for timer noise:
  the two differ by one copy regime, not an algorithm), and outputs
  must be byte-identical across transports.
* **Out-of-core equivalence** — the same input under a memory budget a
  fraction of its size: multiple spilled fragments, byte-identical
  output.  Reported, not speed-gated: like the paper's Fig 7, the
  partitioning machinery costs overhead at sizes that still fit in
  memory; its value is the memory bound.
* **Peak-RSS bound** — a value-list-heavy job (no combiner: every
  emitted value survives to the parent accumulator) measured by
  :mod:`benchmarks.rss_probe` in fresh subprocesses, in-memory vs
  out-of-core.  Out-of-core parent peak-over-baseline must stay under
  ``RSS_ALLOWANCE_FACTOR x budget`` (Python object overhead makes the
  resident footprint a multiple of the payload bytes — the same reason
  the paper quotes WC at ~3x input, Section V-C) and under the
  in-memory run's, which grows with the input instead.

On a single-core box the parallel engines cannot beat serial wall-clock —
the honesty clause in :func:`bench_real_wordcount` reports that and the
simulator carries the paper's multicore claims (DESIGN.md §2).  The
streaming-vs-seed gate is a different comparison (same worker count both
sides), so it holds on any core count.
"""

from __future__ import annotations

import json
import operator
import os
import subprocess
import sys
import tempfile
import time
from collections import Counter

from repro.analysis.report import banner
from repro.apps.wordcount import wc_map, wc_reduce
from repro.exec import LocalMapReduce, SeedLocalMapReduce
from repro.obs import Observability, critical_path
from repro.obs.export import span_dicts
from repro.workloads import zipf_corpus

#: gate workload: ~1.5 MB of Zipf text, wide vocabulary (more distinct
#: keys -> heavier per-chunk result pickles on the seed path)
GATE_PAYLOAD = 1_500_000
GATE_VOCAB = 12_000
GATE_CHUNK_BYTES = 16_000
GATE_JOBS = 6
GATE_WORKERS = 2
#: out-of-core case: budget a quarter of the input -> >= 4 spilled runs
GATE_BUDGET = 384_000

#: RSS case: value-list wordcount (no combiner) — every emitted value
#: lives in the parent accumulator in memory mode.  The corpus is
#: *uniform* (deterministic round-robin vocabulary), not Zipf: with skew,
#: the heaviest key's complete value list — which reduce semantics hand
#: to ``reduce_fn`` in one piece — is itself O(input) and would swamp
#: what the budget can bound (see DESIGN.md §9 for the skew caveat).
RSS_PAYLOAD = 8_000_000
RSS_VOCAB = 2_000
RSS_BUDGET = 768_000
RSS_CHUNK_BYTES = 96_000
#: resident bytes allowed per budget byte in out-of-core mode: Python
#: value lists + dicts + spill read-ahead blocks cost a small multiple of
#: the raw fragment payload (cf. the paper's ~3x WC footprint, Section V-C)
RSS_ALLOWANCE_FACTOR = 6.0

#: required streaming-over-seed speedup (enforced by perf_gate --real);
#: raised from 1.3x when the zero-copy data plane landed (typ. ~2.1-2.2x
#: measured on the CI shape; 2.5x is the aspirational target)
STREAMING_GATE = 2.0

#: absolute input-throughput floor for the streaming engine (MB/s of
#: corpus bytes per wall second across the timed jobs) — catches the
#: case where seed and streaming regress together and the ratio hides it.
#: Measured ~25-30 MB/s on the reference box; floored with ~3x headroom
#: for slower CI hardware.
THROUGHPUT_FLOOR_MB_S = 8.0

#: shm may not lose to pickle by more than timer noise (they differ by a
#: copy regime, not an algorithm, so the allowed slack is small)
SHM_VS_PICKLE_TOLERANCE = 1.10

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _corpus_file(payload: int, vocab: int, seed: int) -> str:
    data = zipf_corpus(payload, vocabulary=vocab, seed=seed)
    f = tempfile.NamedTemporaryFile(suffix=".txt", delete=False)
    with f:
        f.write(data)
    return f.name


def _uniform_corpus_file(payload: int, vocab: int) -> str:
    """Deterministic corpus where every vocabulary word is ~equally
    frequent (see the RSS_PAYLOAD note for why not Zipf)."""
    words = [f"w{i:04d}".encode() for i in range(vocab)]
    n_words = max(1, payload // 6)
    parts: list[bytes] = []
    for i in range(n_words):
        parts.append(words[i % vocab])
        parts.append(b"\n" if (i + 1) % 12 == 0 else b" ")
    f = tempfile.NamedTemporaryFile(suffix=".txt", delete=False)
    with f:
        f.write(b"".join(parts))
    return f.name


def _wordcount_engine(**kw) -> LocalMapReduce:
    return LocalMapReduce(
        map_fn=wc_map, reduce_fn=wc_reduce, combine_fn=operator.add,
        sort_output=True, **kw,
    )


def _time_jobs(run_one, n_jobs: int, passes: int = 2) -> tuple[float, list]:
    """Outputs and best-of-``passes`` wall seconds for ``n_jobs``
    back-to-back jobs, after one untimed warmup job.

    Best-of is applied identically to every engine measured (seed,
    streaming on either transport, out-of-core): a single multi-ms
    scheduler preemption inside one pass would otherwise decide a gated
    ratio on a loaded CI box.
    """
    run_one()
    best = float("inf")
    for _ in range(passes):
        outs = []
        t0 = time.perf_counter()
        for _ in range(n_jobs):
            outs.append(run_one())
        best = min(best, time.perf_counter() - t0)
    return best, outs


def _measure_rss(path: str, chunk_bytes: int, budget: int | None) -> dict:
    """Run :mod:`benchmarks.rss_probe` in a fresh subprocess; parsed JSON."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p
        for p in (os.path.join(_ROOT, "src"), _ROOT, env.get("PYTHONPATH"))
        if p
    )
    proc = subprocess.run(
        [
            sys.executable, "-m", "benchmarks.rss_probe",
            path, str(chunk_bytes), str(budget or 0),
        ],
        capture_output=True, text=True, env=env, cwd=_ROOT, timeout=600,
    )
    if proc.returncode != 0:
        raise RuntimeError(f"rss_probe failed:\n{proc.stderr}")
    return json.loads(proc.stdout)


def run_real_suite(
    quick: bool = False,
    start_method: str | None = None,
    n_workers: int = GATE_WORKERS,
) -> dict:
    """The whole real-engine suite; returns the BENCH_real_engine payload.

    ``quick`` shrinks the workload (fewer jobs, smaller corpus) for CI;
    the speedup gate and the RSS bound are asserted in both modes.
    ``start_method`` is plumbed straight into the streaming engines
    (``None``: the engine default — forkserver where usable).
    """
    payload = GATE_PAYLOAD // 2 if quick else GATE_PAYLOAD
    n_jobs = max(3, GATE_JOBS // 2) if quick else GATE_JOBS
    budget = GATE_BUDGET // 2 if quick else GATE_BUDGET

    path = _corpus_file(payload, GATE_VOCAB, seed=1)
    rss_payload = RSS_PAYLOAD // 2 if quick else RSS_PAYLOAD
    rss_path = _uniform_corpus_file(rss_payload, RSS_VOCAB)
    try:
        # -- streaming vs frozen barrier path --------------------------------
        seed_eng = SeedLocalMapReduce(
            map_fn=wc_map, reduce_fn=wc_reduce, combine_fn=operator.add,
            sort_output=True, n_workers=n_workers,
        )
        seed_s, seed_outs = _time_jobs(
            lambda: seed_eng.run(path, chunk_bytes=GATE_CHUNK_BYTES).output,
            n_jobs,
        )

        with _wordcount_engine(
            n_workers=n_workers, start_method=start_method, transport="pickle"
        ) as pickle_eng:
            pickle_s, pickle_outs = _time_jobs(
                lambda: pickle_eng.run(path, chunk_bytes=GATE_CHUNK_BYTES).output,
                n_jobs,
            )

        with _wordcount_engine(
            n_workers=n_workers, start_method=start_method, transport="auto"
        ) as stream_eng:
            resolved_method = stream_eng.start_method
            stream_s, stream_results = _time_jobs(
                lambda: stream_eng.run(path, chunk_bytes=GATE_CHUNK_BYTES),
                n_jobs,
            )
            stream_outs = [r.output for r in stream_results]
            resolved_transport = stream_results[0].transport

        # -- out-of-core: multi-fragment, identical output -------------------
        with _wordcount_engine(
            n_workers=n_workers, start_method=start_method,
            memory_budget=budget,
        ) as ooc_eng:
            ooc_s, ooc_results = _time_jobs(
                lambda: ooc_eng.run(path, chunk_bytes=GATE_CHUNK_BYTES),
                n_jobs,
            )
        ooc_outs = [r.output for r in ooc_results]

        reference = seed_outs[0]
        all_match = all(
            o == reference
            for outs in (seed_outs, stream_outs, pickle_outs, ooc_outs)
            for o in outs
        )
        speedup = seed_s / stream_s if stream_s else float("inf")
        ooc_speedup = seed_s / ooc_s if ooc_s else float("inf")
        throughput_mb_s = (payload * n_jobs) / stream_s / 1e6 if stream_s else 0.0
        # shm-vs-pickle is only a comparison where shm actually resolved
        # (no /dev/shm -> "auto" degrades to pickle and the two runs are
        # the same transport)
        transports_compared = resolved_transport == "shm"
        shm_ok = (not transports_compared) or (
            stream_s <= pickle_s * SHM_VS_PICKLE_TOLERANCE
        )

        # -- critical path over one traced streaming job ---------------------
        # untimed: tracing costs real time, so this job rides outside the
        # gated measurements.  The span tree is parent-id linked (one
        # process track plus worker tracks stitched under the batch
        # spans), so the walk's exclusive segments partition the job span
        # exactly — coverage < 90% would mean spans escaped the tree.
        traced_obs = Observability(enabled=True)
        with _wordcount_engine(
            n_workers=n_workers, start_method=start_method, obs=traced_obs,
        ) as traced_eng:
            traced_eng.run(path, chunk_bytes=GATE_CHUNK_BYTES)
        cp = critical_path(span_dicts(traced_obs), root_name="localmr.job")
        critpath = {
            "wall_s": round(cp["wall"], 4),
            "covered": round(cp["covered"], 4),
            "segments": len(cp["path"]),
            "by_name": [
                {
                    "name": r["name"], "count": r["count"],
                    "self_s": round(r["self"], 4), "pct": round(r["pct"], 2),
                }
                for r in cp["by_name"]
            ],
            "covered_ok": cp["covered"] >= 0.90,
        }

        # -- peak-RSS bound ---------------------------------------------------
        rss_mem = _measure_rss(rss_path, RSS_CHUNK_BYTES, budget=None)
        rss_ooc = _measure_rss(rss_path, RSS_CHUNK_BYTES, budget=RSS_BUDGET)
        rss_bound_kib = RSS_ALLOWANCE_FACTOR * RSS_BUDGET / 1024
        rss_ok = (
            rss_ooc["mode"] == "outofcore"
            and rss_mem["mode"] == "memory"
            and rss_ooc["n_fragments"] >= 2
            and rss_ooc["extra_kib"] <= rss_bound_kib
            and rss_ooc["extra_kib"] < rss_mem["extra_kib"]
        )
        rss_outputs_match = (
            rss_mem["n_keys"] == rss_ooc["n_keys"]
            and rss_mem["digest"] == rss_ooc["digest"]
        )

        return {
            "benchmark": "real engine: streaming/out-of-core vs frozen barrier path",
            "mode": "quick" if quick else "full",
            "workload": {
                "payload_bytes": payload,
                "vocabulary": GATE_VOCAB,
                "chunk_bytes": GATE_CHUNK_BYTES,
                "n_jobs": n_jobs,
                "n_workers": n_workers,
                "start_method": resolved_method,
                "memory_budget": budget,
            },
            "gates": {
                "streaming_speedup_min": STREAMING_GATE,
                "throughput_floor_mb_s": THROUGHPUT_FLOOR_MB_S,
                "shm_vs_pickle_tolerance": SHM_VS_PICKLE_TOLERANCE,
            },
            "seed_s": round(seed_s, 4),
            "streaming_s": round(stream_s, 4),
            "speedup": round(speedup, 3),
            "throughput_mb_s": round(throughput_mb_s, 2),
            "all_match": all_match,
            "transports": {
                "resolved": resolved_transport,
                "compared": transports_compared,
                "pickle_s": round(pickle_s, 4),
                "shm_s": round(stream_s, 4) if transports_compared else None,
                "shm_speedup_over_pickle": (
                    round(pickle_s / stream_s, 3)
                    if transports_compared and stream_s
                    else None
                ),
                "within_tolerance": shm_ok,
            },
            "gate_ok": (
                all_match
                and speedup >= STREAMING_GATE
                and throughput_mb_s >= THROUGHPUT_FLOOR_MB_S
                and shm_ok
                and rss_ok
                and critpath["covered_ok"]
            ),
            "critpath": critpath,
            "outofcore": {
                "elapsed_s": round(ooc_s, 4),
                "speedup_vs_seed": round(ooc_speedup, 3),
                "n_fragments": ooc_results[0].n_fragments,
                "spilled_bytes": ooc_results[0].spilled_bytes,
                "note": (
                    "not speed-gated: partitioning overhead at sizes that "
                    "fit in memory matches the paper's Fig 7; the win is "
                    "the memory bound"
                ),
            },
            "rss": {
                "payload_bytes": rss_payload,
                "budget_bytes": RSS_BUDGET,
                "allowance_factor": RSS_ALLOWANCE_FACTOR,
                "bound_kib": round(rss_bound_kib, 1),
                "memory_mode_extra_kib": rss_mem["extra_kib"],
                "outofcore_extra_kib": rss_ooc["extra_kib"],
                "outofcore_fragments": rss_ooc["n_fragments"],
                "outofcore_spilled_bytes": rss_ooc["spilled_bytes"],
                "bounded": rss_ok,
                "outputs_match": rss_outputs_match,
            },
        }
    finally:
        os.unlink(path)
        os.unlink(rss_path)


# -- pytest-benchmark entry points ------------------------------------------


def bench_real_wordcount(benchmark):
    """Parallel vs serial wall-clock on this machine's real cores."""
    from benchmarks.conftest import once

    data = zipf_corpus(3_000_000, seed=1)
    with tempfile.NamedTemporaryFile(suffix=".txt", delete=False) as f:
        f.write(data)
        path = f.name
    try:
        with _wordcount_engine() as engine:
            def run_parallel():
                return engine.run(path)

            res = once(benchmark, run_parallel)
            serial = engine.run(path, parallel=False)
        truth = Counter(data.split())

        print(banner("REAL MACHINE - streaming mini-Phoenix, WordCount"))
        cores = os.cpu_count() or 1
        print(
            f"{len(data) / 1e6:.1f}MB file | {cores} core(s) | "
            f"parallel {res.elapsed:.3f}s ({res.n_workers} workers, "
            f"{res.n_chunks} chunks) vs serial {serial.elapsed:.3f}s "
            f"=> {serial.elapsed / res.elapsed:.2f}x"
        )
        # correctness is unconditional
        assert dict(res.output) == dict(truth)
        assert res.output == serial.output
        # honesty clause: only claim a speedup where the hardware has one
        if cores >= 2 and res.n_workers >= 2:
            assert res.elapsed < serial.elapsed * 1.10
        else:
            print(
                "single-core machine: no parallel speedup possible; "
                "the simulator carries the multicore claims"
            )
    finally:
        os.unlink(path)


def bench_streaming_vs_seed(benchmark):
    """The perf-gate suite under pytest-benchmark (quick shape)."""
    from benchmarks.conftest import once

    payload = once(benchmark, lambda: run_real_suite(quick=True))
    if not (
        payload["speedup"] >= STREAMING_GATE
        and payload["throughput_mb_s"] >= THROUGHPUT_FLOOR_MB_S
        and payload["transports"]["within_tolerance"]
    ):
        # one retry absorbs transient machine load from the wider
        # benchmark session (the quick shape standalone sits at ~2.7x);
        # a real perf regression fails both runs
        payload = run_real_suite(quick=True)
    tr = payload["transports"]
    print(banner("REAL MACHINE - streaming engine vs frozen barrier path"))
    print(
        f"seed {payload['seed_s']:.3f}s vs streaming {payload['streaming_s']:.3f}s "
        f"=> {payload['speedup']:.2f}x (gate >= {STREAMING_GATE}x) | "
        f"{payload['throughput_mb_s']:.1f} MB/s "
        f"(floor {THROUGHPUT_FLOOR_MB_S} MB/s) | "
        f"transport {tr['resolved']} vs pickle {tr['pickle_s']:.3f}s | "
        f"out-of-core {payload['outofcore']['speedup_vs_seed']:.2f}x, "
        f"{payload['outofcore']['n_fragments']} fragments | "
        f"RSS extra {payload['rss']['outofcore_extra_kib']}KiB "
        f"<= bound {payload['rss']['bound_kib']}KiB "
        f"(in-memory {payload['rss']['memory_mode_extra_kib']}KiB)"
    )
    assert payload["all_match"]
    assert payload["rss"]["bounded"] and payload["rss"]["outputs_match"]
    assert payload["speedup"] >= STREAMING_GATE
    assert payload["throughput_mb_s"] >= THROUGHPUT_FLOOR_MB_S
    assert tr["within_tolerance"]
    assert payload["gate_ok"]


def main(argv: list[str] | None = None) -> int:
    import argparse

    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true", help="smaller CI shape")
    ap.add_argument(
        "--start-method", default=None,
        choices=("fork", "forkserver", "spawn"),
        help="multiprocessing start method for the streaming engines",
    )
    ap.add_argument("--out", default=None, help="write the JSON payload here")
    args = ap.parse_args(argv)
    payload = run_real_suite(quick=args.quick, start_method=args.start_method)
    print(json.dumps(payload, indent=2))
    if args.out:
        with open(args.out, "w") as f:
            json.dump(payload, f, indent=2)
            f.write("\n")
    return 0 if payload["gate_ok"] else 2


if __name__ == "__main__":
    sys.exit(main())
