"""Shared machinery for the evaluation benchmarks.

Each ``bench_figX.py`` regenerates one table/figure of the paper: it runs
the relevant simulated experiments, prints the same rows/series the paper
reports (plus paper-vs-measured bands), and asserts that the reproduction
lands in those bands.  ``pytest benchmarks/ --benchmark-only`` runs them
all; the pytest-benchmark wall-clock numbers measure the *simulator's*
real cost, while the printed simulated seconds carry the reproduction.
"""

from __future__ import annotations

import typing as _t

import pytest


def once(benchmark, fn: _t.Callable[[], object]) -> object:
    """Run ``fn`` exactly once under pytest-benchmark timing.

    The experiments are deterministic sweeps — repeating them only wastes
    wall-clock, so every bench uses a single round.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture(autouse=True)
def _print_spacer(capsys):
    """Keep bench output readable: flush a newline before each bench."""
    print()
    yield
