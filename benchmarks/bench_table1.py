"""Table I: the 5-node cluster configuration, plus simulator microbenches.

Prints the testbed configuration exactly as Table I lays it out and
verifies the built cluster honours it.  The microbenches measure the
simulator substrate itself (events/second, a 1 GB NFS transfer, a full
smartFAM round trip) so regressions in the reproduction's engine show up
here.
"""

from __future__ import annotations

from benchmarks.conftest import once
from repro.analysis.report import banner, render_table
from repro.cluster.testbed import Testbed
from repro.config import CELERON_450, DUO_E4400, QUAD_Q9400, table1_cluster
from repro.units import GiB, MB
from repro.workloads import text_input


def bench_table1_configuration(benchmark):
    """Build the Table I testbed and print its configuration."""

    def build():
        return Testbed(seed=0)

    bed = once(benchmark, build)
    cfg = bed.config

    rows = []
    for node in cfg.nodes:
        rows.append(
            [
                node.name,
                node.cpu.name,
                f"{node.cpu.cores}c @ {node.cpu.clock_ghz}GHz",
                f"{node.mem_bytes / GiB(1):.0f}GiB",
                node.role,
            ]
        )
    print(banner("TABLE I - the configuration of the 5-node cluster"))
    print(render_table(["node", "CPU", "cores", "memory", "role"], rows))
    print(
        "network: 1000Mbps switch | OS (modelled): Ubuntu 9.04 64-bit | "
        "paper: one host (Quad Q9400), one SD (Duo E4400), 3x Celeron 450"
    )

    # Table I facts
    assert bed.host.config.cpu == QUAD_Q9400
    assert bed.sd.config.cpu == DUO_E4400
    assert [n.config.cpu for n in bed.cluster.compute_nodes] == [CELERON_450] * 3
    assert all(n.mem_bytes == GiB(2) for n in cfg.nodes)
    assert cfg.network.link_bandwidth == 1e9 / 8
    assert len(cfg.nodes) == 5
    # wiring: host mounts the SD export; smartFAM modules preloaded
    assert bed.cluster.mount() is not None
    assert set(bed.cluster.sd_daemons) == {"sd0"}


def bench_simulator_event_rate(benchmark):
    """Raw kernel throughput: events processed per real second."""
    from repro.sim import Simulator

    N = 200_000

    def run():
        sim = Simulator()

        def ticker(sim):
            for _ in range(N):
                yield sim.timeout(1.0)

        sim.spawn(ticker(sim))
        sim.run()
        return sim.processed_events

    events = once(benchmark, run)
    assert events >= N
    rate = events / max(benchmark.stats.stats.mean, 1e-9)
    print(f"kernel: {events} events, ~{rate / 1e6:.2f}M events/s real")


def bench_nfs_gigabyte_transfer(benchmark):
    """A 1 GB NFS read host<-SD: simulated seconds + real cost."""

    def run():
        bed = Testbed(seed=0)
        inp = text_input("/data/big", MB(1000), payload_bytes=4_000, seed=1)
        _sd, host_view, _path = bed.stage_on_sd("big", inp)

        def proc():
            t0 = bed.sim.now
            fs, rel = bed.host.resolve_fs(host_view.path)
            yield fs.read(rel, nbytes=MB(1000))
            return bed.sim.now - t0

        return bed.run(proc())

    elapsed = once(benchmark, run)
    print(f"1GB NFS read: {elapsed:.2f}s simulated (disk 8.3s + wire 8s, serial)")
    # server disk (120 MB/s) + 1 GbE wire (125 MB/s), sequential in NFSv3
    assert 14.0 < elapsed < 19.0


def bench_smartfam_roundtrip(benchmark):
    """Full smartFAM invoke->result cycle for a tiny module call."""

    def run():
        bed = Testbed(seed=0)
        inp = text_input("/data/tiny", MB(1), payload_bytes=2_000, seed=1)
        _sd, _host, sd_path = bed.stage_on_sd("tiny", inp)

        def proc():
            t0 = bed.sim.now
            yield bed.cluster.channel().invoke(
                "wordcount",
                {"input_path": sd_path, "input_size": MB(1), "mode": "parallel"},
            )
            return bed.sim.now - t0

        return bed.run(proc())

    elapsed = once(benchmark, run)
    print(f"smartFAM round trip (1MB wordcount): {elapsed * 1e3:.1f}ms simulated")
    # channel overhead (log writes, inotify, polling) stays sub-second
    assert elapsed < 1.0
