"""Peak-RSS probe for the real engine: ``python -m benchmarks.rss_probe``.

Run as its own process so ``resource.getrusage(...).ru_maxrss`` — a
*process-lifetime high-water mark* — reflects exactly one engine run.
Kept import-light (no pytest, no bench harness): anything imported before
the baseline snapshot that transiently allocates would raise the mark and
hide the run's own footprint, which is how a probe reads "0 KiB extra"
for a run that plainly holds megabytes.

The measured mark is the **parent's**: the engine maps through a worker
pool, so chunk bytes and mmap pages are resident in the workers, and
what's left in the parent is precisely what the streaming pipeline makes
claims about — the merge accumulator plus in-flight results in memory
mode, one fragment's accumulator plus spill blocks and merge read-ahead
out of core.  The workload runs *without* a combiner so every emitted
value survives to the parent: the in-memory accumulator is O(input),
which is the case the memory budget exists to bound.

One subtlety forces a two-stage launch: on Linux ``ru_maxrss`` survives
``exec``, so a probe forked directly from a large benchmark process
starts life with the *parent's* high-water mark — its own usage never
raises the mark and every delta reads 0.  What propagates through a fork
is the parent's *current* RSS, though, so the probe first re-execs
itself: stage 1 (mark poisoned, but small) forks stage 2, which
therefore starts with a clean low mark and does the measuring.

The engine runs on the *pickle* transport: the shared-memory ring is a
preallocated, input-independent buffer (``n_workers x SLOTS_PER_WORKER
x slot_bytes``, ~8 MiB at the defaults) whose pages land in the
parent's RSS as results are decoded — a fixed overhead that would
swamp the input-*scaling* bound this probe exists to measure.  The
ring's constant cost is visible in ``BENCH_real_engine.json``'s
transport section instead.

Output: one JSON object on stdout — baseline/peak/extra KiB, run mode,
fragment and spill stats, and a digest of the full output for
cross-mode equality checks.
"""

from __future__ import annotations

import hashlib
import json
import os
import resource
import subprocess
import sys

_STAGE_VAR = "_RSS_PROBE_STAGE2"


def main(argv: list[str]) -> int:
    if len(argv) != 3:
        print("usage: rss_probe <path> <chunk_bytes> <budget|0>", file=sys.stderr)
        return 2
    if os.environ.get(_STAGE_VAR) != "1":
        env = dict(os.environ)
        env[_STAGE_VAR] = "1"
        proc = subprocess.run(
            [sys.executable, "-m", "benchmarks.rss_probe", *argv], env=env
        )
        return proc.returncode
    path, chunk_bytes, budget = argv[0], int(argv[1]), int(argv[2]) or None

    from repro.apps.wordcount import wc_map, wc_reduce
    from repro.exec import LocalMapReduce

    baseline_kib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    with LocalMapReduce(
        map_fn=wc_map, reduce_fn=wc_reduce, combine_fn=None,
        sort_output=True, n_workers=2, start_method="fork",
        memory_budget=budget, transport="pickle",
    ) as eng:
        res = eng.run(path, chunk_bytes=chunk_bytes)
    peak_kib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    json.dump(
        {
            "baseline_kib": baseline_kib,
            "peak_kib": peak_kib,
            "extra_kib": peak_kib - baseline_kib,
            "mode": res.mode,
            "n_fragments": res.n_fragments,
            "spilled_bytes": res.spilled_bytes,
            "n_keys": len(res.output),
            "digest": hashlib.sha256(repr(res.output).encode()).hexdigest(),
        },
        sys.stdout,
    )
    print()
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
