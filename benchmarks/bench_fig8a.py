"""Fig 8(a): single-application speedups of partition-enabled Phoenix.

"Fig. 8(a) depicts speedups of partition-enabled Phoenix vs original
Phoenix and the sequential approach on both duo-core and quad-core
machines.  The data size is scaling from 500MB to 1.25GB."

Rows printed per platform/app: the speedup of the partition-enabled run
over (a) the plain sequential implementation and (b) the original
(non-partitioned) Phoenix.

Paper bands checked (Section V-B):
* "both the benchmarks can achieve a 2X speedup [over sequential], which
  proves the fully utilization of duo-core";
* quad-core speedups exceed duo-core (axis tops out around 4.5);
* for WC at huge sizes, the partitioned run approaches 1/6 of the
  traditional elapsed time (checked at the 1.25G end of this sweep).
"""

from __future__ import annotations

from benchmarks.conftest import once
from repro.analysis.metrics import Series, speedup
from repro.analysis.report import banner, render_series_table
from repro.cluster.scenario import run_single_app
from repro.units import MB
from repro.workloads import FIG8A_SIZES, size_label


def _sweep():
    results = {}
    for app in ("wordcount", "stringmatch"):
        for platform in ("duo", "quad"):
            vs_seq, vs_par = [], []
            for size in FIG8A_SIZES:
                part = run_single_app(app, size, platform, "partitioned").elapsed
                seq = run_single_app(app, size, platform, "sequential").elapsed
                par = run_single_app(app, size, platform, "parallel").elapsed
                vs_seq.append(speedup(seq, part))
                vs_par.append(speedup(par, part))
            results[(app, platform)] = (vs_seq, vs_par)
    return results


def bench_fig8a_speedups(benchmark):
    results = once(benchmark, _sweep)
    xs = [s / MB(1) for s in FIG8A_SIZES]
    labels = [size_label(s) for s in FIG8A_SIZES]

    series_seq = [
        Series(f"{p.capitalize()}, {'WC' if a == 'wordcount' else 'SM'}", xs, results[(a, p)][0])
        for a in ("wordcount", "stringmatch")
        for p in ("quad", "duo")
    ]
    series_par = [
        Series(f"{p.capitalize()}, {'WC' if a == 'wordcount' else 'SM'}", xs, results[(a, p)][1])
        for a in ("wordcount", "stringmatch")
        for p in ("quad", "duo")
    ]
    print(banner("FIG 8(a) - partition-enabled Phoenix speedup vs SEQUENTIAL"))
    print(render_series_table(series_seq, labels))
    print(banner("FIG 8(a) - partition-enabled Phoenix speedup vs ORIGINAL Phoenix"))
    print(render_series_table(series_par, labels))

    wc_duo_seq = results[("wordcount", "duo")][0]
    sm_duo_seq = results[("stringmatch", "duo")][0]
    wc_quad_seq = results[("wordcount", "quad")][0]
    wc_duo_par = results[("wordcount", "duo")][1]

    print(
        "paper: ~2x vs sequential on duo | measured: "
        f"WC {sum(wc_duo_seq) / 4:.2f}x, SM {sum(sm_duo_seq) / 4:.2f}x"
    )
    print(
        "paper: partitioned ~1/6 of traditional at huge sizes | measured at "
        f"1.25G: {wc_duo_par[-1]:.2f}x"
    )

    # Bands
    assert all(1.7 <= v <= 2.2 for v in wc_duo_seq), wc_duo_seq
    assert all(1.7 <= v <= 2.2 for v in sm_duo_seq), sm_duo_seq
    # quad beats duo and lands under the figure's 4.5 ceiling
    assert all(q > d for q, d in zip(wc_quad_seq, wc_duo_seq))
    assert all(v <= 4.6 for v in wc_quad_seq)
    # WC vs original grows towards ~6x at 1.25G
    assert wc_duo_par[-1] > 4.5
    assert wc_duo_par[0] < 1.3  # parity at 500M ("almost the same")
