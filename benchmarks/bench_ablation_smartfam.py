"""Ablation: what does the smartFAM log-file channel cost?

The paper argues the storage interface (NFS + log files + inotify) makes
smart-disk prototypes "cost-effective since no NIC is needed" — but the
channel is polled and file-based, so it must cost *something*.  This bench
measures the invocation overhead (offloaded elapsed minus direct on-SD
elapsed) across job sizes and host polling intervals.

Expected: a fixed overhead well under a second per invocation, dominated
by the host-side NFS mtime polling interval — i.e. negligible against any
real data-intensive job, which is why the paper never charges it.
"""

from __future__ import annotations

import dataclasses

from benchmarks.conftest import once
from repro.analysis.report import banner, render_table
from repro.cluster import Testbed
from repro.config import SmartFAMConfig, table1_cluster
from repro.apps import make_wordcount_spec
from repro.phoenix import PhoenixRuntime
from repro.units import MB, msec
from repro.workloads import text_input

SIZES = (MB(10), MB(100), MB(500))
POLL_INTERVALS = (msec(10), msec(50), msec(200))


def _measure(size: int, poll: float) -> tuple[float, float]:
    cfg = table1_cluster(
        smartfam=SmartFAMConfig(host_poll_interval=poll)
    )
    bed = Testbed(config=cfg, seed=2)
    inp = text_input("/data/f", size, payload_bytes=8_000, seed=2)
    sd_view, _h, sd_path = bed.stage_on_sd("f", inp)
    rt = PhoenixRuntime(bed.sd, bed.config.phoenix)

    def direct():
        t0 = bed.sim.now
        yield rt.run(make_wordcount_spec(), sd_view, mode="parallel", write_output=False)
        return bed.sim.now - t0

    direct_t = bed.run(direct())

    def offloaded():
        t0 = bed.sim.now
        yield bed.cluster.channel().invoke(
            "wordcount",
            {"input_path": sd_path, "input_size": size, "mode": "parallel"},
        )
        return bed.sim.now - t0

    offload_t = bed.run(offloaded())
    return direct_t, offload_t


def bench_smartfam_overhead(benchmark):
    def sweep():
        rows = []
        for size in SIZES:
            for poll in POLL_INTERVALS:
                direct_t, offload_t = _measure(size, poll)
                rows.append((size, poll, direct_t, offload_t, offload_t - direct_t))
        return rows

    rows = once(benchmark, sweep)
    print(banner("ABLATION - smartFAM invocation overhead (offloaded - direct)"))
    print(
        render_table(
            ["job size", "poll (ms)", "direct (s)", "offloaded (s)", "overhead (s)"],
            [
                [f"{s / 1e6:.0f}MB", p * 1e3, d, o, ov]
                for s, p, d, o, ov in rows
            ],
        )
    )
    overheads = [ov for _, _, _, _, ov in rows]
    assert all(0 < ov < 1.0 for ov in overheads), overheads
    # the channel cost is ~independent of job size...
    by_poll: dict[float, list[float]] = {}
    for _s, p, _d, _o, ov in rows:
        by_poll.setdefault(p, []).append(ov)
    for p, ovs in by_poll.items():
        assert max(ovs) - min(ovs) < 0.35, (p, ovs)
    # ...but grows with the polling interval (the output write also lands
    # a disk write in the poll window, so the relation is monotone-ish)
    mean = {p: sum(v) / len(v) for p, v in by_poll.items()}
    assert mean[POLL_INTERVALS[0]] < mean[POLL_INTERVALS[-1]]
    print(
        "overhead is sub-second, size-independent, and scales with the "
        "host-side NFS polling interval — the channel is effectively free "
        "for data-intensive jobs"
    )
