"""Burst-buffer tier benchmark: warm spill reuse + readahead overlap.

Two halves, mirroring the two halves of :mod:`repro.tier`:

* **Real engine, warm vs cold tier** — the same out-of-core wordcount run
  twice through one :class:`~repro.tier.store.TieredStore`.  The cold run
  maps every fragment and spills its sorted runs into the tier; the warm
  run finds every run already resident (``tier.spill.reuse``) and goes
  straight to the merge — no map phase, no spill writes.  Wall-clock is
  the measurement; the gate is ``cold / warm >= WARM_GATE`` plus byte
  identity against a tier-less engine and the ground-truth Counter.
  Measured ~8-10x on the reference box; the gate is 1.3x so slow CI
  hardware only has to show the *shape* of the win, not its size.
* **Simulated cluster, readahead vs none** — the Table I duo-core SD
  running the extended Phoenix workflow over a payload-less input (the
  serial-read regime: each fragment's bytes must be read before its map
  can split them — exactly where Fig 6's "process fragment N while N+1
  loads" pipeline matters).  Two identical burst buffers, one with
  ``readahead_fragments=1`` and one with 0; simulated seconds are exact,
  so the gate is a deterministic elapsed ratio plus byte-equal outputs
  and a nonzero prefetch-hit byte count.

``tools/perf_gate.py --tier`` runs :func:`run_tier_suite` and writes the
payload to ``BENCH_tier.json`` (picked up by ``tools/bench_diff.py``).
"""

from __future__ import annotations

import operator
import os
import tempfile
import time
from collections import Counter

from repro.apps import make_wordcount_spec
from repro.apps.wordcount import wc_map, wc_reduce
from repro.cluster import Testbed
from repro.config import TierSpec, table1_cluster
from repro.exec import LocalMapReduce
from repro.obs import Observability
from repro.partition import ExtendedPhoenixRuntime
from repro.phoenix.api import InputSpec
from repro.tier import TieredStore, live_tier_dirs
from repro.units import MB, MiB, GiB
from repro.workloads import text_input, zipf_corpus

#: real half: warm-tier merge-only rerun over cold map+spill+merge.
#: Measured ~8-10x (the warm run skips the map phase entirely); gated
#: conservatively so CI noise cannot flip it.
WARM_GATE = 1.3

#: sim half: readahead=1 over readahead=0 at equal tier capacity in the
#: serial-read regime.  Simulated seconds are deterministic (measured
#: 1.22x on the duo SD); the gate allows for small model drift only.
PREFETCH_GATE = 1.05

#: real workload: ~1.5 MB Zipf corpus under a quarter-size budget ->
#: multiple spilled fragments per run
REAL_PAYLOAD = 1_500_000
REAL_VOCAB = 12_000
REAL_CHUNK_BYTES = 16_000
REAL_BUDGET = 384_000
#: tier sized to hold every run of the workload (the reuse case; eviction
#: behaviour is covered by tests, not this gate)
REAL_TIER_MEM = MiB(8)
REAL_TIER_SSD = MiB(64)

#: sim workload: 1.2 GB on the duo SD, 150 MB fragments -> 8 fragments
SIM_SIZE = MB(1200)
SIM_FRAGMENT = MB(150)
SIM_TIER = dict(mem_bytes=MiB(512), ssd_bytes=GiB(4))


def _corpus_file(payload: int, vocab: int, seed: int) -> str:
    data = zipf_corpus(payload, vocabulary=vocab, seed=seed)
    f = tempfile.NamedTemporaryFile(suffix=".txt", delete=False)
    with f:
        f.write(data)
    return f.name


def _wordcount_engine(**kw) -> LocalMapReduce:
    return LocalMapReduce(
        map_fn=wc_map, reduce_fn=wc_reduce, combine_fn=operator.add,
        sort_output=True, **kw,
    )


def _run_real_half(quick: bool) -> dict:
    payload = REAL_PAYLOAD // 2 if quick else REAL_PAYLOAD
    budget = REAL_BUDGET // 2 if quick else REAL_BUDGET
    path = _corpus_file(payload, REAL_VOCAB, seed=1)
    obs = Observability(enabled=False)
    try:
        # ground truth + tier-less reference
        with open(path, "rb") as f:
            truth = Counter(f.read().split())
        with _wordcount_engine(memory_budget=budget) as plain_eng:
            plain_out = plain_eng.run(path, chunk_bytes=REAL_CHUNK_BYTES).output

        with TieredStore(REAL_TIER_MEM, REAL_TIER_SSD, obs=obs) as store:
            with _wordcount_engine(
                memory_budget=budget, tier=store, readahead=1, obs=obs,
            ) as eng:
                t0 = time.perf_counter()
                cold_res = eng.run(path, chunk_bytes=REAL_CHUNK_BYTES)
                cold_s = time.perf_counter() - t0
                warm_s = float("inf")
                warm_outs = []
                for _ in range(2):
                    t0 = time.perf_counter()
                    warm_res = eng.run(path, chunk_bytes=REAL_CHUNK_BYTES)
                    warm_s = min(warm_s, time.perf_counter() - t0)
                    warm_outs.append(warm_res.output)
            tier_dir = store.ssd_dir
        ctr = obs.metrics.counters

        outputs_match = (
            cold_res.output == plain_out
            and dict(cold_res.output) == dict(truth)
            and all(o == cold_res.output for o in warm_outs)
        )
        n_runs = cold_res.n_fragments
        speedup = cold_s / warm_s if warm_s else float("inf")
        # two warm reruns, every run reused from the tier in each
        reuse_ok = ctr.get("tier.spill.reuse", 0) >= 2 * n_runs
        leaked = tier_dir in live_tier_dirs() or os.path.isdir(tier_dir)
        ok = (
            outputs_match
            and n_runs >= 2
            and speedup >= WARM_GATE
            and reuse_ok
            and not leaked
        )
        return {
            "payload_bytes": payload,
            "memory_budget": budget,
            "n_runs": n_runs,
            "cold_s": round(cold_s, 4),
            "warm_s": round(warm_s, 4),
            "warm_speedup": round(speedup, 3),
            "outputs_match": outputs_match,
            "runs_reused_warm": int(ctr.get("tier.spill.reuse", 0)),
            "prefetch_issued": int(ctr.get("tier.prefetch.issued", 0)),
            "writeback_bytes": int(ctr.get("tier.writeback.bytes", 0)),
            "tier_dir_leaked": leaked,
            "gate_ok": ok,
        }
    finally:
        os.unlink(path)


def _sim_run(tier: TierSpec | None, size: int):
    bed = Testbed(config=table1_cluster(tier=tier, seed=1))
    inp = text_input("/data/huge", size, payload_bytes=20_000, seed=1)
    staged, _host_view, _p = bed.stage_on_sd("huge", inp)
    # payload-less view: each fragment's bytes are read from the VFS
    # before its map can split them — the serial-read regime where
    # fragment N+1's prefetch overlaps fragment N's compute
    view = InputSpec(
        path=staged.path, size=staged.size, payload=None, params=staged.params,
    )
    ext = ExtendedPhoenixRuntime(bed.sd, bed.config.phoenix)

    def gen():
        res = yield ext.run(make_wordcount_spec(), view, fragment_bytes=SIM_FRAGMENT)
        return res

    res = bed.run(gen())
    return res, bed.sim.obs.metrics.counters


def _run_sim_half(quick: bool) -> dict:
    size = SIM_SIZE // 2 if quick else SIM_SIZE
    res_none, _ = _sim_run(None, size)
    res_cold, _ = _sim_run(TierSpec(readahead_fragments=0, **SIM_TIER), size)
    res_ra, ctr = _sim_run(TierSpec(readahead_fragments=1, **SIM_TIER), size)

    outputs_match = res_none.output == res_cold.output == res_ra.output
    speedup = res_cold.elapsed / res_ra.elapsed if res_ra.elapsed else float("inf")
    pf_hit_bytes = int(ctr.get("tier.prefetch.hit.bytes", 0))
    ok = (
        outputs_match
        and res_ra.n_fragments >= 2
        and speedup >= PREFETCH_GATE
        and pf_hit_bytes > 0
    )
    return {
        "input_bytes": size,
        "fragment_bytes": SIM_FRAGMENT,
        "n_fragments": res_ra.n_fragments,
        "no_tier_s": round(res_none.elapsed, 4),
        "no_readahead_s": round(res_cold.elapsed, 4),
        "readahead_s": round(res_ra.elapsed, 4),
        "prefetch_speedup": round(speedup, 3),
        "prefetch_hit_bytes": pf_hit_bytes,
        "prefetch_issued": int(ctr.get("tier.prefetch.issued", 0)),
        "outputs_match": outputs_match,
        "gate_ok": ok,
    }


def run_tier_suite(quick: bool = False) -> dict:
    """The whole tier suite; returns the BENCH_tier payload."""
    real = _run_real_half(quick)
    sim = _run_sim_half(quick)
    return {
        "benchmark": "burst-buffer tier: warm spill reuse + readahead overlap",
        "mode": "quick" if quick else "full",
        "gates": {
            "warm_speedup_min": WARM_GATE,
            "prefetch_speedup_min": PREFETCH_GATE,
        },
        "real": real,
        "sim": sim,
        "gate_ok": real["gate_ok"] and sim["gate_ok"],
    }


# -- pytest-benchmark entry point -------------------------------------------


def bench_tier_suite(benchmark):
    from benchmarks.conftest import once

    from repro.analysis.report import banner

    payload = once(benchmark, lambda: run_tier_suite(quick=True))
    print(banner("TIER - burst buffer: warm reuse + readahead overlap"))
    r, s = payload["real"], payload["sim"]
    print(
        f"real: cold {r['cold_s']:.3f}s vs warm {r['warm_s']:.3f}s "
        f"=> {r['warm_speedup']:.2f}x ({r['n_runs']} runs reused)"
    )
    print(
        f"sim:  no-readahead {s['no_readahead_s']:.2f}s vs readahead "
        f"{s['readahead_s']:.2f}s => {s['prefetch_speedup']:.2f}x "
        f"({s['prefetch_hit_bytes'] / 1e6:.0f}MB prefetch-hit)"
    )
    assert payload["gate_ok"], payload


def main(argv: list[str] | None = None) -> int:
    import argparse
    import json

    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true", help="smaller CI workload")
    ap.add_argument("--out", help="write the JSON payload here")
    args = ap.parse_args(argv)
    payload = run_tier_suite(quick=args.quick)
    text = json.dumps(payload, indent=2, sort_keys=True)
    print(text)
    if args.out:
        with open(args.out, "w") as f:
            f.write(text + "\n")
    return 0 if payload["gate_ok"] else 2


if __name__ == "__main__":
    raise SystemExit(main())
