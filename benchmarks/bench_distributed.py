"""Distributed single-job benchmark: one job sharded across N SD replicas.

Two cases, both in simulated time (deterministic, seconds of wall clock):

* **scaling** — the same single wordcount job run distributed over 1, 2
  and 4 SD replicas of the input (``Testbed.stage_replicated``), with the
  fragment plan held fixed across runs so every configuration processes
  the identical global fragment grid.  The gate demands near-linear
  scaling: >= 1.6x at 2 shards and >= 2.5x at 4 shards over the 1-shard
  distributed run.  The 1-shard run is also compared against the plain
  single-node partitioned engine — the distributed plane's overhead at
  width 1 must stay under 5%.
* **identity** — wordcount, stringmatch and matmul run distributed at
  1, 2 and 4 shards; every output must be byte-identical to the
  single-node partitioned run of the same job (matmul compared on the
  assembled product matrix, whose blocking is the same global task grid
  by construction).
* **recovery** — a reduce-owning node is killed mid-exchange at 4
  shards, once under the partial-restart engine and once in legacy
  whole-job-restart mode.  Both must produce the byte-identical output;
  the partial restart's added recovery time must be <= 0.5x what the
  whole-job restart adds.  A second scenario kills and revives an SD
  daemon under a heartbeat-enabled ``ClusterScheduler`` and proves the
  node rejoins through probation and serves a canary job again.

``run_distributed_suite`` returns the JSON payload for
``tools/perf_gate.py --distributed`` (gates architectural, so they hold
in ``--quick`` too).
"""

from __future__ import annotations

import math
import pickle

from repro.apps.matmul import assemble_product, matmul_input
from repro.cluster.testbed import Testbed
from repro.config import table1_cluster
from repro.core import DataJob, DistributedEngine, DistributedJob, OffloadEngine
from repro.core.loadbalance import Placement
from repro.units import MB
from repro.workloads import text_input

__all__ = [
    "SCALE_GATES",
    "WIDTH1_OVERHEAD_GATE",
    "RECOVERY_GATE",
    "run_distributed_suite",
]

#: n_shards -> minimum speedup over the 1-shard distributed run
SCALE_GATES = {2: 1.6, 4: 2.5}
#: the 1-shard distributed run may cost at most this fraction over the
#: plain single-node partitioned engine (the plane's fixed overhead)
WIDTH1_OVERHEAD_GATE = 0.05
#: a partial restart after one mid-exchange node kill may add at most
#: this fraction of the time a whole-job restart adds (4 shards)
RECOVERY_GATE = 0.5

#: generous per-job deadline — nothing dies in this benchmark
_TIMEOUT = 3600.0


def _flat_pairs(out: object) -> list:
    """Flatten matmul's (possibly nested identity-merged) output pairs."""
    pairs: list = []

    def walk(x: object) -> None:
        if isinstance(x, tuple) and len(x) == 2:
            pairs.append(x)
        elif isinstance(x, list):
            for y in x:
                walk(y)

    walk(out)
    return pairs


def _canonical(app: str, output: object) -> bytes:
    if app == "matmul":
        return pickle.dumps(assemble_product(_flat_pairs(output)).tolist())
    return pickle.dumps(output)


def _inputs(app: str, quick: bool):
    """(factory, size, fragment_bytes, mode, params) for one app."""
    if app == "matmul":
        n = 256 if quick else 512
        factory = lambda: matmul_input("/data/dist", n, payload_n=32, seed=3)
        return factory, factory().size, None, "parallel", {"n": n}
    size = MB(100) if quick else MB(200)
    factory = lambda: text_input("/data/dist", size, payload_bytes=6_000, seed=7)
    # fixed fragment plan: the 4-shard grid, identical in every run
    return factory, size, math.ceil(size / 4), "partitioned", {}


def _run_single(app: str, quick: bool):
    """The single-node partitioned baseline on a 1-SD cluster."""
    factory, size, frag, mode, params = _inputs(app, quick)
    bed = Testbed(config=table1_cluster(n_sd=1, seed=0), seed=0)
    inp = factory()
    _, sd_path = bed.stage_replicated("dist", inp)
    job = DataJob(
        app=app, input_path=sd_path, input_size=inp.size, mode=mode,
        fragment_bytes=frag, params=params,
    )
    eng = OffloadEngine(bed.cluster)
    placement = Placement(node=bed.sd.name, offload=True, reason="bench")
    return bed.run(eng.run(job, placement))


def _run_dist(app: str, quick: bool, n_shards: int):
    """One distributed run at the given width on a fresh 4-SD cluster."""
    factory, size, frag, mode, params = _inputs(app, quick)
    bed = Testbed(config=table1_cluster(n_sd=4, seed=0), seed=0)
    inp = factory()
    _, sd_path = bed.stage_replicated("dist", inp)
    job = DistributedJob(
        app=app, input_path=sd_path, input_size=inp.size,
        n_shards=n_shards, fragment_bytes=frag, params=params,
    )
    eng = DistributedEngine(bed.cluster)
    return bed.run(eng.run(job, timeout=_TIMEOUT))


# -- scaling ------------------------------------------------------------------


def scaling_case(quick: bool = False) -> dict:
    """One wordcount job, distributed over 1/2/4 SD replicas."""
    _, size, frag, _, _ = _inputs("wordcount", quick)
    single = _run_single("wordcount", quick)
    canon = _canonical("wordcount", single.output)

    runs = []
    base_s = None
    for n in (1, 2, 4):
        res = _run_dist("wordcount", quick, n)
        if base_s is None:
            base_s = res.elapsed
        speedup = base_s / res.elapsed if res.elapsed > 0 else 0.0
        need = SCALE_GATES.get(n)
        runs.append({
            "n_shards": n,
            "shard_nodes": list(res.shard_nodes),
            "elapsed_s": round(res.elapsed, 4),
            "speedup_vs_x1": round(speedup, 3),
            "gate": need,
            "gate_ok": need is None or speedup >= need,
            "shuffle_bytes": res.shuffle_bytes,
            "shuffle_transfers": res.shuffle_transfers,
            "n_partitions": res.n_partitions,
            "merge_node": res.merge_node,
            "identical": _canonical("wordcount", res.output) == canon,
        })
    overhead = (base_s - single.elapsed) / single.elapsed if single.elapsed else 0.0
    return {
        "input_mb": size // MB(1),
        "fragment_kib": None if frag is None else frag // 1024,
        "single_node_s": round(single.elapsed, 4),
        "width1_overhead": round(overhead, 4),
        "width1_overhead_gate": WIDTH1_OVERHEAD_GATE,
        "runs": runs,
        "gates": {str(k): v for k, v in SCALE_GATES.items()},
        "all_identical": all(r["identical"] for r in runs),
        "gate_ok": (
            all(r["gate_ok"] for r in runs)
            and overhead <= WIDTH1_OVERHEAD_GATE
        ),
    }


# -- identity -----------------------------------------------------------------


def identity_case(quick: bool = False) -> dict:
    """Every app, every width: distributed output == single-node output."""
    rows = []
    for app in ("wordcount", "stringmatch", "matmul"):
        single = _run_single(app, quick)
        canon = _canonical(app, single.output)
        for n in (1, 2, 4):
            res = _run_dist(app, quick, n)
            rows.append({
                "app": app,
                "n_shards": n,
                "elapsed_s": round(res.elapsed, 4),
                "shuffle_bytes": res.shuffle_bytes,
                "identical": _canonical(app, res.output) == canon,
            })
    return {
        "rows": rows,
        "gate_ok": all(r["identical"] for r in rows),
    }


# -- recovery -----------------------------------------------------------------


def _rejoin_demo() -> dict:
    """Kill a daemon under a heartbeat scheduler, revive it, and prove it
    rejoins through probation and serves a canary job again."""
    from repro.core.loadbalance import AlwaysOffloadPolicy
    from repro.sched import ClusterScheduler
    from repro.sched.health import HEALTHY, PROBATION, QUARANTINED

    bed = Testbed(config=table1_cluster(n_sd=2, seed=0), seed=0)
    inp = text_input("/data/rejoin", MB(20), payload_bytes=6_000, seed=5)
    _, sd_path = bed.stage_replicated("rejoin", inp)
    sched = ClusterScheduler(
        bed.cluster, policy=AlwaysOffloadPolicy(), cache=None,
        attempt_timeout=30.0, heartbeat=True,
    )
    timeline: dict[str, float] = {}

    def driver():
        yield bed.sim.timeout(2.0)
        bed.cluster.sd_daemons["sd0"].kill()
        for _ in range(200):
            if sched.health.state["sd0"] == QUARANTINED:
                break
            yield bed.sim.timeout(0.25)
        else:
            return None
        timeline["quarantined_at"] = bed.sim.now
        bed.cluster.sd_daemons["sd0"].revive()
        for _ in range(200):
            if sched.health.state["sd0"] == PROBATION:
                break
            yield bed.sim.timeout(0.25)
        else:
            return None
        timeline["probation_at"] = bed.sim.now
        # the canary: one job pinned to the rejoining node
        job = DataJob(
            app="wordcount", input_path=sd_path, input_size=inp.size,
            mode="parallel", sd_node="sd0",
        )
        res = yield sched.submit(job)
        timeline["canary_done_at"] = bed.sim.now
        return res

    res = bed.run(driver())
    counters = bed.sim.obs.metrics.snapshot()["counters"]
    final = sched.health.state["sd0"]
    ok = (
        res is not None
        and res.where == "sd0"
        and final == HEALTHY
        and counters.get("node.quarantined", 0) >= 1
        and counters.get("node.rejoined", 0) >= 1
    )
    return {
        "node": "sd0",
        "quarantined_at_s": round(timeline.get("quarantined_at", -1.0), 3),
        "probation_at_s": round(timeline.get("probation_at", -1.0), 3),
        "canary_done_at_s": round(timeline.get("canary_done_at", -1.0), 3),
        "final_state": final,
        "quarantines": int(counters.get("node.quarantined", 0)),
        "rejoins": int(counters.get("node.rejoined", 0)),
        "gate_ok": ok,
    }


def recovery_case(quick: bool = False) -> dict:
    """One node dies mid-exchange at 4 shards: the partial-restart engine's
    added recovery time must be <= ``RECOVERY_GATE`` of what the legacy
    whole-job restart adds, with byte-identical output either way; plus
    the heartbeat quarantine -> probation -> rejoin demonstration."""
    factory, _, frag, _, params = _inputs("wordcount", quick)

    def fresh():
        bed = Testbed(config=table1_cluster(n_sd=4, seed=0), seed=0)
        inp = factory()
        _, sd_path = bed.stage_replicated("dist", inp)
        job = DistributedJob(
            app="wordcount", input_path=sd_path, input_size=inp.size,
            n_shards=4, fragment_bytes=frag, params=params,
        )
        return bed, job

    bed, job = fresh()
    eng = DistributedEngine(bed.cluster)
    clean = bed.run(eng.run(job, timeout=_TIMEOUT))
    canon = _canonical("wordcount", clean.output)
    # a reduce owner that is not the merge node: its partition must be
    # re-reduced on a survivor, so both engines do real recovery work
    owners = [n for n in clean.reduce_nodes.values() if n != clean.merge_node]
    victim = owners[0] if owners else clean.merge_node
    kill_at = (clean.timeline["map_done"] + clean.timeline["exchange_done"]) / 2

    def chaos(partial: bool):
        bed2, job2 = fresh()
        eng2 = DistributedEngine(bed2.cluster, partial_restart=partial)

        def killer():
            yield bed2.sim.timeout(kill_at)
            bed2.cluster.sd_daemons[victim].kill()

        bed2.sim.spawn(killer(), name=f"bench.kill-{victim}")
        res = bed2.run(eng2.run(job2, timeout=5.0))
        return eng2, res

    eng_p, res_p = chaos(partial=True)
    eng_f, res_f = chaos(partial=False)

    def added(res):
        """Recovery time: failure detection -> job done.

        Detection (the invoke deadline on the dead daemon) costs the
        same in both modes; what the gate compares is the re-derivation
        work after it.
        """
        detect = min(f["at"] for f in res.recovery["failures"])
        return max(res.elapsed - detect, 0.0)

    partial_added = added(res_p)
    full_added = max(added(res_f), 1e-9)
    ratio = partial_added / full_added
    identical = (
        _canonical("wordcount", res_p.output) == canon
        and _canonical("wordcount", res_f.output) == canon
    )
    rejoin = _rejoin_demo()
    return {
        "killed": victim,
        "kill_at_s": round(kill_at, 4),
        "clean_s": round(clean.elapsed, 4),
        "detected_at_s": round(
            min(f["at"] for f in res_p.recovery["failures"]), 4
        ),
        "partial": {
            "elapsed_s": round(res_p.elapsed, 4),
            "recovery_s": round(partial_added, 4),
            "attempts": res_p.attempts,
            "partial_restarts": eng_p.partial_restarts,
            "full_restarts": eng_p.full_restarts,
        },
        "whole_job": {
            "elapsed_s": round(res_f.elapsed, 4),
            "recovery_s": round(full_added, 4),
            "attempts": res_f.attempts,
            "full_restarts": eng_f.full_restarts,
        },
        "recovery_ratio": round(ratio, 4),
        "recovery_gate": RECOVERY_GATE,
        "all_identical": identical,
        "rejoin": rejoin,
        "gate_ok": (
            identical
            and ratio <= RECOVERY_GATE
            and res_p.attempts == 1
            and eng_p.full_restarts == 0
            and eng_f.full_restarts >= 1
            and rejoin["gate_ok"]
        ),
    }


# -- suite --------------------------------------------------------------------


def run_distributed_suite(quick: bool = False) -> dict:
    """All three cases; the ``BENCH_distributed.json`` payload."""
    scaling = scaling_case(quick)
    identity = identity_case(quick)
    recovery = recovery_case(quick)
    return {
        "benchmark": "distributed: one job sharded across N SD replicas",
        "mode": "quick" if quick else "full",
        "scaling": scaling,
        "identity": identity,
        "recovery": recovery,
        "all_identical": (
            scaling["all_identical"]
            and identity["gate_ok"]
            and recovery["all_identical"]
        ),
        "gate_ok": (
            scaling["gate_ok"] and identity["gate_ok"] and recovery["gate_ok"]
        ),
    }


if __name__ == "__main__":
    import json

    payload = run_distributed_suite(quick=True)
    print(json.dumps(payload, indent=2))
