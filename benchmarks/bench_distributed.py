"""Distributed single-job benchmark: one job sharded across N SD replicas.

Two cases, both in simulated time (deterministic, seconds of wall clock):

* **scaling** — the same single wordcount job run distributed over 1, 2
  and 4 SD replicas of the input (``Testbed.stage_replicated``), with the
  fragment plan held fixed across runs so every configuration processes
  the identical global fragment grid.  The gate demands near-linear
  scaling: >= 1.6x at 2 shards and >= 2.5x at 4 shards over the 1-shard
  distributed run.  The 1-shard run is also compared against the plain
  single-node partitioned engine — the distributed plane's overhead at
  width 1 must stay under 5%.
* **identity** — wordcount, stringmatch and matmul run distributed at
  1, 2 and 4 shards; every output must be byte-identical to the
  single-node partitioned run of the same job (matmul compared on the
  assembled product matrix, whose blocking is the same global task grid
  by construction).

``run_distributed_suite`` returns the JSON payload for
``tools/perf_gate.py --distributed`` (gates architectural, so they hold
in ``--quick`` too).
"""

from __future__ import annotations

import math
import pickle

from repro.apps.matmul import assemble_product, matmul_input
from repro.cluster.testbed import Testbed
from repro.config import table1_cluster
from repro.core import DataJob, DistributedEngine, DistributedJob, OffloadEngine
from repro.core.loadbalance import Placement
from repro.units import MB
from repro.workloads import text_input

__all__ = [
    "SCALE_GATES",
    "WIDTH1_OVERHEAD_GATE",
    "run_distributed_suite",
]

#: n_shards -> minimum speedup over the 1-shard distributed run
SCALE_GATES = {2: 1.6, 4: 2.5}
#: the 1-shard distributed run may cost at most this fraction over the
#: plain single-node partitioned engine (the plane's fixed overhead)
WIDTH1_OVERHEAD_GATE = 0.05

#: generous per-job deadline — nothing dies in this benchmark
_TIMEOUT = 3600.0


def _flat_pairs(out: object) -> list:
    """Flatten matmul's (possibly nested identity-merged) output pairs."""
    pairs: list = []

    def walk(x: object) -> None:
        if isinstance(x, tuple) and len(x) == 2:
            pairs.append(x)
        elif isinstance(x, list):
            for y in x:
                walk(y)

    walk(out)
    return pairs


def _canonical(app: str, output: object) -> bytes:
    if app == "matmul":
        return pickle.dumps(assemble_product(_flat_pairs(output)).tolist())
    return pickle.dumps(output)


def _inputs(app: str, quick: bool):
    """(factory, size, fragment_bytes, mode, params) for one app."""
    if app == "matmul":
        n = 256 if quick else 512
        factory = lambda: matmul_input("/data/dist", n, payload_n=32, seed=3)
        return factory, factory().size, None, "parallel", {"n": n}
    size = MB(100) if quick else MB(200)
    factory = lambda: text_input("/data/dist", size, payload_bytes=6_000, seed=7)
    # fixed fragment plan: the 4-shard grid, identical in every run
    return factory, size, math.ceil(size / 4), "partitioned", {}


def _run_single(app: str, quick: bool):
    """The single-node partitioned baseline on a 1-SD cluster."""
    factory, size, frag, mode, params = _inputs(app, quick)
    bed = Testbed(config=table1_cluster(n_sd=1, seed=0), seed=0)
    inp = factory()
    _, sd_path = bed.stage_replicated("dist", inp)
    job = DataJob(
        app=app, input_path=sd_path, input_size=inp.size, mode=mode,
        fragment_bytes=frag, params=params,
    )
    eng = OffloadEngine(bed.cluster)
    placement = Placement(node=bed.sd.name, offload=True, reason="bench")
    return bed.run(eng.run(job, placement))


def _run_dist(app: str, quick: bool, n_shards: int):
    """One distributed run at the given width on a fresh 4-SD cluster."""
    factory, size, frag, mode, params = _inputs(app, quick)
    bed = Testbed(config=table1_cluster(n_sd=4, seed=0), seed=0)
    inp = factory()
    _, sd_path = bed.stage_replicated("dist", inp)
    job = DistributedJob(
        app=app, input_path=sd_path, input_size=inp.size,
        n_shards=n_shards, fragment_bytes=frag, params=params,
    )
    eng = DistributedEngine(bed.cluster)
    return bed.run(eng.run(job, timeout=_TIMEOUT))


# -- scaling ------------------------------------------------------------------


def scaling_case(quick: bool = False) -> dict:
    """One wordcount job, distributed over 1/2/4 SD replicas."""
    _, size, frag, _, _ = _inputs("wordcount", quick)
    single = _run_single("wordcount", quick)
    canon = _canonical("wordcount", single.output)

    runs = []
    base_s = None
    for n in (1, 2, 4):
        res = _run_dist("wordcount", quick, n)
        if base_s is None:
            base_s = res.elapsed
        speedup = base_s / res.elapsed if res.elapsed > 0 else 0.0
        need = SCALE_GATES.get(n)
        runs.append({
            "n_shards": n,
            "shard_nodes": list(res.shard_nodes),
            "elapsed_s": round(res.elapsed, 4),
            "speedup_vs_x1": round(speedup, 3),
            "gate": need,
            "gate_ok": need is None or speedup >= need,
            "shuffle_bytes": res.shuffle_bytes,
            "shuffle_transfers": res.shuffle_transfers,
            "n_partitions": res.n_partitions,
            "merge_node": res.merge_node,
            "identical": _canonical("wordcount", res.output) == canon,
        })
    overhead = (base_s - single.elapsed) / single.elapsed if single.elapsed else 0.0
    return {
        "input_mb": size // MB(1),
        "fragment_kib": None if frag is None else frag // 1024,
        "single_node_s": round(single.elapsed, 4),
        "width1_overhead": round(overhead, 4),
        "width1_overhead_gate": WIDTH1_OVERHEAD_GATE,
        "runs": runs,
        "gates": {str(k): v for k, v in SCALE_GATES.items()},
        "all_identical": all(r["identical"] for r in runs),
        "gate_ok": (
            all(r["gate_ok"] for r in runs)
            and overhead <= WIDTH1_OVERHEAD_GATE
        ),
    }


# -- identity -----------------------------------------------------------------


def identity_case(quick: bool = False) -> dict:
    """Every app, every width: distributed output == single-node output."""
    rows = []
    for app in ("wordcount", "stringmatch", "matmul"):
        single = _run_single(app, quick)
        canon = _canonical(app, single.output)
        for n in (1, 2, 4):
            res = _run_dist(app, quick, n)
            rows.append({
                "app": app,
                "n_shards": n,
                "elapsed_s": round(res.elapsed, 4),
                "shuffle_bytes": res.shuffle_bytes,
                "identical": _canonical(app, res.output) == canon,
            })
    return {
        "rows": rows,
        "gate_ok": all(r["identical"] for r in rows),
    }


# -- suite --------------------------------------------------------------------


def run_distributed_suite(quick: bool = False) -> dict:
    """Both cases; the ``BENCH_distributed.json`` payload."""
    scaling = scaling_case(quick)
    identity = identity_case(quick)
    return {
        "benchmark": "distributed: one job sharded across N SD replicas",
        "mode": "quick" if quick else "full",
        "scaling": scaling,
        "identity": identity,
        "all_identical": scaling["all_identical"] and identity["gate_ok"],
        "gate_ok": scaling["gate_ok"] and identity["gate_ok"],
    }


if __name__ == "__main__":
    import json

    payload = run_distributed_suite(quick=True)
    print(json.dumps(payload, indent=2))
