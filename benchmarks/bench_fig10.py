"""Fig 10: speedups of the MM + String-Match multi-application pair.

"In contrary, the speedups of the MM/SM, which represents less
data-intensive applications, are both averagely 2X speedup." — SM's 2x
footprint keeps every scenario out of deep thrash at these sizes, so all
three comparisons stay in the ~1-2.5x band (the paper's axes top out at
2.5), instead of exploding like MM/WC.
"""

from __future__ import annotations

from benchmarks.conftest import once
from repro.analysis.metrics import speedup
from repro.cluster.scenario import run_pair_scenario
from repro.workloads import FIG9_SIZES

from benchmarks.bench_fig9 import BASELINES, pair_sweep, print_pair

DATA_APP = "stringmatch"


def bench_fig10_mm_stringmatch(benchmark):
    results = once(benchmark, lambda: pair_sweep(DATA_APP))
    sp = print_pair(results, DATA_APP, "10")

    trad = sp["trad-sd"]
    host_only = sp["host-only"]
    nopart = sp["mcsd-nopart"]
    print(
        f"paper: ~1.5-2x everywhere, axes capped at 2.5 | measured means: "
        f"trad {sum(trad) / 4:.2f}x, host-only {sum(host_only) / 4:.2f}x, "
        f"no-part {sum(nopart) / 4:.2f}x"
    )

    # everything stays in the modest band of the paper's Fig 10
    for label, series in (("trad", trad), ("host-only", host_only), ("no-part", nopart)):
        assert all(0.9 <= v <= 2.6 for v in series), (label, series)
    # vs traditional SD approaches ~2x at the large end (duo vs single core)
    assert trad[-1] > 1.7
    # and the MM/SM pair never shows the MM/WC explosion
    assert max(host_only) < 2.6 and max(nopart) < 2.6
