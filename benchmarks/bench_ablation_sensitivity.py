"""Ablation: are the paper's conclusions robust to our calibration knobs?

The reproduction's one genuinely *fitted* component is the paging model
(`MemoryPolicy`): the thrash onset fraction and the penalty coefficient
were tuned so Fig 8(b)'s traditional/partitioned ratio lands at the
paper's ~6x (EXPERIMENTS.md).  A fair question is whether the paper's
qualitative claims survive if those knobs are wrong.

This sweep re-runs the WC duo comparison at 1.25G across a wide grid of
(thrash_fraction, thrash_coeff) and asserts the *conclusions* — not the
multiplier — hold everywhere:

1. partitioned beats traditional past the memory threshold,
2. partitioned itself is insensitive to the knobs (its fragments don't page),
3. the ratio grows monotonically with the penalty coefficient.
"""

from __future__ import annotations

from benchmarks.conftest import once
from repro.analysis.report import banner, render_table
from repro.apps import make_wordcount_spec
from repro.cluster import Testbed
from repro.config import MemoryPolicy, table1_cluster
from repro.phoenix import PhoenixRuntime
from repro.partition import ExtendedPhoenixRuntime
from repro.units import MB
from repro.workloads import text_input

SIZE = MB(1250)
FRACTIONS = (0.75, 0.85, 0.95)
COEFFS = (2.0, 6.2, 12.0)


def _ratio(fraction: float, coeff: float) -> tuple[float, float]:
    """(traditional/partitioned ratio, partitioned elapsed) at SIZE."""
    policy = MemoryPolicy(thrash_fraction=fraction, thrash_coeff=coeff)
    cfg = table1_cluster(memory_policy=policy)
    bed = Testbed(config=cfg, seed=1)
    inp = text_input("/data/f", SIZE, payload_bytes=10_000, seed=1)
    sd_view, _h, _p = bed.stage_on_sd("f", inp)
    rt = PhoenixRuntime(bed.sd, cfg.phoenix)
    ext = ExtendedPhoenixRuntime(bed.sd, cfg.phoenix)

    def go():
        trad = yield rt.run(make_wordcount_spec(), sd_view, mode="parallel")
        part = yield ext.run(make_wordcount_spec(), sd_view, fragment_bytes=None)
        return trad.stats.elapsed, part.elapsed

    trad_t, part_t = bed.run(go())
    return trad_t / part_t, part_t


def bench_calibration_sensitivity(benchmark):
    def sweep():
        return {
            (fr, co): _ratio(fr, co) for fr in FRACTIONS for co in COEFFS
        }

    res = once(benchmark, sweep)
    rows = []
    for fr in FRACTIONS:
        for co in COEFFS:
            ratio, part_t = res[(fr, co)]
            rows.append([fr, co, ratio, part_t])
    print(banner(f"ABLATION - paging-model sensitivity, WC duo at {SIZE / 1e6:.0f}MB"))
    print(
        render_table(
            ["thrash_fraction", "thrash_coeff", "trad/part ratio", "part elapsed (s)"],
            rows,
        )
    )

    part_times = [res[(fr, co)][1] for fr in FRACTIONS for co in COEFFS]
    spread = (max(part_times) - min(part_times)) / min(part_times)
    print(
        f"partitioned elapsed varies only {spread * 100:.1f}% across the grid; "
        "the winner never flips"
    )
    # 1) partitioned wins everywhere past the threshold
    assert all(res[(fr, co)][0] > 1.5 for fr in FRACTIONS for co in COEFFS)
    # 2) partitioned itself is (nearly) calibration-independent
    assert spread < 0.25
    # 3) penalty coefficient moves the ratio monotonically at each onset
    for fr in FRACTIONS:
        ratios = [res[(fr, co)][0] for co in COEFFS]
        assert ratios == sorted(ratios), (fr, ratios)
