"""Transport microbench: pickle-over-pipe vs the shared-memory slot path.

Models one worker result (a combiner map shaped like the real-engine
gate workload: ``bytes`` keys, small ``int`` values) through both
transports in a single process, so the numbers isolate serialization,
copies, and pipe traffic rather than scheduling:

* **pickle** — what :class:`repro.exec.transport.PickleTransport`
  costs: ``pickle.dumps`` to a materialized ``bytes``, the payload
  through a real OS pipe (interleaved 32 KiB writes/reads so any pipe
  capacity works), ``pickle.loads`` of the received buffer.
* **shm slot** — the actual worker body of
  :class:`repro.exec.transport.ShmRingTransport`: ``Pickler`` straight
  into the slot's ``memoryview`` behind the crc32 frame, the tiny
  ``("slot", i, nbytes)`` descriptor through the same pipe (that ride
  happens in the real engine too), then the parent's ``decode`` off the
  view — no payload-sized ``bytes`` materializes on either side.

Results are reported, not speed-gated (microsecond timings are noise on
a busy CI box); decoded-equality **is** asserted on every round.  Rides
``tools/perf_gate.py``'s default mode (quick included) and writes into
``BENCH_shuffle.json``'s payload alongside the shuffle grid.

Expect near-parity here, not a blowout: serialization dominates at these
payload sizes, and the ring's two crc32 passes (the price of integrity
framing) cost about what the avoided payload-sized pipe copies save.
The engine-level benefit (``BENCH_real_engine.json``) is structural —
result payloads stay off the executor's result pipe, so the parent's
critical path drains tiny descriptors instead of payload bytes.
"""

from __future__ import annotations

import os
import pickle
import time

from repro.exec.transport import ShmRingTransport

__all__ = ["run_transport_microbench", "run_transport_suite"]

#: payload shapes: distinct keys in one worker batch result at the
#: real-engine gate workload (~6.5k distinct zipf words per batch,
#: ~78 KB pickled), and a wide-keyspace shape (~0.5 MB pickled) where
#: the pipe's payload-sized copies dominate serialization
DEFAULT_KEYS = 6_500
WIDE_KEYS = 40_000
DEFAULT_ROUNDS = 40

_CHUNK = 32_768


def _payload(n_keys: int) -> dict:
    return {b"w%06d" % i: (i % 97) + 1 for i in range(n_keys)}


def _identity(args: object) -> object:
    return args


def _pipe_roundtrip(rfd: int, wfd: int, blob: bytes) -> bytearray:
    """Push ``blob`` through a real pipe and read it back.

    Writes are capped at 32 KiB and interleaved with reads, so the
    sender never blocks on pipe capacity even though both ends live in
    this one process.
    """
    view = memoryview(blob)
    total = len(blob)
    out = bytearray(total)
    sent = recvd = 0
    while recvd < total:
        if sent < total:
            sent += os.write(wfd, view[sent : sent + _CHUNK])
        got = os.read(rfd, _CHUNK * 2)
        out[recvd : recvd + len(got)] = got
        recvd += len(got)
    return out


def run_transport_microbench(
    n_keys: int = DEFAULT_KEYS, rounds: int = DEFAULT_ROUNDS
) -> dict:
    """Round-trip timings for both transports; raises on decode mismatch."""
    result = _payload(n_keys)
    payload_bytes = len(pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL))

    rfd, wfd = os.pipe()
    try:
        # one untimed warmup leg each: page-faults the pipe buffers /
        # the fresh shm slot and the segment attach out of the timings
        pickle.loads(
            _pipe_roundtrip(
                rfd, wfd, pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
            )
        )
        pickle_rounds: list[float] = []
        for _ in range(rounds):
            t0 = time.perf_counter()
            blob = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
            decoded = pickle.loads(_pipe_roundtrip(rfd, wfd, blob))
            pickle_rounds.append(time.perf_counter() - t0)
        assert decoded == result

        shm_available = True
        shm_rounds = None
        try:
            transport = ShmRingTransport(n_slots=1)
        except OSError:
            shm_available = False
        if shm_available:
            try:
                slot = transport.acquire()
                wfn, wargs = transport.wrap(_identity, result, slot)
                transport.decode(wfn(wargs))
                shm_rounds: list[float] = []
                for _ in range(rounds):
                    t0 = time.perf_counter()
                    wfn, wargs = transport.wrap(_identity, result, slot)
                    descriptor = pickle.loads(
                        _pipe_roundtrip(
                            rfd, wfd,
                            pickle.dumps(
                                wfn(wargs), protocol=pickle.HIGHEST_PROTOCOL
                            ),
                        )
                    )
                    decoded = transport.decode(descriptor)
                    shm_rounds.append(time.perf_counter() - t0)
                assert descriptor[0] == "slot", "result overflowed the slot"
                assert decoded == result
                transport.release(slot)
            finally:
                name = transport.shm_name
                transport.close()
                # both "sides" ran in this process: drop the worker-side
                # cached attachment too so the unlinked segment's mapping
                # does not outlive the bench
                from repro.exec.transport import _ATTACHED

                attached = _ATTACHED.pop(name, None)
                if attached is not None:
                    attached.close()
    finally:
        os.close(rfd)
        os.close(wfd)

    # best-of-rounds is the noise-robust statistic (a single multi-ms
    # scheduler preemption would dominate a mean on a loaded CI box);
    # the mean is reported alongside for honesty about the spread
    pickle_min = min(pickle_rounds)
    shm_min = min(shm_rounds) if shm_rounds is not None else None
    return {
        "benchmark": "transport round trip: pickle over the pipe vs shm slot",
        "n_keys": n_keys,
        "rounds": rounds,
        "payload_bytes": payload_bytes,
        "pickle_us_per_round": round(pickle_min * 1e6, 1),
        "pickle_us_mean": round(sum(pickle_rounds) / rounds * 1e6, 1),
        "shm_available": shm_available,
        "shm_us_per_round": (
            round(shm_min * 1e6, 1) if shm_min is not None else None
        ),
        "shm_us_mean": (
            round(sum(shm_rounds) / rounds * 1e6, 1)
            if shm_rounds is not None
            else None
        ),
        "shm_speedup_over_pickle": (
            round(pickle_min / shm_min, 3) if shm_min else None
        ),
        "decoded_match": True,  # asserted above, both legs
    }


def run_transport_suite(
    sizes: tuple[int, ...] = (DEFAULT_KEYS, WIDE_KEYS),
    rounds: int = DEFAULT_ROUNDS,
) -> list[dict]:
    """The microbench at each payload shape (see the size constants)."""
    return [run_transport_microbench(n, rounds) for n in sizes]


def bench_transport_roundtrip(benchmark):
    """pytest-benchmark entry point (one measured pass of the microbench)."""
    from benchmarks.conftest import once

    payload = once(benchmark, run_transport_microbench)
    print(
        f"transport: pickle {payload['pickle_us_per_round']}us vs shm "
        f"{payload['shm_us_per_round']}us per {payload['payload_bytes']}B "
        f"round trip"
        if payload["shm_available"]
        else "transport: shm unavailable here; pickle "
        f"{payload['pickle_us_per_round']}us per round trip"
    )
    assert payload["decoded_match"]


def main() -> int:
    import json

    print(json.dumps(run_transport_microbench(), indent=2))
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
