"""Ablation: interconnect bandwidth (the paper's stated future work).

"We will upgrade our testbed (e.g., replace Ethernet with Infiniband) to
evaluate the impact of fast network interconnects on McSD" (Section VI).
We run that experiment: the MM/WC pair at 1 GB under Fast Ethernet
(100 Mb/s), the paper's GbE, and an Infiniband-class 10 Gb/s fabric.

Expected shape: the *host-only* baseline — which drags the full dataset
over NFS — speeds up substantially with bandwidth, while McSD, whose
channel only moves log files, is insensitive.  Faster networks therefore
*shrink* McSD's advantage over host-only without eliminating it (the
memory wall, not the wire, dominates past the threshold).
"""

from __future__ import annotations

from benchmarks.conftest import once
from repro.analysis.report import banner, render_table
from repro.config import NetworkConfig
from repro.units import Gbit, MB, Mbit

NETWORKS = (
    ("100Mb Fast Ethernet", Mbit(100)),
    ("1Gb Ethernet (paper)", Gbit(1)),
    ("10Gb Infiniband-class", Gbit(10)),
)
SIZE = MB(1000)


def bench_network_bandwidth(benchmark):
    def sweep():
        out = []
        for label, bw in NETWORKS:
            net = NetworkConfig(link_bandwidth=bw)
            host_t = _run_with_network("host-only", net)
            mcsd_t = _run_with_network("mcsd", net)
            out.append((label, bw, host_t, mcsd_t, host_t / mcsd_t))
        return out

    rows = once(benchmark, sweep)
    print(banner(f"ABLATION - interconnect sweep, MM/WC pair at {SIZE / 1e6:.0f}MB"))
    print(
        render_table(
            ["network", "host-only (s)", "mcsd (s)", "mcsd speedup"],
            [[label, h, m, sp] for label, _bw, h, m, sp in rows],
        )
    )
    by_label = {label: (h, m, sp) for label, _bw, h, m, sp in rows}
    h100, m100, sp100 = by_label["100Mb Fast Ethernet"]
    h1g, m1g, sp1g = by_label["1Gb Ethernet (paper)"]
    h10g, m10g, sp10g = by_label["10Gb Infiniband-class"]
    # host-only improves monotonically with bandwidth
    assert h100 > h1g > h10g
    # McSD is insensitive: its channel moves kilobytes
    assert abs(m100 - m10g) / m1g < 0.05
    # the offload advantage shrinks but survives on a fast fabric
    assert sp100 > sp1g > sp10g > 1.5
    print(
        f"speedup {sp100:.1f}x -> {sp1g:.1f}x -> {sp10g:.1f}x: faster wires help "
        "the ship-data-to-compute baseline, but the memory wall keeps McSD ahead"
    )


def _run_with_network(scenario: str, net: NetworkConfig) -> float:
    """MM/WC makespan under a scenario on a testbed with a custom fabric."""
    from repro.cluster import scenario as sc
    from repro.cluster.testbed import Testbed
    from repro.config import table1_cluster

    cfg = table1_cluster(sd_cpu=sc.DUO_E4400, network=net)
    bed = Testbed(config=cfg, seed=0)
    data_spec, data_inp = sc.make_data_app("wordcount", SIZE, seed=0)
    _sd_view, host_view, sd_path = bed.stage_on_sd("input", data_inp)
    from repro.apps.matmul import make_matmul_spec, matmul_input
    from repro.phoenix.runtime import PhoenixRuntime

    mm_spec = make_matmul_spec(sc.DEFAULT_MM_N)
    mm_inp = matmul_input("/data/mm", sc.DEFAULT_MM_N, payload_n=48, seed=0)
    mm_staged = bed.stage(bed.host, "/data/mm", mm_inp)
    host_rt = PhoenixRuntime(bed.host, bed.config.phoenix)

    def mm_job():
        yield host_rt.run(mm_spec, mm_staged, mode="parallel")

    def data_job():
        if scenario == "host-only":
            yield host_rt.run(data_spec, host_view, mode="parallel")
        else:  # mcsd
            yield bed.cluster.channel().invoke(
                "wordcount",
                {
                    "input_path": sd_path,
                    "input_size": SIZE,
                    "mode": "partitioned",
                    "fragment_bytes": MB(600),
                    "app": data_inp.params,
                },
            )

    def experiment():
        t0 = bed.sim.now
        a = bed.sim.spawn(mm_job())
        b = bed.sim.spawn(data_job())
        yield bed.sim.all_of([a, b])
        return bed.sim.now - t0

    return bed.run(experiment())
