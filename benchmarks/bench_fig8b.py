"""Fig 8(b): Word Count elapsed-time growth curves on Duo and Quad.

"Fig. 8(b) draws the growth curves of elapsed time on duo-core and
quad-core machines.  The data size is scaling from 500MB to 2GB."

Also reproduces the supportability claim: "the traditional Phoenix cannot
support the Word-count ... for data size larger than 1.5G, because of the
memory overflow" — those cells print as ``n/s``.

Shape checks:
* the partition-enabled curves grow linearly ("the performance curve has
  linear-like growth, our methodology provides scalability");
* the traditional curves grow superlinearly once footprint outgrows RAM;
* traditional cells beyond 1.5G are unsupported.
"""

from __future__ import annotations

from benchmarks.conftest import once
from repro.analysis.metrics import Series
from repro.analysis.report import banner, render_ascii_chart, render_series_table
from repro.cluster.scenario import run_single_app
from repro.units import MB
from repro.workloads import FIG8BC_SIZES, size_label

APP = "wordcount"


def growth_sweep(app: str):
    out = {}
    for platform in ("duo", "quad"):
        for approach in ("partitioned", "parallel", "sequential"):
            ys = []
            for size in FIG8BC_SIZES:
                r = run_single_app(app, size, platform, approach)
                ys.append(r.elapsed)
            out[(platform, approach)] = ys
    return out


def check_growth_shapes(results, app: str, min_superlinearity: float = 1.8):
    """min_superlinearity: WC (3x footprint) bends hard (~>1.8x off-linear
    by 1.5G); SM (2x footprint) bends later and gentler (~1.5x)."""
    xs = [s / MB(1) for s in FIG8BC_SIZES]
    for platform in ("duo", "quad"):
        part = Series(f"{platform} partitioned", xs, results[(platform, "partitioned")])
        trad = Series(f"{platform} traditional", xs, results[(platform, "parallel")])
        # linear-like growth of the partition-enabled curve
        assert part.linearity_ratio() < 1.35, (app, platform, part.ys)
        assert part.is_monotone_increasing()
        # traditional: superlinear by the last supported point
        assert trad.linearity_ratio() > min_superlinearity, (app, platform, trad.ys)
        # unsupported beyond 1.5G (cells 1750M and 2000M)
        assert trad.ys[-2] is None and trad.ys[-1] is None
        assert all(y is not None for y in trad.ys[:5])


def print_growth(results, app: str, figure: str):
    xs = [s / MB(1) for s in FIG8BC_SIZES]
    labels = [size_label(s) for s in FIG8BC_SIZES]
    series = [
        Series("Duo trad", xs, results[("duo", "parallel")]),
        Series("Duo part", xs, results[("duo", "partitioned")]),
        Series("Quad trad", xs, results[("quad", "parallel")]),
        Series("Quad part", xs, results[("quad", "partitioned")]),
        Series("Duo seq", xs, results[("duo", "sequential")]),
    ]
    print(banner(f"FIG {figure} - {app} elapsed time growth curves (seconds)"))
    print(render_series_table(series, labels))
    print("n/s = not supported (memory overflow), exactly as the paper reports")
    print(render_ascii_chart(series[:2], y_label=f"{app} on the duo SD, seconds vs MB"))


def bench_fig8b_wordcount_growth(benchmark):
    results = once(benchmark, lambda: growth_sweep(APP))
    print_growth(results, APP, "8(b)")
    check_growth_shapes(results, APP)
    # the Section V-B quote: partitioned ~1/6 of traditional at huge sizes
    ratio = results[("duo", "parallel")][3] / results[("duo", "partitioned")][3]
    print(f"duo 1.25G traditional/partitioned = {ratio:.2f}x (paper: ~6x)")
    assert ratio > 4.5
