"""Tracing-off overhead check: instrumentation must be ~free when disabled.

The span/metrics call sites added across the sim kernel, NFS, smartFAM,
Phoenix, and the real engine are guarded by one ``enabled`` check and
return the shared ``NULL_SPAN``.  This bench quantifies what that guard
costs on the 10k-pair wordcount case and asserts it stays under 2% of
the job's runtime:

1. run the case once with tracing *enabled* and count every
   instrumentation hit (spans opened + flat records + counter bumps) —
   an upper bound on the number of guarded sites the untraced run
   executes;
2. measure the per-call cost of a disabled ``obs.span(...)`` /
   ``obs.count(...)`` in a tight loop;
3. compare hits x per-call cost against the measured untraced runtime.

The flight recorder is held to the same bar: with tracing off but the
recorder attached (the always-on black-box configuration), every record
and counter bump additionally pays one bounded ``deque.append`` — the
bench measures those per-call costs too and gates recorder-on overhead
under the same 2%.

Run via ``pytest benchmarks/bench_obs_overhead.py --benchmark-only`` or
directly with ``python benchmarks/bench_obs_overhead.py``.
"""

from __future__ import annotations

import os
import sys
import time
import typing as _t

if __name__ == "__main__":  # allow `python benchmarks/bench_obs_overhead.py`
    _REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    for _p in (_REPO_ROOT, os.path.join(_REPO_ROOT, "src")):
        if _p not in sys.path:
            sys.path.insert(0, _p)

from repro.cluster.testbed import Testbed
from repro.obs import Observability
from repro.units import MB
from repro.workloads import text_input

#: the gate: disabled instrumentation must cost less than this fraction
MAX_OVERHEAD = 0.02

#: ~10k words at the default payload word length
CASE_BYTES = MB(1)


def _run_wordcount(trace: bool) -> Testbed:
    bed = Testbed(seed=3, trace=trace)
    inp = text_input("/data/input", CASE_BYTES, payload_bytes=80_000, seed=4)
    _sd, _host, sd_path = bed.stage_on_sd("input", inp)
    channel = bed.cluster.channel()

    def proc() -> _t.Generator:
        result = yield channel.invoke(
            "wordcount",
            {"input_path": sd_path, "input_size": CASE_BYTES, "mode": "parallel"},
        )
        return result

    bed.run(proc())
    return bed


def measure_overhead() -> dict:
    """Measure disabled-site cost vs untraced job runtime."""
    # 1) instrumentation *calls* in a fully traced run — an upper bound on
    #    the guarded sites the untraced run passes through.  Spans and
    #    records count themselves; obs.count calls are tallied via a
    #    temporary wrapper (the Counter sums amounts, not calls).
    count_calls = 0
    orig_count = Observability.count

    def _counting(self, name: str, amount: float = 1) -> None:
        nonlocal count_calls
        count_calls += 1
        orig_count(self, name, amount)

    Observability.count = _counting  # type: ignore[method-assign]
    try:
        traced = _run_wordcount(trace=True)
    finally:
        Observability.count = orig_count  # type: ignore[method-assign]
    obs = traced.sim.obs
    # every sim event pays one `obs.enabled` check even untraced
    event_checks = traced.sim.processed_events
    hits = len(obs.spans) + len(obs.records) + count_calls

    # 2) per-call cost of the disabled paths, tight-loop amortized
    cold = Observability(enabled=False)
    n = 200_000
    t0 = time.perf_counter()
    for _ in range(n):
        with cold.span("x", cat="c", track="t"):
            pass
    span_cost = (time.perf_counter() - t0) / n
    t0 = time.perf_counter()
    for _ in range(n):
        cold.record("k", 0.0, "d")
    record_cost = (time.perf_counter() - t0) / n
    t0 = time.perf_counter()
    for _ in range(n):
        if cold.enabled:
            pass  # pragma: no cover - disabled
    check_cost = (time.perf_counter() - t0) / n
    per_call = max(span_cost, record_cost)

    # 2b) the same paths with the flight recorder attached (tracing
    #     still off): records and counter bumps now feed the ring
    boxed = Observability(enabled=False, flight=True)
    t0 = time.perf_counter()
    for _ in range(n):
        boxed.record("k", 0.0, "d")
    flight_record_cost = (time.perf_counter() - t0) / n
    t0 = time.perf_counter()
    for _ in range(n):
        boxed.count("k")
    flight_count_cost = (time.perf_counter() - t0) / n
    # subtract the always-on counter cost itself: the recorder's share
    # of a count() is what the black box adds over the baseline
    t0 = time.perf_counter()
    for _ in range(n):
        cold.count("k")
    base_count_cost = (time.perf_counter() - t0) / n
    flight_per_call = max(
        flight_record_cost,
        flight_count_cost - base_count_cost + record_cost,
    )

    # 3) untraced runtime, best of 3
    runtime = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        _run_wordcount(trace=False)
        runtime = min(runtime, time.perf_counter() - t0)

    overhead_s = hits * per_call + event_checks * check_cost
    flight_overhead_s = hits * flight_per_call + event_checks * check_cost
    return {
        "hits": hits,
        "spans": len(obs.spans),
        "records": len(obs.records),
        "count_calls": count_calls,
        "event_checks": event_checks,
        "per_call_us": per_call * 1e6,
        "check_us": check_cost * 1e6,
        "flight_per_call_us": flight_per_call * 1e6,
        "overhead_s": overhead_s,
        "flight_overhead_s": flight_overhead_s,
        "runtime_s": runtime,
        "overhead_frac": overhead_s / runtime if runtime > 0 else 0.0,
        "flight_overhead_frac": (
            flight_overhead_s / runtime if runtime > 0 else 0.0
        ),
    }


def _report(m: dict) -> None:
    print(
        f"instrumentation hits: {m['hits']} "
        f"({m['spans']} spans, {m['records']} records, "
        f"{m['count_calls']} counter calls) "
        f"+ {m['event_checks']} per-event checks"
    )
    print(
        f"disabled per-call cost: {m['per_call_us']:.3f}us, "
        f"per-check: {m['check_us']:.4f}us"
    )
    print(
        f"estimated untraced overhead: {m['overhead_s'] * 1e3:.3f}ms over a "
        f"{m['runtime_s'] * 1e3:.1f}ms job = {m['overhead_frac'] * 100:.3f}% "
        f"(gate: <{MAX_OVERHEAD * 100:.0f}%)"
    )
    print(
        f"flight-recorder-on per-call: {m['flight_per_call_us']:.3f}us, "
        f"overhead {m['flight_overhead_s'] * 1e3:.3f}ms = "
        f"{m['flight_overhead_frac'] * 100:.3f}% "
        f"(gate: <{MAX_OVERHEAD * 100:.0f}%)"
    )


def _ok(m: dict) -> bool:
    return (
        m["overhead_frac"] < MAX_OVERHEAD
        and m["flight_overhead_frac"] < MAX_OVERHEAD
    )


def bench_obs_overhead(benchmark):
    """Tracing-off overhead on the 10k wordcount case stays under 2%,
    with and without the flight recorder attached."""
    from benchmarks.conftest import once

    m = once(benchmark, measure_overhead)
    _report(m)
    assert m["overhead_frac"] < MAX_OVERHEAD, (
        f"disabled tracing costs {m['overhead_frac'] * 100:.2f}% "
        f">= {MAX_OVERHEAD * 100:.0f}% of the job"
    )
    assert m["flight_overhead_frac"] < MAX_OVERHEAD, (
        f"flight-recorder-on tracing costs "
        f"{m['flight_overhead_frac'] * 100:.2f}% "
        f">= {MAX_OVERHEAD * 100:.0f}% of the job"
    )


if __name__ == "__main__":
    metrics = measure_overhead()
    _report(metrics)
    sys.exit(0 if _ok(metrics) else 1)
